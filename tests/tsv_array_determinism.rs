//! Tier-1 guarantee of the TSV-array statistics: crosstalk statistics and
//! the nominal report digest must be bit-for-bit identical for any
//! `VAEM_THREADS` value, because every Monte-Carlo run derives its RNG
//! stream from `(seed, run-index)` and every SSCM collocation result is
//! written to its input slot — which worker computes an item never changes
//! what is computed. This is the property the CI determinism matrix checks
//! end to end through the `tsv_array --digest` binary; here it is pinned
//! at the library level.
//!
//! This file intentionally holds a single test: it mutates the process-wide
//! `VAEM_THREADS`/`VAEM_CHUNK` variables, so no other test may race on them
//! in this binary.

use vaem::experiments::tsv_array::TsvArrayExperiment;
use vaem::AnalysisResult;

/// A 2×2 array trimmed for test runtime: one retained factor per via group
/// keeps the SSCM collocation grid small, and 4 MC runs are enough to
/// expose any thread-dependent sampling.
fn tiny_experiment() -> TsvArrayExperiment {
    let mut experiment = TsvArrayExperiment::quick();
    experiment.mc_runs = 4;
    experiment.max_reduced_per_group = 1;
    experiment
}

/// Exact (bit-level) fingerprint of everything the crosstalk statistics
/// report: nominal value, SSCM moments, MC moments and the per-dimension
/// Sobol main effects of every matrix entry.
fn fingerprint(result: &AnalysisResult) -> Vec<u64> {
    let mut bits = Vec::new();
    for q in &result.quantities {
        for v in [
            q.nominal,
            q.sscm.mean,
            q.sscm.std,
            q.monte_carlo.mean,
            q.monte_carlo.std,
        ] {
            bits.push(v.to_bits());
        }
        bits.extend(q.main_effects.iter().map(|e| e.to_bits()));
    }
    bits.push(result.collocation_runs as u64);
    bits.push(result.mc_runs as u64);
    bits
}

#[test]
fn crosstalk_statistics_are_bit_identical_across_thread_counts() {
    std::env::set_var("VAEM_THREADS", "1");
    std::env::set_var("VAEM_CHUNK", "1");
    let experiment = tiny_experiment();
    let serial = experiment.run().expect("serial run");
    let reference = fingerprint(&serial);
    let nominal_digest = experiment.nominal_report().expect("nominal").digest();

    std::env::set_var("VAEM_THREADS", "4");
    let parallel = experiment.run().expect("parallel run");
    assert_eq!(
        reference,
        fingerprint(&parallel),
        "crosstalk statistics changed between VAEM_THREADS=1 and 4"
    );
    assert_eq!(
        nominal_digest,
        experiment.nominal_report().expect("nominal").digest(),
        "nominal coupling/sweep digest changed between VAEM_THREADS=1 and 4"
    );

    std::env::remove_var("VAEM_THREADS");
    std::env::remove_var("VAEM_CHUNK");
}
