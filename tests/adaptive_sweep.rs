//! Tier-1 guarantee of the adaptive frequency-sweep engine: starting from a
//! coarse grid, the error-controlled refinement must reproduce a dense
//! fixed-grid reference spectrum within the configured tolerance while
//! spending a fraction (at least 2x fewer) of the deterministic AC solves.
//!
//! The fixture puts the conduction→displacement transition of the doped
//! substrate inside the swept band (lightly doped silicon), so the
//! interface-current spectrum sweeps roughly two decades and the refinement
//! has real curvature to chase.

use vaem::config::{AnalysisConfig, DopingVariationConfig, QuantitySet, VariationSpec};
use vaem::{AdaptiveSweepOptions, PointOrigin, VariationalAnalysis};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

/// Logarithmic grid from `lo` to `hi`, inclusive.
fn log_grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let span = (hi / lo).ln();
    (0..n)
        .map(|i| lo * (span * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// A small doping-only analysis whose spectrum has a transition knee in
/// [0.1, 10] GHz. One reduced variable keeps the collocation count at 6, so
/// the dense reference sweep stays affordable in a tier-1 test.
fn curved_analysis() -> VariationalAnalysis {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
        terminal: "plug1".to_string(),
    });
    config.energy_fraction = 0.85;
    config.max_reduced_per_group = 1;
    config.nominal_donor = 2.0e1;
    config.variations = VariationSpec {
        roughness: None,
        doping: Some(DopingVariationConfig {
            max_nodes: 10,
            ..DopingVariationConfig::paper_default()
        }),
        via_params: None,
    };
    VariationalAnalysis::new(structure, config)
}

/// Log-frequency linear interpolation of `(f, v)` samples at `f_at`.
fn interp_log(frequencies: &[f64], values: &[f64], f_at: f64) -> f64 {
    let x_at = f_at.ln();
    let hi = frequencies.partition_point(|f| *f < f_at);
    if hi == 0 {
        return values[0];
    }
    if hi >= frequencies.len() {
        return *values.last().unwrap();
    }
    let (xl, xh) = (frequencies[hi - 1].ln(), frequencies[hi].ln());
    let t = (x_at - xl) / (xh - xl);
    values[hi - 1] + t * (values[hi] - values[hi - 1])
}

#[test]
fn adaptive_sweep_matches_a_dense_reference_with_at_least_2x_fewer_solves() {
    let analysis = curved_analysis();
    let (f_lo, f_hi) = (1.0e8, 1.0e10);

    // Dense fixed-grid reference: 64 points across two decades.
    let dense_grid = log_grid(64, f_lo, f_hi);
    let dense = analysis.run_frequency_sweep(&dense_grid).unwrap();

    // Adaptive: a 7-point coarse grid refined under a 5 % indicator
    // tolerance. The point budget is deliberately set ABOVE the dense
    // point count so the >=2x solve saving below can only come from the
    // indicator converging, never from the budget clamping the grid.
    let coarse = log_grid(7, f_lo, f_hi);
    let options = AdaptiveSweepOptions {
        rel_tolerance: 0.05,
        max_points: 96,
        max_depth: 6,
    };
    let adaptive = analysis
        .run_adaptive_frequency_sweep(&coarse, &options)
        .unwrap();

    // Refinement engaged (the knee forces it) and *converged* — the
    // budget must not be what stopped it.
    assert!(adaptive.waves >= 1, "refinement never engaged");
    assert!(adaptive.refined_point_count() >= 1);
    assert!(
        !adaptive.budget_exhausted,
        "refinement only stopped because the budget ran out"
    );
    assert!(adaptive.sweep.frequencies.len() <= options.max_points);
    assert!(adaptive
        .origins
        .iter()
        .any(|o| matches!(o, PointOrigin::Refined { .. })));

    // >= 2x fewer deterministic AC solves than the dense reference —
    // earned by convergence (budget_exhausted is false above), not
    // imposed by the point cap.
    assert_eq!(adaptive.sweep.collocation_runs, dense.collocation_runs);
    assert!(
        2 * adaptive.ac_solve_count() <= dense.ac_solve_count(),
        "adaptive sweep used {} AC solves vs dense {} — less than a 2x saving",
        adaptive.ac_solve_count(),
        dense.ac_solve_count()
    );

    // The refined spectrum, log-interpolated onto the dense grid, matches
    // the dense reference within a small multiple of the indicator
    // tolerance — nominal curve, SSCM mean and (scale-relative) std alike.
    let aq = &adaptive.sweep.quantities[0];
    let dq = &dense.quantities[0];
    let a_freqs = &adaptive.sweep.frequencies;
    let a_nominal: Vec<f64> = aq.nominal.clone();
    let a_mean: Vec<f64> = aq.sscm.iter().map(|s| s.mean).collect();
    let a_std: Vec<f64> = aq.sscm.iter().map(|s| s.std).collect();
    let mut worst = 0.0_f64;
    for (fi, &f) in dense_grid.iter().enumerate() {
        let scale = dq.nominal[fi].abs().max(1e-30);
        let nominal_err = (interp_log(a_freqs, &a_nominal, f) - dq.nominal[fi]).abs() / scale;
        let mean_err = (interp_log(a_freqs, &a_mean, f) - dq.sscm[fi].mean).abs() / scale;
        let std_err = (interp_log(a_freqs, &a_std, f) - dq.sscm[fi].std).abs() / scale;
        worst = worst.max(nominal_err).max(mean_err).max(std_err);
    }
    assert!(
        worst <= 3.0 * options.rel_tolerance,
        "refined spectrum deviates from the dense reference by {worst:.4} \
         (allowed {})",
        3.0 * options.rel_tolerance
    );

    // At frequencies the two grids share (the coarse points are dense-grid
    // bracketing-free evaluations of the same engine), the spectra agree to
    // solver precision.
    for (ai, &f) in a_freqs.iter().enumerate() {
        if let Some(di) = dense_grid.iter().position(|g| (g - f).abs() < 1e-9 * f) {
            let rel = (a_nominal[ai] - dq.nominal[di]).abs() / dq.nominal[di].abs().max(1e-30);
            assert!(rel < 1e-9, "shared point {f} Hz diverged: {rel}");
        }
    }
}
