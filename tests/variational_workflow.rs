//! Integration tests of the full variational workflow (core crate): SSCM
//! statistics track Monte Carlo, and the wPFA reduction compresses the
//! variable count, on scaled-down versions of the paper's experiments.

use vaem::config::{
    AnalysisConfig, DopingVariationConfig, QuantitySet, ReductionMethod, RoughnessConfig,
    VariationSpec,
};
use vaem::experiments::metalplug::{MetalPlugExperiment, TableOneRow};
use vaem::VariationalAnalysis;
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

fn tiny_config(reduction: ReductionMethod) -> AnalysisConfig {
    let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
        terminal: "plug1".to_string(),
    });
    config.mc_runs = 25;
    config.seed = 7;
    config.energy_fraction = 0.9;
    config.max_reduced_per_group = 2;
    config.reduction = reduction;
    config.variations = VariationSpec {
        roughness: Some(RoughnessConfig {
            sigma: 0.3,
            ..RoughnessConfig::paper_default()
        }),
        doping: Some(DopingVariationConfig {
            max_nodes: 16,
            ..DopingVariationConfig::paper_default()
        }),
        via_params: None,
    };
    config
}

#[test]
fn sscm_tracks_monte_carlo_on_the_metalplug_experiment() {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let analysis = VariationalAnalysis::new(structure, tiny_config(ReductionMethod::Wpfa));
    let result = analysis.run().expect("workflow runs");
    let q = &result.quantities[0];
    assert!(q.nominal > 0.0);
    assert!(q.sscm.mean > 0.0 && q.monte_carlo.mean > 0.0);
    // With 25 MC samples the reference is noisy; require agreement within 30%.
    assert!(
        q.mean_error() < 0.3,
        "SSCM mean {} vs MC mean {}",
        q.sscm.mean,
        q.monte_carlo.mean
    );
    // Standard deviations must be the same order of magnitude.
    assert!(q.sscm.std > 0.0);
    assert!(q.monte_carlo.std > 0.0);
    assert!(q.sscm.std / q.monte_carlo.std < 10.0);
    assert!(q.monte_carlo.std / q.sscm.std < 10.0);
}

#[test]
fn wpfa_and_pfa_both_reduce_and_give_consistent_means() {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let wpfa = VariationalAnalysis::new(structure.clone(), tiny_config(ReductionMethod::Wpfa))
        .run()
        .expect("wPFA workflow runs");
    let pfa = VariationalAnalysis::new(structure, tiny_config(ReductionMethod::Pfa))
        .run()
        .expect("PFA workflow runs");
    for result in [&wpfa, &pfa] {
        for g in &result.reductions {
            assert!(g.reduced_dim <= g.full_dim);
            assert!(g.reduced_dim >= 1);
        }
    }
    let m_w = wpfa.quantities[0].sscm.mean;
    let m_p = pfa.quantities[0].sscm.mean;
    assert!(
        (m_w - m_p).abs() / m_p.abs() < 0.2,
        "wPFA and PFA SSCM means should agree: {m_w} vs {m_p}"
    );
}

#[test]
fn geometry_variation_produces_larger_spread_than_doping_variation() {
    // The paper's Table I shows the geometric variation dominating the
    // standard deviation of the interface current (7.9e-4 vs 2.9e-4).
    let quick = MetalPlugExperiment::quick().with_mc_runs(20);
    let geometry = quick
        .clone()
        .with_row(TableOneRow::GeometryOnly)
        .run()
        .expect("geometry-only run");
    let doping = quick
        .with_row(TableOneRow::DopingOnly)
        .run()
        .expect("doping-only run");
    let cv_geom = geometry.quantities[0].sscm.std / geometry.quantities[0].sscm.mean;
    let cv_dope = doping.quantities[0].sscm.std / doping.quantities[0].sscm.mean;
    assert!(
        cv_geom > cv_dope,
        "geometry variation should dominate: cv_geom {cv_geom} vs cv_dope {cv_dope}"
    );
}

#[test]
fn collocation_cost_follows_the_paper_formula() {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let analysis = VariationalAnalysis::new(structure, tiny_config(ReductionMethod::Wpfa));
    let result = analysis.run().expect("workflow runs");
    let d = result.total_reduced_dim();
    assert_eq!(result.collocation_runs, 2 * d * d + 3 * d + 1);
}
