//! Tier-1 gate: the whole workspace must be vaem-lint clean.
//!
//! This is the in-tree mirror of the CI `lint` job — it fails `cargo test`
//! the moment a nondeterminism or safety rule regresses, without waiting
//! for the standalone binary run. Budget staleness is deliberately NOT
//! checked here (that is the CI job's `--strict-budget` duty), so removing
//! panic paths never breaks the local test loop.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = vaem_lint::lint_workspace(root, false).expect("lint run failed");
    assert!(
        report.is_clean(),
        "vaem-lint violations:\n{}",
        vaem_lint::render_text(&report)
    );
}
