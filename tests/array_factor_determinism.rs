//! Tier-1 guarantee of the tree-parallel numeric factorization: on the
//! genuine 3×3 TSV-array mesh pattern — the workload the elimination-level
//! schedule was built for — `SymbolicLu::factor_with_threads` must produce
//! bit-for-bit identical triangular solves at 1, 2 and 4 threads. The
//! level schedule only runs columns whose dependencies have completed, and
//! every column applies its updates in the stored pivot order, so which
//! worker owns a column never changes a single floating-point operation.
//! This pins the guarantee the CI digest matrix checks end to end through
//! `tsv_array --digest` at the solver level, where a violation is
//! attributable to one factorization instead of a whole pipeline.

use vaem_mesh::structures::tsv_array::{build_tsv_array_structure, TsvArrayConfig};
use vaem_mesh::Material;
use vaem_numeric::Complex64;
use vaem_sparse::{SparsityPattern, SymbolicLu, TripletMatrix};

/// Assembles an AC-like nodal admittance system on the 3×3 array mesh:
/// per-link conductance from the endpoint materials (series combination,
/// with the paper's metal/semiconductor/dielectric contrast) plus a
/// capacitive `iωC` diagonal term so the pure-Neumann operator is
/// nonsingular. The exact physics is irrelevant here; what matters is the
/// true array-mesh sparsity pattern and realistically contrasted values.
fn array_system() -> vaem_sparse::CsrMatrix<Complex64> {
    let structure = build_tsv_array_structure(&TsvArrayConfig::coarse(3, 3)).expect("3x3 builds");
    let mesh = &structure.mesh;
    let sigma = |m: Material| -> f64 {
        match m {
            Material::Metal => 5.8e1,
            Material::Semiconductor => 1.0,
            Material::Insulator => 1e-6,
        }
    };
    let n = mesh.node_count();
    let mut t = TripletMatrix::new(n, n);
    for link in mesh.links() {
        let (a, b) = (link.from, link.to);
        let (sa, sb) = (
            sigma(structure.materials.material(a)),
            sigma(structure.materials.material(b)),
        );
        let g = 2.0 * sa * sb / (sa + sb);
        let y = Complex64::new(g, 1e-3 * g);
        t.push(a.index(), a.index(), y);
        t.push(b.index(), b.index(), y);
        t.push(a.index(), b.index(), -y);
        t.push(b.index(), a.index(), -y);
    }
    for i in 0..n {
        t.push(i, i, Complex64::new(1e-9, 1e-4));
    }
    t.to_csr()
}

#[test]
fn array_factorization_is_bit_identical_across_thread_counts() {
    let a = array_system();
    let b: Vec<Complex64> = (0..a.rows())
        .map(|i| Complex64::new(1.0 + (i % 7) as f64, 0.25 * (i % 3) as f64))
        .collect();

    let mut symbolic = SymbolicLu::new(&SparsityPattern::of(&a)).expect("symbolic analysis");
    let serial = symbolic
        .factor_with_threads(&a, 1)
        .expect("serial factorization");
    let x1 = serial.solve(&b).expect("serial solve");
    let bits = |x: &[Complex64]| -> Vec<(u64, u64)> {
        x.iter().map(|v| (v.re.to_bits(), v.im.to_bits())).collect()
    };
    let reference = bits(&x1);

    for threads in [2usize, 4] {
        // A fresh handle seeded from the serial one replays the recorded
        // ordering choice and pivot structure, exactly like a sample
        // factorization receiving the nominal donor.
        let mut seeded = symbolic.seed_from();
        let parallel = seeded
            .factor_with_threads(&a, threads)
            .expect("parallel factorization");
        assert_eq!(serial.factor_nnz(), parallel.factor_nnz());
        let xp = parallel.solve(&b).expect("parallel solve");
        assert_eq!(
            reference,
            bits(&xp),
            "triangular solve changed between 1 and {threads} threads"
        );
    }
}
