//! Integration tests spanning mesh → physics → FVM: the deterministic
//! coupled solver behaves physically on the paper's structures.

use vaem_fvm::{postprocess, CoupledSolver, SolverOptions};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem_mesh::structures::tsv::{build_tsv_structure, TsvConfig};
use vaem_physics::DopingProfile;

fn metalplug_solver_inputs() -> (vaem_mesh::Structure, DopingProfile) {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let semis = structure.semiconductor_nodes();
    let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);
    (structure, doping)
}

#[test]
fn interface_current_scales_with_doping() {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let semis = structure.semiconductor_nodes();
    let mut currents = Vec::new();
    for nd in [3.0e4, 1.0e5, 3.0e5] {
        let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, nd);
        let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        let current = postprocess::interface_current(&solver, &ac, "plug1").unwrap();
        currents.push(current.abs());
    }
    // Higher doping -> higher substrate conductivity -> larger interface current.
    assert!(
        currents[0] < currents[1] && currents[1] < currents[2],
        "currents should increase with doping: {currents:?}"
    );
}

#[test]
fn interface_current_increases_with_frequency() {
    let (structure, doping) = metalplug_solver_inputs();
    let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default()).unwrap();
    let dc = solver.solve_dc().unwrap();
    let mut magnitudes = Vec::new();
    for f in [1.0e8, 1.0e9, 5.0e9] {
        let ac = solver.solve_ac(&dc, "plug1", f).unwrap();
        let current = postprocess::interface_current(&solver, &ac, "plug1").unwrap();
        magnitudes.push(current.abs());
    }
    // Displacement coupling grows with frequency, so the total interface
    // current must not shrink.
    assert!(magnitudes[0] <= magnitudes[2] * 1.01, "{magnitudes:?}");
}

#[test]
fn tsv_capacitance_matrix_column_is_physical() {
    let structure = build_tsv_structure(&TsvConfig::coarse());
    let semis = structure.semiconductor_nodes();
    let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);
    let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default()).unwrap();
    let dc = solver.solve_dc().unwrap();
    let column = postprocess::capacitance_column(&solver, &dc, "tsv1", 1.0e9).unwrap();

    let c_self = column["tsv1"];
    assert!(c_self > 0.0, "self capacitance must be positive: {c_self}");
    // Couplings are negative and the self term dominates every coupling.
    for name in ["tsv2", "w1", "w2", "w3", "w4"] {
        let c = column[name];
        assert!(c <= 0.0, "coupling {name} should be non-positive, got {c}");
        assert!(c.abs() < c_self, "coupling {name} exceeds the self term");
    }
    // TSV1 couples more strongly to its neighbouring TSV2 than to the most
    // remote trace.
    let far_trace = column["w4"].abs().min(column["w2"].abs());
    assert!(
        column["tsv2"].abs() >= far_trace,
        "tsv2 coupling {} should exceed the farthest trace coupling {}",
        column["tsv2"].abs(),
        far_trace
    );
    // Self capacitance has a plausible magnitude (paper: ~7 fF).
    let c_self_ff = c_self * 1.0e15;
    assert!(
        c_self_ff > 0.1 && c_self_ff < 500.0,
        "C_T1 = {c_self_ff} fF is out of the plausible range"
    );
}

#[test]
fn perturbed_geometry_changes_the_current_smoothly() {
    use vaem_variation::{apply_roughness, FacetPerturbation, GeometricModel};
    let (structure, doping) = metalplug_solver_inputs();
    let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default()).unwrap();
    let dc = solver.solve_dc().unwrap();
    let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
    let base = postprocess::interface_current(&solver, &ac, "plug1")
        .unwrap()
        .abs();

    // Push the plug1 interface down by 0.3 um with the continuous model.
    let facet = structure.facet("plug1_interface").unwrap();
    let mut perturbed = structure.clone();
    apply_roughness(
        &mut perturbed.mesh,
        GeometricModel::ContinuousSurface,
        &[FacetPerturbation::new(facet, vec![-0.3; facet.nodes.len()])],
    );
    let solver_p = CoupledSolver::new(&perturbed, &doping, SolverOptions::default()).unwrap();
    let dc_p = solver_p.solve_dc().unwrap();
    let ac_p = solver_p.solve_ac(&dc_p, "plug1", 1.0e9).unwrap();
    let shifted = postprocess::interface_current(&solver_p, &ac_p, "plug1")
        .unwrap()
        .abs();

    let rel = (shifted - base).abs() / base;
    assert!(rel > 1e-6, "geometry change must move the current");
    assert!(
        rel < 0.5,
        "a 0.3 um shift should not change the current by 50%: {rel}"
    );
}
