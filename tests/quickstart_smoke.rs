//! Fast end-to-end smoke test over the `vaem` re-export surface: the same
//! structure → doping → DC → AC → postprocess path as `examples/quickstart.rs`,
//! on the coarse mesh so `cargo test -q` stays quick, plus a scaled-down
//! Monte-Carlo sweep through the `vaem::stochastic` re-export.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vaem::fvm::{postprocess, CoupledSolver, SolverOptions};
use vaem::mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem::physics::DopingProfile;
use vaem::stochastic::MonteCarlo;
use vaem::variation::standard_normal;

#[test]
fn quickstart_path_end_to_end() {
    // 1. Structure: the paper's metal-plug example on the coarse mesh.
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    assert!(structure.mesh.node_count() > 0);
    assert!(structure.contact("plug1").is_some());
    assert!(structure.contact("plug2").is_some());

    // 2. Uniform 1e17 cm^-3 donor doping in the silicon (1e5 µm^-3).
    let semis = structure.semiconductor_nodes();
    assert!(!semis.is_empty());
    let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);

    // 3. DC operating point.
    let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default())
        .expect("solver binds to the coarse structure");
    let dc = solver.solve_dc().expect("Newton converges");
    assert!(dc.newton_iterations > 0);

    // 4. AC solve and interface current at 1 GHz.
    let ac = solver.solve_ac(&dc, "plug1", 1.0e9).expect("AC solve");
    let current = postprocess::interface_current(&solver, &ac, "plug1").expect("interface current");
    assert!(current.abs().is_finite());
    assert!(current.abs() > 0.0, "driven interface carries current");

    // 5. Capacitance column at 1 MHz: finite, with a positive self term.
    let column =
        postprocess::capacitance_column(&solver, &dc, "plug1", 1.0e6).expect("capacitance column");
    let self_cap = column["plug1"];
    let mutual_cap = column["plug2"];
    assert!(self_cap.is_finite() && mutual_cap.is_finite());
    assert!(self_cap > 0.0, "self capacitance must be positive");
}

#[test]
fn few_run_monte_carlo_over_reexports() {
    // A tiny Monte-Carlo sweep (8 runs) through the façade re-exports:
    // enough to prove the stochastic layer is wired, cheap enough for CI.
    let mc = MonteCarlo::new(8);
    let mut rng = StdRng::seed_from_u64(2012);
    let outcome = mc.run(&mut rng, |rng| vec![1.0 + 0.1 * standard_normal(rng)]);
    assert_eq!(outcome.samples, 8);
    assert_eq!(outcome.output_count(), 1);
    assert!((outcome.summary(0).mean - 1.0).abs() < 0.5);
}
