//! Tier-1 guarantee of the parallel sweep engine: `VariationalAnalysis::run`
//! must produce bit-for-bit identical results for any `VAEM_THREADS` value,
//! because every Monte-Carlo run owns a `(seed, run-index)`-derived RNG
//! stream and the SSCM fan-out writes each collocation result to its input
//! slot.
//!
//! This file intentionally holds a single test: it mutates the process-wide
//! `VAEM_THREADS` variable, so no other test may race on it in this binary.

use vaem::config::{AnalysisConfig, DopingVariationConfig, QuantitySet, VariationSpec};
use vaem::{AnalysisResult, VariationalAnalysis};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

fn tiny_analysis() -> VariationalAnalysis {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
        terminal: "plug1".to_string(),
    });
    config.mc_runs = 6;
    config.energy_fraction = 0.9;
    config.max_reduced_per_group = 2;
    config.seed = 0xD5EED;
    config.variations = VariationSpec {
        roughness: None,
        doping: Some(DopingVariationConfig {
            max_nodes: 10,
            ..DopingVariationConfig::paper_default()
        }),
    };
    VariationalAnalysis::new(structure, config)
}

/// Exact (bit-level) fingerprint of everything statistical in a result: the
/// PCE-derived SSCM moments and the Monte-Carlo reference moments.
fn fingerprint(result: &AnalysisResult) -> Vec<u64> {
    let mut bits = Vec::new();
    for q in &result.quantities {
        for v in [
            q.nominal,
            q.sscm.mean,
            q.sscm.std,
            q.monte_carlo.mean,
            q.monte_carlo.std,
        ] {
            bits.push(v.to_bits());
        }
    }
    bits.push(result.collocation_runs as u64);
    bits.push(result.mc_runs as u64);
    bits
}

#[test]
fn run_is_bit_identical_across_thread_counts() {
    std::env::set_var("VAEM_THREADS", "1");
    let serial = tiny_analysis().run().expect("serial run");
    std::env::set_var("VAEM_THREADS", "4");
    let parallel = tiny_analysis().run().expect("parallel run");
    std::env::remove_var("VAEM_THREADS");

    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "PCE coefficients / MC statistics changed with the thread count:\n\
         serial   = {serial:?}\n\
         parallel = {parallel:?}"
    );
}
