//! Tier-1 guarantee of the parallel sweep engine: `VariationalAnalysis::run`
//! must produce bit-for-bit identical results for any `VAEM_THREADS` value
//! and any work-stealing claim granularity (`VAEM_CHUNK`), because every
//! Monte-Carlo run owns a `(seed, run-index)`-derived RNG stream and the
//! SSCM fan-out writes each collocation result to its input slot — which
//! worker computes an item never changes what is computed. The per-sample
//! costs are naturally ragged (Newton iteration counts vary with the doping
//! perturbation), so sweeping thread counts × chunk sizes exercises the
//! stealing queue under genuinely skewed work.
//!
//! This file intentionally holds a single test: it mutates the process-wide
//! `VAEM_THREADS`/`VAEM_CHUNK` variables, so no other test may race on them
//! in this binary.

use vaem::config::{AnalysisConfig, DopingVariationConfig, QuantitySet, VariationSpec};
use vaem::{AnalysisResult, VariationalAnalysis};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

fn tiny_analysis() -> VariationalAnalysis {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
        terminal: "plug1".to_string(),
    });
    config.mc_runs = 6;
    config.energy_fraction = 0.9;
    config.max_reduced_per_group = 2;
    config.seed = 0xD5EED;
    config.variations = VariationSpec {
        roughness: None,
        doping: Some(DopingVariationConfig {
            max_nodes: 10,
            ..DopingVariationConfig::paper_default()
        }),
        via_params: None,
    };
    VariationalAnalysis::new(structure, config)
}

/// Exact (bit-level) fingerprint of everything statistical in a result: the
/// PCE-derived SSCM moments and the Monte-Carlo reference moments.
fn fingerprint(result: &AnalysisResult) -> Vec<u64> {
    let mut bits = Vec::new();
    for q in &result.quantities {
        for v in [
            q.nominal,
            q.sscm.mean,
            q.sscm.std,
            q.monte_carlo.mean,
            q.monte_carlo.std,
        ] {
            bits.push(v.to_bits());
        }
    }
    bits.push(result.collocation_runs as u64);
    bits.push(result.mc_runs as u64);
    bits
}

#[test]
fn run_is_bit_identical_across_thread_counts_and_chunk_sizes() {
    std::env::set_var("VAEM_THREADS", "1");
    let serial = tiny_analysis().run().expect("serial run");
    let reference = fingerprint(&serial);

    // Thread counts exercise the fan-out; claim granularities exercise the
    // work-stealing queue (1 = maximal stealing on the ragged Newton
    // costs, 64 = one contiguous claim per worker, unset = auto-tuned).
    for threads in [2, 4] {
        std::env::set_var("VAEM_THREADS", threads.to_string());
        for chunk in [Some(1), Some(3), Some(64), None] {
            match chunk {
                Some(c) => std::env::set_var("VAEM_CHUNK", c.to_string()),
                None => std::env::remove_var("VAEM_CHUNK"),
            }
            let parallel = tiny_analysis().run().expect("parallel run");
            assert_eq!(
                reference,
                fingerprint(&parallel),
                "PCE coefficients / MC statistics changed under \
                 VAEM_THREADS={threads} VAEM_CHUNK={chunk:?}:\n\
                 serial   = {serial:?}\n\
                 parallel = {parallel:?}"
            );
        }
    }
    std::env::remove_var("VAEM_THREADS");
    std::env::remove_var("VAEM_CHUNK");
}
