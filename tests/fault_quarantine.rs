//! Tier-1 guarantees of the fault-injection and quarantine layer: with a
//! `VAEM_FAULTS` plan installed, the TSV-array statistics run completes
//! instead of aborting, its `HealthReport` records exactly the injected
//! failures, and both the statistics and the report are bit-identical at
//! `VAEM_THREADS=1` and `4` — injection is keyed by `(stage, sample index)`,
//! never by thread identity.
//!
//! This file intentionally holds a single test: it mutates the process-wide
//! `VAEM_FAULTS`/`VAEM_THREADS`/`VAEM_CHUNK` variables, so no other test may
//! race on them in this binary.

use vaem::experiments::tsv_array::TsvArrayExperiment;
use vaem::health::{FailureKind, SampleStage};
use vaem::AnalysisResult;

/// A 2×2 array trimmed for test runtime (the `tsv_array_determinism`
/// sizing): one retained factor per via group and 4 MC runs.
fn tiny_experiment() -> TsvArrayExperiment {
    let mut experiment = TsvArrayExperiment::quick();
    experiment.mc_runs = 4;
    experiment.max_reduced_per_group = 1;
    experiment
}

/// Exact (bit-level) fingerprint of the statistics a run reports.
fn fingerprint(result: &AnalysisResult) -> Vec<u64> {
    let mut bits = Vec::new();
    for q in &result.quantities {
        for v in [
            q.nominal,
            q.sscm.mean,
            q.sscm.std,
            q.monte_carlo.mean,
            q.monte_carlo.std,
        ] {
            bits.push(v.to_bits());
        }
        bits.extend(q.main_effects.iter().map(|e| e.to_bits()));
    }
    bits.extend(result.health.digest_values().iter().map(|v| v.to_bits()));
    bits
}

#[test]
fn injected_faults_are_contained_deterministically_across_thread_counts() {
    let experiment = tiny_experiment();

    // A sticky degenerate-mesh fault quarantines SSCM sample 1 (the retry
    // fails too); a plain NaN poisoning in MC run 2 is recovered by the
    // single deterministic retry.
    std::env::set_var("VAEM_FAULTS", "mesh@sscm:1!,nan@mc:2");
    std::env::set_var("VAEM_THREADS", "1");
    std::env::set_var("VAEM_CHUNK", "1");
    let serial = experiment.run().expect("faulted run must still complete");

    assert!(!serial.health.is_clean());
    assert_eq!(
        serial.health.quarantined_indices(SampleStage::Sscm),
        vec![1],
        "exactly the sticky mesh fault must be quarantined: {:?}",
        serial.health.quarantined
    );
    assert!(serial
        .health
        .quarantined_indices(SampleStage::Mc)
        .is_empty());
    assert_eq!(serial.health.quarantined.len(), 1);
    assert_eq!(
        serial.health.quarantined[0].kind,
        FailureKind::MeshDegenerate
    );
    assert!(
        serial
            .health
            .recovered
            .iter()
            .any(|r| r.stage == SampleStage::Mc && r.index == 2),
        "the plain NaN fault must be recovered by the retry: {:?}",
        serial.health.recovered
    );
    assert!(serial.health.counts.mesh_degenerate >= 1);
    assert!(serial.health.counts.non_finite >= 1);

    std::env::set_var("VAEM_THREADS", "4");
    let parallel = experiment.run().expect("faulted parallel run");
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "faulted statistics changed between VAEM_THREADS=1 and 4"
    );
    assert_eq!(
        serial.health, parallel.health,
        "the health report changed between VAEM_THREADS=1 and 4"
    );

    // Every site in the plan's grammar, injected alone (sticky, SSCM
    // sample 1), must leave the run completable — either transparently
    // rescued below the quarantine layer (a Krylov breakdown is absorbed by
    // the direct rescue inside the prepared solver) or recorded against
    // exactly the injected sample.
    std::env::set_var("VAEM_THREADS", "2");
    for (site, kind) in [
        ("pivot", FailureKind::SingularPivot),
        ("krylov", FailureKind::NonConvergence),
        ("nan", FailureKind::NonFinite),
        ("ilu", FailureKind::NonConvergence),
        ("mesh", FailureKind::MeshDegenerate),
    ] {
        std::env::set_var("VAEM_FAULTS", format!("{site}@sscm:1!"));
        let result = experiment
            .run()
            .unwrap_or_else(|e| panic!("site {site} must be contained, got: {e}"));
        for q in &result.health.quarantined {
            assert_eq!(q.stage, SampleStage::Sscm, "site {site}");
            assert_eq!(q.index, 1, "site {site}");
            assert_eq!(q.kind, kind, "site {site}: {:?}", result.health.quarantined);
        }
        assert!(
            result.health.quarantined.len() <= 1,
            "site {site} must hit one sample only: {:?}",
            result.health.quarantined
        );
    }

    // A sticky fault on the nominal evaluation is the one thing the run may
    // not survive: the nominal anchors every patched sample. (The `nan`
    // site arms on every solve path; `mesh` would be a no-op here because
    // the nominal solves the unperturbed structure without a rebuild.)
    std::env::set_var("VAEM_FAULTS", "nan@nominal!");
    assert!(
        experiment.run().is_err(),
        "a sticky nominal fault must hard-fail the run"
    );

    // And with the plan cleared the same process produces a healthy run.
    std::env::remove_var("VAEM_FAULTS");
    let clean = experiment.run().expect("clean run");
    assert!(clean.health.is_clean());
    assert!(clean.health.digest_values().is_empty());

    std::env::remove_var("VAEM_THREADS");
    std::env::remove_var("VAEM_CHUNK");
}
