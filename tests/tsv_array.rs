//! Tier-1 guarantees of the TSV-array experiment that need no environment
//! mutation: the mesh scales with the grid, and the nominal K×K coupling
//! matrix is physically sane — reciprocal (the AC operator is symmetric,
//! so C[i][j] = C[j][i] up to solver tolerance) with negative couplings
//! that decay with grid distance.
//!
//! The thread-determinism guarantee lives in `tests/tsv_array_determinism.rs`
//! (it mutates `VAEM_THREADS`, so it owns its test binary).

use vaem::experiments::tsv_array::TsvArrayExperiment;
use vaem_mesh::structures::tsv_array::{build_tsv_array_structure, TsvArrayConfig};

#[test]
fn contacts_and_facets_scale_with_the_grid() {
    let mut last_nodes = 0;
    for (rows, cols) in [(1, 2), (2, 2), (2, 3)] {
        let cfg = TsvArrayConfig::coarse(rows, cols);
        let s = build_tsv_array_structure(&cfg).expect("coarse grid builds");
        assert_eq!(
            s.contacts.len(),
            rows * cols,
            "{rows}x{cols} must expose one terminal per via"
        );
        assert_eq!(
            s.rough_facets.len(),
            4 * rows * cols,
            "{rows}x{cols} must expose four wall facets per via"
        );
        for name in cfg.via_names() {
            assert!(
                s.contact(&name).is_some_and(|c| !c.nodes.is_empty()),
                "terminal {name} missing or empty"
            );
        }
        assert!(
            s.mesh.node_count() > last_nodes,
            "node count must grow with the array ({rows}x{cols}: {})",
            s.mesh.node_count()
        );
        last_nodes = s.mesh.node_count();
    }
}

#[test]
fn nominal_coupling_matrix_is_reciprocal_and_distance_ordered() {
    let experiment = TsvArrayExperiment::quick();
    let report = experiment.nominal_report().expect("nominal 2x2 report");
    let k = report.via_names.len();
    assert_eq!(k, 4);

    // Reciprocity: each column is extracted from an independent driven
    // solve, so C[i][j] ≈ C[j][i] only if the discretization and the shared
    // factorization are consistent. 1% of the largest self capacitance is
    // far above solver noise (measured defect ~1e-7) but catches any sign
    // or indexing slip.
    assert!(
        report.reciprocity_defect() < 1e-2,
        "reciprocity defect {:.3e} exceeds 1%",
        report.reciprocity_defect()
    );

    for i in 0..k {
        assert!(
            report.coupling[i][i] > 0.0,
            "self capacitance of {} must be positive",
            report.via_names[i]
        );
        for j in 0..k {
            if i != j {
                assert!(
                    report.coupling[i][j] < 0.0,
                    "coupling C[{i}][{j}] = {} must be negative",
                    report.coupling[i][j]
                );
            }
        }
    }

    // In the 2x2 grid the diagonal pair (distance √2) must couple more
    // weakly than a nearest-neighbour pair (distance 1).
    let neighbour = report.coupling[0][1].abs();
    let diagonal = report.coupling[0][3].abs();
    assert!(
        diagonal < neighbour,
        "diagonal coupling {diagonal} must be below nearest-neighbour {neighbour}"
    );

    // The crosstalk matrix is the positive, victim-normalised view.
    let x = report.crosstalk();
    for i in 0..k {
        assert_eq!(x[i][i], 0.0);
        for j in 0..k {
            if i != j {
                assert!(x[i][j] > 0.0 && x[i][j] < 1.0, "X[{i}][{j}] = {}", x[i][j]);
            }
        }
    }

    // Victim spectra cover every non-aggressor via, tagged with the right
    // grid distances, and every induced-current ratio is finite and positive.
    assert_eq!(report.victims.len(), k - 1);
    for victim in &report.victims {
        assert!(victim.grid_distance >= 1.0);
        assert_eq!(victim.spectrum.len(), experiment.sweep_points);
        for &(f, ratio) in &victim.spectrum {
            assert!(f > 0.0);
            assert!(
                ratio.is_finite() && ratio > 0.0,
                "victim {} ratio {ratio} at {f} Hz",
                victim.victim
            );
        }
    }
}
