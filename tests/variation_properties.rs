//! Property-based integration tests on the variation and stochastic layers:
//! invariants that must hold for arbitrary (bounded) inputs.

use proptest::prelude::*;
use vaem_mesh::quality::assess;
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem_stochastic::{paper_point_count, CollocationGrid, HermiteBasis, PolynomialChaos};
use vaem_variation::{
    apply_roughness, covariance_matrix, CorrelationKernel, FacetPerturbation, GeometricModel, Pfa,
    VariableReduction, Wpfa,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The continuous-surface model never breaks the mesh as long as the
    /// offsets stay below half of the domain margin, for arbitrary offset
    /// patterns.
    #[test]
    fn csv_model_preserves_mesh_validity(seed in 0u64..1000, amplitude in 0.05f64..1.4) {
        let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
        let facet = structure.facet("plug1_interface").unwrap();
        // Deterministic pseudo-random offsets from the seed.
        let offsets: Vec<f64> = (0..facet.nodes.len())
            .map(|i| {
                let x = ((seed as f64 + 1.3) * (i as f64 + 0.7)).sin();
                amplitude * x
            })
            .collect();
        let mut mesh = structure.mesh.clone();
        apply_roughness(
            &mut mesh,
            GeometricModel::ContinuousSurface,
            &[FacetPerturbation::new(facet, offsets)],
        );
        prop_assert!(assess(&mesh, 1e-12).is_valid());
    }

    /// PFA keeps at most as many factors as variables and its implied
    /// covariance error decreases monotonically with the energy threshold.
    #[test]
    fn pfa_energy_threshold_is_monotone(spacing in 0.2f64..2.0, sigma in 0.05f64..1.0) {
        let positions: Vec<[f64; 3]> = (0..12).map(|i| [spacing * i as f64, 0.0, 0.0]).collect();
        let cov = covariance_matrix(&positions, sigma, CorrelationKernel::Gaussian { length: 1.0 });
        let loose = Pfa::new(&cov, 0.9).unwrap();
        let tight = Pfa::new(&cov, 0.999).unwrap();
        prop_assert!(loose.reduced_dim() <= tight.reduced_dim());
        prop_assert!(tight.reduced_dim() <= 12);
        let err_loose = loose.implied_covariance().sub(&cov).frobenius_norm();
        let err_tight = tight.implied_covariance().sub(&cov).frobenius_norm();
        prop_assert!(err_tight <= err_loose + 1e-12);
    }

    /// wPFA with any positive weights reproduces the covariance exactly when
    /// no truncation happens (energy fraction 1.0 keeps every factor).
    #[test]
    fn wpfa_full_rank_reproduces_covariance(w0 in 0.1f64..10.0, w1 in 0.1f64..10.0) {
        let positions: Vec<[f64; 3]> = (0..6).map(|i| [0.4 * i as f64, 0.0, 0.0]).collect();
        let cov = covariance_matrix(&positions, 0.5, CorrelationKernel::Exponential { length: 1.0 });
        let weights = vec![w0, w1, 1.0, 2.0, 0.5, 1.5];
        let wpfa = Wpfa::with_rank(&cov, &weights, 6).unwrap();
        let err = wpfa.implied_covariance().sub(&cov).frobenius_norm() / cov.frobenius_norm();
        prop_assert!(err < 1e-6, "relative covariance error {}", err);
    }

    /// The collocation grid always matches the paper's 2d²+3d+1 cost formula
    /// and a fitted quadratic chaos reproduces polynomial models exactly.
    #[test]
    fn sscm_reproduces_quadratic_models(dim in 1usize..6, a in -2.0f64..2.0, b in -2.0f64..2.0) {
        let grid = CollocationGrid::level2(dim);
        prop_assert_eq!(grid.len(), paper_point_count(dim));
        let f = |z: &[f64]| a + b * z[0] + 0.5 * z[0] * z[dim - 1];
        let values: Vec<f64> = grid.points().iter().map(|p| f(p)).collect();
        let pce = PolynomialChaos::fit(HermiteBasis::new(dim, 2), grid.points(), &values).unwrap();
        // Mean of the model: a (+ 0.5*E[z0*z_{d-1}] which is 0.5 if dim == 1).
        let expected_mean = if dim == 1 { a + 0.5 } else { a };
        prop_assert!((pce.mean() - expected_mean).abs() < 1e-8);
        for p in grid.points().iter().take(5) {
            prop_assert!((pce.evaluate(p) - f(p)).abs() < 1e-7);
        }
    }
}
