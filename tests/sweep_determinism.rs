//! Tier-1 guarantee of the frequency-sweep engines:
//! `VariationalAnalysis::run_frequency_sweep` **and**
//! `run_adaptive_frequency_sweep` must produce bit-for-bit identical spectra
//! for any `VAEM_THREADS` value — each collocation sample owns its input
//! slot, every per-sample sweep is a deterministic sequence of refactorized,
//! warm-started solves, and all refinement decisions are made between waves
//! from thread-count-independent data.
//!
//! This file intentionally holds a single test: it mutates the process-wide
//! `VAEM_THREADS` variable, so no other test may race on it in this binary
//! (`tests/parallel_determinism.rs` covers the single-frequency run in its
//! own binary for the same reason).

use vaem::config::{AnalysisConfig, DopingVariationConfig, QuantitySet, VariationSpec};
use vaem::{AdaptiveSweepOptions, AdaptiveSweepResult, FrequencySweepResult, VariationalAnalysis};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

/// A doping-only analysis; the light doping puts a transition knee inside
/// the band so the adaptive variant actually refines.
fn tiny_analysis() -> VariationalAnalysis {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
        terminal: "plug1".to_string(),
    });
    config.energy_fraction = 0.9;
    config.max_reduced_per_group = 2;
    config.nominal_donor = 2.0e1;
    config.variations = VariationSpec {
        roughness: None,
        doping: Some(DopingVariationConfig {
            max_nodes: 10,
            ..DopingVariationConfig::paper_default()
        }),
        via_params: None,
    };
    VariationalAnalysis::new(structure, config)
}

/// Exact (bit-level) fingerprint of a sweep result: every frequency, every
/// nominal value and every SSCM moment at every grid point.
fn fingerprint(result: &FrequencySweepResult) -> Vec<u64> {
    let mut bits = Vec::new();
    for f in &result.frequencies {
        bits.push(f.to_bits());
    }
    for q in &result.quantities {
        for v in &q.nominal {
            bits.push(v.to_bits());
        }
        for s in &q.sscm {
            bits.push(s.mean.to_bits());
            bits.push(s.std.to_bits());
        }
    }
    bits.push(result.collocation_runs as u64);
    bits
}

/// Adaptive fingerprint: the refined-grid sweep plus the provenance and
/// loop diagnostics (a thread-count-dependent refinement order would show
/// up here even if the final spectra happened to agree).
fn adaptive_fingerprint(result: &AdaptiveSweepResult) -> (Vec<u64>, String) {
    (
        fingerprint(&result.sweep),
        format!(
            "origins={:?} waves={} budget_exhausted={}",
            result.origins, result.waves, result.budget_exhausted
        ),
    )
}

#[test]
fn sweeps_are_bit_identical_across_thread_counts() {
    let frequencies = [1.0e8, 5.0e8, 1.0e9, 5.0e9];
    let coarse = [1.0e8, 1.0e9, 1.0e10];
    let adaptive_options = AdaptiveSweepOptions {
        rel_tolerance: 1.0e-3,
        max_points: 16,
        max_depth: 3,
    };

    std::env::set_var("VAEM_THREADS", "1");
    let serial = tiny_analysis()
        .run_frequency_sweep(&frequencies)
        .expect("serial sweep");
    let serial_adaptive = tiny_analysis()
        .run_adaptive_frequency_sweep(&coarse, &adaptive_options)
        .expect("serial adaptive sweep");
    std::env::set_var("VAEM_THREADS", "4");
    let parallel = tiny_analysis()
        .run_frequency_sweep(&frequencies)
        .expect("parallel sweep");
    let parallel_adaptive = tiny_analysis()
        .run_adaptive_frequency_sweep(&coarse, &adaptive_options)
        .expect("parallel adaptive sweep");
    std::env::remove_var("VAEM_THREADS");

    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "frequency-sweep spectra changed with the thread count"
    );
    assert!(
        serial_adaptive.refined_point_count() >= 1,
        "adaptive fixture must actually refine to make this test meaningful"
    );
    assert_eq!(
        adaptive_fingerprint(&serial_adaptive),
        adaptive_fingerprint(&parallel_adaptive),
        "adaptive sweep refinement changed with the thread count"
    );
}
