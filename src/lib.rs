//! Reproduction harness for the variation-aware EM–semiconductor coupled TSV solver.
//!
//! This crate only hosts the repository-level examples (`examples/`) and
//! integration tests (`tests/`); the actual library lives in the [`vaem`]
//! crate and the substrate crates it re-exports.

pub use vaem;
