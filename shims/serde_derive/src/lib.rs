//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain-old
//! data types but never actually serializes anything (there is no data-format
//! crate in the build), so the derives can expand to nothing. When a real
//! serde becomes available these shims drop out without source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
