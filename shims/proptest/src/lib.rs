//! Offline stand-in for [`proptest`](https://docs.rs/proptest/1).
//!
//! The build container cannot reach crates.io, so this shim implements the
//! slice of proptest the integration tests use: the [`proptest!`] macro with
//! an inner `#![proptest_config(...)]` attribute, range strategies over
//! `f64`/`u64`/`usize`, and the `prop_assert*` macros. Inputs are sampled
//! uniformly from a deterministic generator (no shrinking), so test runs are
//! reproducible across machines.

#![warn(missing_docs)]

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled input tuples per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic input generator used by the [`proptest!`] expansion.
pub mod test_runner {
    /// SplitMix64-based generator; every test function starts from the same
    /// fixed state so failures are reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed, shared seed.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Input strategies (uniform sampling over ranges; no shrinking).
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A source of test-case values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.uniform() * (self.end - self.start)
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut TestRng) -> u64 {
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for Range<u32> {
        type Value = u32;

        fn sample(&self, rng: &mut TestRng) -> u32 {
            self.start + (rng.next_u64() % u64::from(self.end - self.start)) as u32
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;

        fn sample(&self, rng: &mut TestRng) -> usize {
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;

        fn sample(&self, rng: &mut TestRng) -> i32 {
            let span = (self.end - self.start) as u64;
            self.start + (rng.next_u64() % span) as i32
        }
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a plain
/// `#[test]` that samples the strategies `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strategy),*) $body )*
        }
    };
}

/// `prop_assert!` standing in via a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `prop_assert_eq!` standing in via a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `prop_assert_ne!` standing in via a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The usual glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges produce values inside their bounds.
        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3u64..17, k in 1usize..4) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
            prop_assert!((1..4).contains(&k));
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..10 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
