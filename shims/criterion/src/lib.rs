//! Offline stand-in for [`criterion`](https://docs.rs/criterion/0.5).
//!
//! The build container cannot reach crates.io, so this shim implements the
//! subset of the Criterion API the `vaem_bench` benches use — groups,
//! `sample_size`, `bench_function`, `bench_with_input`, [`BenchmarkId`] and
//! `Bencher::iter` — with a simple adaptive wall-clock timing loop instead of
//! Criterion's full statistical machinery.
//!
//! Each benchmark reports its mean iteration time to stdout. When the
//! `VAEM_BENCH_JSON` environment variable names a file, one JSON object per
//! benchmark is appended to it (JSON-lines), which is how the repo's
//! `BENCH_baseline.json` trajectory file is produced.

#![warn(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`"function/parameter"`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Conversion into a benchmark id string; mirrors Criterion's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Returns the id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    samples: usize,
    measurement: Option<Measurement>,
}

/// One completed measurement.
struct Measurement {
    mean_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, adaptively choosing the iteration count so one
    /// benchmark costs milliseconds, not seconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: one timed call decides how many
        // iterations fit the per-sample budget.
        let start = Instant::now();
        black_box(routine());
        let first_ns = start.elapsed().as_nanos().max(1) as f64;

        const SAMPLE_BUDGET_NS: f64 = 5.0e6; // 5 ms per sample
        let per_sample = ((SAMPLE_BUDGET_NS / first_ns).floor() as u64).clamp(1, 100_000);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += per_sample;
        }
        self.measurement = Some(Measurement {
            mean_ns: total_ns / total_iters as f64,
            iterations: total_iters,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnOnce(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            samples: self.sample_size,
            measurement: None,
        };
        f(&mut bencher);
        self.criterion.record(full_id, bencher.measurement);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnOnce(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; recording happens eagerly).
    pub fn finish(&mut self) {}
}

/// One recorded benchmark line.
struct Record {
    id: String,
    mean_ns: f64,
    iterations: u64,
}

/// Top-level benchmark driver standing in for `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            measurement: None,
        };
        f(&mut bencher);
        self.record(id.to_owned(), bencher.measurement);
        self
    }

    fn record(&mut self, id: String, measurement: Option<Measurement>) {
        if let Some(m) = measurement {
            self.records.push(Record {
                id,
                mean_ns: m.mean_ns,
                iterations: m.iterations,
            });
        }
    }

    /// Prints the collected measurements and, when `VAEM_BENCH_JSON` is set,
    /// appends them as JSON-lines to that file.
    pub fn finalize(&mut self) {
        for r in &self.records {
            println!(
                "{:<50} time: {:>12}   ({} iterations)",
                r.id,
                format_ns(r.mean_ns),
                r.iterations
            );
        }
        if let Ok(path) = std::env::var("VAEM_BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = self.append_json(&path) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
        }
        self.records.clear();
    }

    fn append_json(&self, path: &str) -> std::io::Result<()> {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(
                out,
                "{{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}",
                r.id, r.mean_ns, r.iterations
            );
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(out.as_bytes())
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1.0e3 {
        format!("{ns:.1} ns")
    } else if ns < 1.0e6 {
        format!("{:.2} µs", ns / 1.0e3)
    } else if ns < 1.0e9 {
        format!("{:.2} ms", ns / 1.0e6)
    } else {
        format!("{:.3} s", ns / 1.0e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.finalize();
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`; the shim
            // has no CLI surface, so arguments are deliberately ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_formats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("fast", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].id, "g/fast");
        assert_eq!(c.records[1].id, "g/param/4");
        assert!(c.records.iter().all(|r| r.mean_ns > 0.0));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.30 µs");
        assert_eq!(format_ns(12_300_000.0), "12.30 ms");
        assert_eq!(format_ns(2.5e9), "2.500 s");
    }
}
