//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build container has no network route to crates.io, so the workspace
//! vendors the small slice of the `rand` 0.8 API that the solver crates
//! actually use:
//!
//! * [`RngCore`] / [`Rng::gen`] — uniform `f64` (and integer) draws,
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding,
//! * [`rngs::StdRng`] — the concrete generator.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64. It does **not** reproduce the upstream `StdRng` stream (which
//! is ChaCha12), but every consumer in this workspace only needs a
//! deterministic, statistically solid uniform source for Box–Muller normal
//! draws and Monte-Carlo reference runs.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support mirroring `rand::SeedableRng` (only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A distribution that can produce values of type `T` from a generator.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over `[0, 1)` for floats, uniform over
/// the full range for integers.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators ([`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert!(draw(&mut rng) < 1.0);
    }
}
