//! Offline stand-in for [`serde`](https://docs.rs/serde/1).
//!
//! The solver crates tag plain-old-data types with
//! `#[derive(Serialize, Deserialize)]` so that a future persistence layer can
//! pick them up, but nothing in the workspace serializes today (no data
//! format crate is available offline). This shim provides marker traits under
//! the usual names plus no-op derive macros, so the annotations compile
//! unchanged and the shim can later be swapped for the real crate without
//! touching the sources.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
