//! Physical constants in the µm-based unit system.
//!
//! Lengths are µm, charge in C, potential in V, capacitance in F,
//! conductivity in S/µm, carrier densities in µm⁻³, mobility in µm²/(V·s).

/// Elementary charge (C).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Vacuum permittivity (F/µm).
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-18;

/// Vacuum permeability (H/µm).
pub const VACUUM_PERMEABILITY: f64 = 1.256_637_062_12e-12;

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Reference lattice temperature (K).
pub const TEMPERATURE: f64 = 300.0;

/// Thermal voltage `k_B·T/q` at the reference temperature (V).
pub const THERMAL_VOLTAGE: f64 = BOLTZMANN * TEMPERATURE / ELEMENTARY_CHARGE;

/// Intrinsic carrier concentration of silicon at 300 K (µm⁻³).
///
/// 1.45·10¹⁰ cm⁻³ = 1.45·10⁻² µm⁻³.
pub const SILICON_INTRINSIC_DENSITY: f64 = 1.45e-2;

/// Relative permittivity of silicon.
pub const SILICON_REL_PERMITTIVITY: f64 = 11.7;

/// Relative permittivity of SiO₂-like inter-layer dielectric.
pub const OXIDE_REL_PERMITTIVITY: f64 = 3.9;

/// Conductivity of the TSV/plug metal (copper), S/µm (5.8·10⁷ S/m).
pub const METAL_CONDUCTIVITY: f64 = 58.0;

/// Electron mobility of lightly doped silicon (µm²/(V·s)); 1417 cm²/(V·s).
pub const ELECTRON_MOBILITY: f64 = 1.417e11;

/// Hole mobility of lightly doped silicon (µm²/(V·s)); 470 cm²/(V·s).
pub const HOLE_MOBILITY: f64 = 4.70e10;

/// Converts a density from cm⁻³ to µm⁻³.
pub fn per_cm3_to_per_um3(value: f64) -> f64 {
    value * 1.0e-12
}

/// Converts a conductivity from S/m to S/µm.
pub fn siemens_per_m_to_per_um(value: f64) -> f64 {
    value * 1.0e-6
}

/// Converts a mobility from cm²/(V·s) to µm²/(V·s).
pub fn cm2_to_um2(value: f64) -> f64 {
    value * 1.0e8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_is_about_25_85_mv() {
        assert!((THERMAL_VOLTAGE - 0.02585).abs() < 2e-4);
    }

    #[test]
    fn unit_conversions_are_consistent() {
        assert!((per_cm3_to_per_um3(1.45e10) - SILICON_INTRINSIC_DENSITY).abs() < 1e-6);
        assert!((siemens_per_m_to_per_um(5.8e7) - METAL_CONDUCTIVITY).abs() < 1e-9);
        assert!((cm2_to_um2(1417.0) - ELECTRON_MOBILITY).abs() < 1e3);
    }

    #[test]
    fn silicon_conductivity_sanity_check() {
        // sigma = q * mu_n * n for 1e17 cm^-3 n-type doping should land in
        // the hundreds-to-thousands of S/m range (i.e. ~1e-3 S/µm).
        let nd = per_cm3_to_per_um3(1.0e17);
        let sigma = ELEMENTARY_CHARGE * ELECTRON_MOBILITY * nd;
        assert!(sigma > 1.0e-4 && sigma < 1.0e-2, "sigma = {sigma}");
    }
}
