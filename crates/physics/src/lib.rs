//! Material and semiconductor physical models for the VAEM coupled solver.
//!
//! All quantities use a micrometre-based unit system (lengths in µm,
//! capacitance in F, conductivity in S/µm, carrier densities in µm⁻³), which
//! keeps the FVM matrix entries within a numerically comfortable range for
//! the µm-scale TSV structures of the paper.
//!
//! Provided models:
//!
//! * [`constants`] — physical constants in the µm unit system.
//! * [`ElectricalProperties`] / [`MaterialTable`] — ε_r, σ_c, µ_r per
//!   [`Material`](vaem_mesh::Material) (the coefficients of the paper's
//!   eqs. (1) and (3)).
//! * [`DopingProfile`] — per-node donor/acceptor concentrations including the
//!   random-doping-fluctuation (RDF) perturbation hook.
//! * [`SiliconParams`] and equilibrium-carrier helpers — the semiconductor
//!   side of eq. (2).
//! * [`bernoulli`] — the Bernoulli function underlying the
//!   Scharfetter–Gummel flux discretization.
//! * [`mobility`] — constant and doping-dependent (Caughey–Thomas) mobility.
//! * [`recombination`] — Shockley–Read–Hall generation/recombination
//!   (the `U(n, p)` of eq. (2)) with analytic derivatives for the Jacobian.
//!
//! # Example
//!
//! ```
//! use vaem_physics::{constants, SiliconParams};
//!
//! let si = SiliconParams::default();
//! // 1e17 cm^-3 n-type doping in µm^-3:
//! let nd = 1.0e5;
//! let (n0, p0) = si.equilibrium_densities(nd, 0.0);
//! assert!(n0 > 0.99 * nd && n0 < 1.01 * nd);
//! assert!(p0 < 1.0); // minority carriers are rare
//! let phi = si.built_in_potential(nd, 0.0);
//! assert!(phi > 0.3 && phi < 0.5);
//! assert!(constants::THERMAL_VOLTAGE > 0.025 && constants::THERMAL_VOLTAGE < 0.026);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bernoulli;
pub mod constants;
mod doping;
mod materials;
pub mod mobility;
pub mod recombination;
mod semiconductor;

pub use doping::DopingProfile;
pub use materials::{ElectricalProperties, MaterialTable};
pub use semiconductor::SiliconParams;
