//! Shockley–Read–Hall generation/recombination.
//!
//! This is the `U(n, p)` term on the right-hand side of the carrier
//! continuity equation (paper eq. (2)). Analytic derivatives are provided for
//! the Newton Jacobian blocks `∂K/∂{p, n}`.

use crate::SiliconParams;

/// SRH recombination rate `U = (n·p − n_i²) / (τ_p·(n + n_i) + τ_n·(p + n_i))`
/// in µm⁻³/s (positive = net recombination).
pub fn srh_rate(n: f64, p: f64, silicon: &SiliconParams) -> f64 {
    let ni = silicon.intrinsic_density;
    let denom = silicon.hole_lifetime * (n + ni) + silicon.electron_lifetime * (p + ni);
    (n * p - ni * ni) / denom
}

/// Partial derivative `∂U/∂n`.
pub fn srh_rate_dn(n: f64, p: f64, silicon: &SiliconParams) -> f64 {
    let ni = silicon.intrinsic_density;
    let denom = silicon.hole_lifetime * (n + ni) + silicon.electron_lifetime * (p + ni);
    let num = n * p - ni * ni;
    p / denom - num * silicon.hole_lifetime / (denom * denom)
}

/// Partial derivative `∂U/∂p`.
pub fn srh_rate_dp(n: f64, p: f64, silicon: &SiliconParams) -> f64 {
    let ni = silicon.intrinsic_density;
    let denom = silicon.hole_lifetime * (n + ni) + silicon.electron_lifetime * (p + ni);
    let num = n * p - ni * ni;
    n / denom - num * silicon.electron_lifetime / (denom * denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_has_zero_net_recombination() {
        let si = SiliconParams::default();
        let (n0, p0) = si.equilibrium_densities(1.0e5, 0.0);
        let u = srh_rate(n0, p0, &si);
        assert!(u.abs() < 1e-6, "u = {u}");
    }

    #[test]
    fn excess_carriers_recombine_and_depletion_generates() {
        let si = SiliconParams::default();
        let (n0, p0) = si.equilibrium_densities(1.0e5, 0.0);
        assert!(srh_rate(n0 * 2.0, p0 * 2.0, &si) > 0.0);
        assert!(srh_rate(n0 * 0.5, p0 * 0.5, &si) < 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let si = SiliconParams::default();
        let n = 3.0e4;
        let p = 7.0e1;
        let h = 1e-3;
        let fd_n = (srh_rate(n + h, p, &si) - srh_rate(n - h, p, &si)) / (2.0 * h);
        let fd_p = (srh_rate(n, p + h, &si) - srh_rate(n, p - h, &si)) / (2.0 * h);
        assert!((srh_rate_dn(n, p, &si) - fd_n).abs() / fd_n.abs().max(1e-30) < 1e-5);
        assert!((srh_rate_dp(n, p, &si) - fd_p).abs() / fd_p.abs().max(1e-30) < 1e-5);
    }
}
