//! Carrier mobility models.

use crate::constants;

/// Mobility model selection for the drift–diffusion discretization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// Constant (doping-independent) mobilities.
    Constant {
        /// Electron mobility (µm²/(V·s)).
        electron: f64,
        /// Hole mobility (µm²/(V·s)).
        hole: f64,
    },
    /// Caughey–Thomas doping-dependent mobility.
    CaugheyThomas,
}

impl Default for MobilityModel {
    fn default() -> Self {
        MobilityModel::Constant {
            electron: constants::ELECTRON_MOBILITY,
            hole: constants::HOLE_MOBILITY,
        }
    }
}

impl MobilityModel {
    /// Electron mobility at the given total doping concentration (µm⁻³).
    pub fn electron(&self, total_doping: f64) -> f64 {
        match *self {
            MobilityModel::Constant { electron, .. } => electron,
            MobilityModel::CaugheyThomas => caughey_thomas(
                total_doping,
                constants::cm2_to_um2(68.5),
                constants::cm2_to_um2(1414.0),
                constants::per_cm3_to_per_um3(9.2e16),
                0.711,
            ),
        }
    }

    /// Hole mobility at the given total doping concentration (µm⁻³).
    pub fn hole(&self, total_doping: f64) -> f64 {
        match *self {
            MobilityModel::Constant { hole, .. } => hole,
            MobilityModel::CaugheyThomas => caughey_thomas(
                total_doping,
                constants::cm2_to_um2(44.9),
                constants::cm2_to_um2(470.5),
                constants::per_cm3_to_per_um3(2.23e17),
                0.719,
            ),
        }
    }
}

/// Caughey–Thomas low-field mobility:
/// `µ = µ_min + (µ_max − µ_min) / (1 + (N/N_ref)^α)`.
fn caughey_thomas(doping: f64, mu_min: f64, mu_max: f64, n_ref: f64, alpha: f64) -> f64 {
    mu_min + (mu_max - mu_min) / (1.0 + (doping.max(0.0) / n_ref).powf(alpha))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_ignores_doping() {
        let m = MobilityModel::default();
        assert_eq!(m.electron(0.0), m.electron(1.0e6));
        assert_eq!(m.hole(1.0), m.hole(1.0e8));
    }

    #[test]
    fn caughey_thomas_decreases_with_doping() {
        let m = MobilityModel::CaugheyThomas;
        let lightly = m.electron(constants::per_cm3_to_per_um3(1.0e14));
        let heavily = m.electron(constants::per_cm3_to_per_um3(1.0e19));
        assert!(lightly > heavily);
        // Lightly doped limit approaches the lattice mobility (~1414 cm²/Vs).
        assert!((lightly - constants::cm2_to_um2(1414.0)).abs() / lightly < 0.05);
        // Heavily doped limit approaches mu_min.
        assert!(heavily < constants::cm2_to_um2(200.0));
    }

    #[test]
    fn hole_mobility_is_below_electron_mobility() {
        let m = MobilityModel::CaugheyThomas;
        let doping = constants::per_cm3_to_per_um3(1.0e17);
        assert!(m.hole(doping) < m.electron(doping));
    }
}
