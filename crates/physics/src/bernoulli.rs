//! The Bernoulli function used by the Scharfetter–Gummel flux.
//!
//! The exponentially fitted (Scharfetter–Gummel) discretization of the
//! drift–diffusion current along a link writes the flux in terms of
//! `B(x) = x / (eˣ − 1)`; evaluating it naively loses all precision near
//! `x = 0`, so a series expansion is used there.

/// Bernoulli function `B(x) = x / (eˣ − 1)` with a numerically stable
/// evaluation near zero.
///
/// # Example
/// ```
/// use vaem_physics::bernoulli::bernoulli;
/// assert!((bernoulli(0.0) - 1.0).abs() < 1e-15);
/// assert!((bernoulli(1e-12) - 1.0).abs() < 1e-9);
/// assert!(bernoulli(40.0) > 0.0);
/// ```
pub fn bernoulli(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 1.0e-10 {
        // B(x) ≈ 1 - x/2 + x²/12
        1.0 - 0.5 * x + x * x / 12.0
    } else if ax < 37.0 {
        x / x.exp_m1()
    } else if x > 0.0 {
        // e^x overflows the ratio towards 0.
        x * (-x).exp()
    } else {
        // For very negative x, B(x) ≈ -x.
        -x
    }
}

/// Derivative `B'(x)` of the Bernoulli function, stable near zero.
pub fn bernoulli_derivative(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 1.0e-5 {
        // B'(x) ≈ -1/2 + x/6 - x^3/180
        -0.5 + x / 6.0 - x * x * x / 180.0
    } else {
        let em1 = x.exp_m1();
        let ex = x.exp();
        (em1 - x * ex) / (em1 * em1)
    }
}

/// The pair `(B(x), B(−x))` which always satisfies `B(−x) = B(x) + x`.
pub fn bernoulli_pair(x: f64) -> (f64, f64) {
    let b = bernoulli(x);
    (b, b + x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_at_zero_and_symmetry_identity() {
        assert!((bernoulli(0.0) - 1.0).abs() < 1e-15);
        for &x in &[-30.0, -5.0, -0.3, -1e-8, 1e-8, 0.7, 10.0, 30.0] {
            let (b, bm) = bernoulli_pair(x);
            assert!(
                (bm - bernoulli(-x)).abs() < 1e-9 * bm.abs().max(1.0),
                "identity B(-x) = B(x) + x violated at {x}"
            );
            assert!(b > 0.0, "B must stay positive, failed at {x}");
        }
    }

    #[test]
    fn matches_naive_formula_away_from_zero() {
        for &x in &[-8.0_f64, -2.0, -0.5, 0.5, 2.0, 8.0] {
            let naive = x / (x.exp() - 1.0);
            assert!((bernoulli(x) - naive).abs() < 1e-12 * naive.abs());
        }
    }

    #[test]
    fn series_is_continuous_across_the_switch() {
        let eps = 1.0e-10;
        let below = bernoulli(eps * 0.99);
        let above = bernoulli(eps * 1.01);
        assert!((below - above).abs() < 1e-12);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for &x in &[-3.0, -0.2, 0.0, 0.4, 2.5] {
            let h = 1e-6;
            let fd = (bernoulli(x + h) - bernoulli(x - h)) / (2.0 * h);
            assert!(
                (bernoulli_derivative(x) - fd).abs() < 1e-5,
                "derivative mismatch at {x}: {} vs {fd}",
                bernoulli_derivative(x)
            );
        }
    }

    #[test]
    fn extreme_arguments_do_not_overflow() {
        assert!(bernoulli(800.0).is_finite());
        assert!(bernoulli(-800.0).is_finite());
        assert!((bernoulli(-800.0) - 800.0).abs() < 1e-6);
        assert!(bernoulli(800.0) >= 0.0);
    }
}
