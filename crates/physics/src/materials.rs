//! Bulk electrical properties per material class.

use crate::constants;
use serde::{Deserialize, Serialize};
use vaem_mesh::Material;

/// Frequency-independent bulk electrical properties of a material, i.e. the
/// coefficients ε_r, σ_c and µ_r appearing in the paper's eqs. (1) and (3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectricalProperties {
    /// Relative permittivity ε_r.
    pub rel_permittivity: f64,
    /// Bulk conductivity σ_c in S/µm (carrier transport in semiconductors is
    /// handled separately through the drift–diffusion model).
    pub conductivity: f64,
    /// Relative permeability µ_r.
    pub rel_permeability: f64,
}

impl ElectricalProperties {
    /// Absolute permittivity ε_0·ε_r (F/µm).
    pub fn permittivity(&self) -> f64 {
        constants::VACUUM_PERMITTIVITY * self.rel_permittivity
    }

    /// Complex admittivity magnitude `σ + jωε` split into its parts
    /// `(σ, ωε)` at angular frequency `omega` (rad/s).
    pub fn admittivity_parts(&self, omega: f64) -> (f64, f64) {
        (self.conductivity, omega * self.permittivity())
    }
}

/// Lookup table of [`ElectricalProperties`] for the three material classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaterialTable {
    /// Metal properties (plugs, TSVs, traces).
    pub metal: ElectricalProperties,
    /// Insulator properties (inter-layer dielectric, liner).
    pub insulator: ElectricalProperties,
    /// Semiconductor background properties (silicon lattice; the carrier
    /// conductivity is added by the drift–diffusion model).
    pub semiconductor: ElectricalProperties,
}

impl Default for MaterialTable {
    fn default() -> Self {
        Self {
            metal: ElectricalProperties {
                rel_permittivity: 1.0,
                conductivity: constants::METAL_CONDUCTIVITY,
                rel_permeability: 1.0,
            },
            insulator: ElectricalProperties {
                rel_permittivity: constants::OXIDE_REL_PERMITTIVITY,
                conductivity: 0.0,
                rel_permeability: 1.0,
            },
            semiconductor: ElectricalProperties {
                rel_permittivity: constants::SILICON_REL_PERMITTIVITY,
                conductivity: 0.0,
                rel_permeability: 1.0,
            },
        }
    }
}

impl MaterialTable {
    /// Properties of the given material class.
    pub fn properties(&self, material: Material) -> ElectricalProperties {
        match material {
            Material::Metal => self.metal,
            Material::Insulator => self.insulator,
            Material::Semiconductor => self.semiconductor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_textbook_values() {
        let t = MaterialTable::default();
        assert!((t.metal.conductivity - 58.0).abs() < 1e-9);
        assert!((t.insulator.rel_permittivity - 3.9).abs() < 1e-12);
        assert!((t.semiconductor.rel_permittivity - 11.7).abs() < 1e-12);
        assert_eq!(t.insulator.conductivity, 0.0);
    }

    #[test]
    fn lookup_dispatches_on_material() {
        let t = MaterialTable::default();
        assert_eq!(t.properties(Material::Metal), t.metal);
        assert_eq!(t.properties(Material::Insulator), t.insulator);
        assert_eq!(t.properties(Material::Semiconductor), t.semiconductor);
    }

    #[test]
    fn admittivity_scales_with_frequency() {
        let t = MaterialTable::default();
        let omega = 2.0 * std::f64::consts::PI * 1.0e9;
        let (sigma, weps) = t.insulator.admittivity_parts(omega);
        assert_eq!(sigma, 0.0);
        // omega * eps0 * 3.9 at 1 GHz in F/(µm·s) — around 2e-7 S/µm.
        assert!(weps > 1e-8 && weps < 1e-6, "weps = {weps}");
        let (sigma_m, _) = t.metal.admittivity_parts(omega);
        // Metal conduction dominates its displacement term by many decades.
        assert!(sigma_m / weps > 1e6);
    }
}
