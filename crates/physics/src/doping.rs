//! Per-node doping profiles including the random doping fluctuation hook.

use crate::SiliconParams;
use vaem_mesh::NodeId;

/// Donor/acceptor concentrations assigned to every mesh node (µm⁻³).
///
/// Nodes outside the semiconductor are simply carried with zero doping; the
/// FVM layer only queries semiconductor nodes.
///
/// The random doping fluctuation (RDF) variation of the paper perturbs the
/// donor concentration node-by-node with a correlated relative deviation;
/// [`DopingProfile::perturbed`] applies such a deviation vector.
///
/// # Example
/// ```
/// use vaem_mesh::NodeId;
/// use vaem_physics::DopingProfile;
///
/// let nodes = vec![NodeId(3), NodeId(7)];
/// let profile = DopingProfile::uniform_donor(10, &nodes, 1.0e5);
/// assert_eq!(profile.donor(NodeId(3)), 1.0e5);
/// assert_eq!(profile.donor(NodeId(0)), 0.0);
/// let perturbed = profile.perturbed(&[(NodeId(3), 0.10)]);
/// assert!((perturbed.donor(NodeId(3)) - 1.1e5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DopingProfile {
    donor: Vec<f64>,
    acceptor: Vec<f64>,
}

impl DopingProfile {
    /// Creates an undoped profile covering `node_count` nodes.
    // vaem-lint: cold doping-profile construction, once per sample
    pub fn undoped(node_count: usize) -> Self {
        Self {
            donor: vec![0.0; node_count],
            acceptor: vec![0.0; node_count],
        }
    }

    /// Creates a profile with uniform donor doping `nd` on the given nodes
    /// and zero elsewhere.
    pub fn uniform_donor(node_count: usize, nodes: &[NodeId], nd: f64) -> Self {
        let mut p = Self::undoped(node_count);
        for &n in nodes {
            p.donor[n.index()] = nd;
        }
        p
    }

    /// Creates a profile with uniform acceptor doping `na` on the given nodes.
    pub fn uniform_acceptor(node_count: usize, nodes: &[NodeId], na: f64) -> Self {
        let mut p = Self::undoped(node_count);
        for &n in nodes {
            p.acceptor[n.index()] = na;
        }
        p
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.donor.len()
    }

    /// Returns `true` if the profile covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.donor.is_empty()
    }

    /// Donor concentration at a node (µm⁻³).
    #[inline]
    pub fn donor(&self, node: NodeId) -> f64 {
        self.donor[node.index()]
    }

    /// Acceptor concentration at a node (µm⁻³).
    #[inline]
    pub fn acceptor(&self, node: NodeId) -> f64 {
        self.acceptor[node.index()]
    }

    /// Net doping `N_D − N_A` at a node (µm⁻³).
    #[inline]
    pub fn net(&self, node: NodeId) -> f64 {
        self.donor[node.index()] - self.acceptor[node.index()]
    }

    /// Sets the donor concentration at a node.
    pub fn set_donor(&mut self, node: NodeId, nd: f64) {
        self.donor[node.index()] = nd;
    }

    /// Sets the acceptor concentration at a node.
    pub fn set_acceptor(&mut self, node: NodeId, na: f64) {
        self.acceptor[node.index()] = na;
    }

    /// Returns a copy with relative perturbations applied to the donor
    /// concentration: each `(node, delta)` maps `N_D ← N_D·(1 + delta)`.
    /// The concentration is floored at zero (a fluctuation cannot make the
    /// doping negative).
    // vaem-lint: cold perturbed-profile construction, once per sample
    pub fn perturbed(&self, relative_deltas: &[(NodeId, f64)]) -> Self {
        let mut out = self.clone();
        for &(node, delta) in relative_deltas {
            let v = out.donor[node.index()] * (1.0 + delta);
            out.donor[node.index()] = v.max(0.0);
        }
        out
    }

    /// Equilibrium carrier densities `(n0, p0)` at a node for the given
    /// silicon parameters.
    pub fn equilibrium_at(&self, node: NodeId, silicon: &SiliconParams) -> (f64, f64) {
        silicon.equilibrium_densities(self.donor(node), self.acceptor(node))
    }

    /// Mean donor concentration over the given nodes (used for reporting).
    pub fn mean_donor(&self, nodes: &[NodeId]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        nodes.iter().map(|&n| self.donor(n)).sum::<f64>() / nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_covers_only_listed_nodes() {
        let nodes = vec![NodeId(1), NodeId(2)];
        let p = DopingProfile::uniform_donor(4, &nodes, 2.0e5);
        assert_eq!(p.donor(NodeId(0)), 0.0);
        assert_eq!(p.donor(NodeId(1)), 2.0e5);
        assert_eq!(p.net(NodeId(2)), 2.0e5);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn perturbation_is_relative_and_floored() {
        let nodes = vec![NodeId(0)];
        let p = DopingProfile::uniform_donor(2, &nodes, 1.0e5);
        let q = p.perturbed(&[(NodeId(0), -0.2), (NodeId(1), 0.5)]);
        assert!((q.donor(NodeId(0)) - 8.0e4).abs() < 1e-6);
        // Node 1 had zero doping; stays zero.
        assert_eq!(q.donor(NodeId(1)), 0.0);
        // Extreme negative fluctuation floors at zero.
        let r = p.perturbed(&[(NodeId(0), -1.5)]);
        assert_eq!(r.donor(NodeId(0)), 0.0);
    }

    #[test]
    fn acceptor_profile_and_net() {
        let nodes = vec![NodeId(0), NodeId(1)];
        let mut p = DopingProfile::uniform_acceptor(2, &nodes, 3.0e4);
        p.set_donor(NodeId(1), 5.0e4);
        assert_eq!(p.net(NodeId(0)), -3.0e4);
        assert_eq!(p.net(NodeId(1)), 2.0e4);
    }

    #[test]
    fn equilibrium_at_uses_silicon_params() {
        let si = SiliconParams::default();
        let nodes = vec![NodeId(0)];
        let p = DopingProfile::uniform_donor(1, &nodes, 1.0e5);
        let (n0, p0) = p.equilibrium_at(NodeId(0), &si);
        assert!(n0 > p0);
    }

    #[test]
    fn mean_donor_over_nodes() {
        let nodes = vec![NodeId(0), NodeId(1)];
        let mut p = DopingProfile::uniform_donor(2, &nodes, 1.0e5);
        p.set_donor(NodeId(1), 3.0e5);
        assert!((p.mean_donor(&nodes) - 2.0e5).abs() < 1e-9);
        assert_eq!(p.mean_donor(&[]), 0.0);
    }
}
