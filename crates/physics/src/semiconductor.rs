//! Bulk silicon parameters and equilibrium carrier statistics.

use crate::constants;
use serde::{Deserialize, Serialize};

/// Bulk silicon model parameters (Boltzmann statistics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiliconParams {
    /// Intrinsic carrier density n_i (µm⁻³).
    pub intrinsic_density: f64,
    /// Electron mobility (µm²/(V·s)).
    pub electron_mobility: f64,
    /// Hole mobility (µm²/(V·s)).
    pub hole_mobility: f64,
    /// SRH electron lifetime (s).
    pub electron_lifetime: f64,
    /// SRH hole lifetime (s).
    pub hole_lifetime: f64,
    /// Thermal voltage kT/q (V).
    pub thermal_voltage: f64,
}

impl Default for SiliconParams {
    fn default() -> Self {
        Self {
            intrinsic_density: constants::SILICON_INTRINSIC_DENSITY,
            electron_mobility: constants::ELECTRON_MOBILITY,
            hole_mobility: constants::HOLE_MOBILITY,
            electron_lifetime: 1.0e-6,
            hole_lifetime: 1.0e-6,
            thermal_voltage: constants::THERMAL_VOLTAGE,
        }
    }
}

impl SiliconParams {
    /// Equilibrium electron/hole densities for a net doping
    /// `N_D − N_A = nd − na` under charge neutrality:
    /// `n0 = (N + sqrt(N² + 4·n_i²)) / 2`, `p0 = n_i²/n0` for n-type
    /// (and symmetrically for p-type).
    pub fn equilibrium_densities(&self, nd: f64, na: f64) -> (f64, f64) {
        let net = nd - na;
        let ni = self.intrinsic_density;
        let half = 0.5 * (net.abs() + (net * net + 4.0 * ni * ni).sqrt());
        if net >= 0.0 {
            (half, ni * ni / half)
        } else {
            (ni * ni / half, half)
        }
    }

    /// Built-in potential of the quasi-neutral region relative to intrinsic
    /// silicon: `V_T·asinh(net/(2·n_i))`.
    pub fn built_in_potential(&self, nd: f64, na: f64) -> f64 {
        let net = nd - na;
        self.thermal_voltage * (net / (2.0 * self.intrinsic_density)).asinh()
    }

    /// Electron density for a given electrostatic potential with the electron
    /// quasi-Fermi level at 0 V: `n = n_i·exp(V/V_T)`.
    pub fn electron_density(&self, potential: f64) -> f64 {
        self.intrinsic_density * (potential / self.thermal_voltage).exp()
    }

    /// Hole density for a given electrostatic potential with the hole
    /// quasi-Fermi level at 0 V: `p = n_i·exp(−V/V_T)`.
    pub fn hole_density(&self, potential: f64) -> f64 {
        self.intrinsic_density * (-potential / self.thermal_voltage).exp()
    }

    /// Electron diffusion coefficient `D_n = µ_n·V_T` (µm²/s).
    pub fn electron_diffusivity(&self) -> f64 {
        self.electron_mobility * self.thermal_voltage
    }

    /// Hole diffusion coefficient `D_p = µ_p·V_T` (µm²/s).
    pub fn hole_diffusivity(&self) -> f64 {
        self.hole_mobility * self.thermal_voltage
    }

    /// Small-signal bulk conductivity `q(µ_n·n + µ_p·p)` in S/µm.
    pub fn bulk_conductivity(&self, n: f64, p: f64) -> f64 {
        constants::ELEMENTARY_CHARGE * (self.electron_mobility * n + self.hole_mobility * p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_densities_n_type() {
        let si = SiliconParams::default();
        let nd = 1.0e5; // 1e17 cm^-3
        let (n0, p0) = si.equilibrium_densities(nd, 0.0);
        assert!((n0 - nd).abs() / nd < 1e-6);
        assert!(
            (n0 * p0 - si.intrinsic_density.powi(2)).abs() / si.intrinsic_density.powi(2) < 1e-9
        );
    }

    #[test]
    fn equilibrium_densities_p_type_and_intrinsic() {
        let si = SiliconParams::default();
        let (n0, p0) = si.equilibrium_densities(0.0, 2.0e4);
        assert!(p0 > n0);
        let (ni_n, ni_p) = si.equilibrium_densities(0.0, 0.0);
        assert!((ni_n - si.intrinsic_density).abs() < 1e-12);
        assert!((ni_p - si.intrinsic_density).abs() < 1e-12);
    }

    #[test]
    fn built_in_potential_matches_boltzmann_inversion() {
        let si = SiliconParams::default();
        let nd = 1.0e5;
        let phi = si.built_in_potential(nd, 0.0);
        // n(phi) should reproduce ~nd.
        let n = si.electron_density(phi);
        assert!((n - nd).abs() / nd < 1e-3);
        // p-type doping gives a negative potential.
        assert!(si.built_in_potential(0.0, 1.0e5) < 0.0);
    }

    #[test]
    fn mass_action_law_holds_for_any_potential() {
        let si = SiliconParams::default();
        for v in [-0.4, -0.1, 0.0, 0.2, 0.35] {
            let n = si.electron_density(v);
            let p = si.hole_density(v);
            let ni2 = si.intrinsic_density * si.intrinsic_density;
            assert!((n * p - ni2).abs() / ni2 < 1e-10);
        }
    }

    #[test]
    fn einstein_relation() {
        let si = SiliconParams::default();
        assert!(
            (si.electron_diffusivity() / si.electron_mobility - si.thermal_voltage).abs() < 1e-12
        );
        assert!((si.hole_diffusivity() / si.hole_mobility - si.thermal_voltage).abs() < 1e-12);
    }

    #[test]
    fn bulk_conductivity_of_doped_silicon_is_reasonable() {
        let si = SiliconParams::default();
        let (n0, p0) = si.equilibrium_densities(1.0e5, 0.0);
        let sigma = si.bulk_conductivity(n0, p0);
        // ~1e-3 S/µm (i.e. ~1e3 S/m) for 1e17 cm^-3.
        assert!(sigma > 1e-4 && sigma < 1e-2, "sigma = {sigma}");
    }
}
