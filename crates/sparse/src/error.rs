//! Error type for sparse assembly and solves.

use std::fmt;

/// Errors produced by the sparse storage types and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Operand shapes are inconsistent.
    DimensionMismatch {
        /// Human-readable description of the expected/actual shapes.
        detail: String,
    },
    /// A (nearly) zero pivot was hit during a factorization.
    ZeroPivot {
        /// Row/column index of the offending pivot.
        index: usize,
    },
    /// The structural pattern lacks an entry that the algorithm requires
    /// (e.g. a missing diagonal for ILU(0)).
    MissingDiagonal {
        /// Row index with no diagonal entry.
        row: usize,
    },
    /// An iterative solver did not reach the requested tolerance.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Relative residual at the final iteration.
        residual: f64,
    },
    /// A numerical breakdown occurred in a Krylov recurrence (e.g. rho = 0).
    Breakdown {
        /// Description of the quantity that vanished.
        detail: String,
    },
    /// A value was assembled at a position that is structurally absent from
    /// the fixed sparsity pattern (see `CsrMatrix::assemble_into`).
    PatternMismatch {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            SparseError::ZeroPivot { index } => write!(f, "zero pivot at index {index}"),
            SparseError::MissingDiagonal { row } => {
                write!(f, "missing structural diagonal in row {row}")
            }
            SparseError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SparseError::Breakdown { detail } => write!(f, "numerical breakdown: {detail}"),
            SparseError::PatternMismatch { row, col } => write!(
                f,
                "entry ({row}, {col}) is not part of the fixed sparsity pattern"
            ),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_reasonably() {
        let e = SparseError::NotConverged {
            iterations: 100,
            residual: 1e-3,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("1.000e-3"));
    }

    #[test]
    fn error_is_send_sync_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SparseError>();
    }
}
