//! Incomplete LU factorization with zero fill-in (ILU(0)).

use crate::{CsrMatrix, SparseError};
use vaem_numeric::Scalar;

/// ILU(0) preconditioner: an approximate factorization `A ≈ L·U` that keeps
/// exactly the sparsity pattern of `A`.
///
/// Used to precondition [`crate::BiCgStab`] and [`crate::Gmres`] on the
/// coupled FVM systems.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, Ilu0};
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
/// let ilu = Ilu0::new(&a)?;
/// let z = ilu.apply(&[1.0, 1.0]);
/// // For a 2x2 matrix ILU(0) is exact, so A·z = [1, 1].
/// let az = a.matvec(&z);
/// assert!((az[0] - 1.0).abs() < 1e-12 && (az[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ilu0<T: Scalar = f64> {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
    diag_pos: Vec<usize>,
    n: usize,
}

impl<T: Scalar> Ilu0<T> {
    /// Computes the ILU(0) factorization of a square matrix.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] for non-square matrices.
    /// * [`SparseError::MissingDiagonal`] when a row lacks a structural
    ///   diagonal entry.
    /// * [`SparseError::ZeroPivot`] when a pivot becomes exactly zero.
    // vaem-lint: cold preconditioner construction, once per sparsity pattern
    pub fn new(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "ILU(0) requires a square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        a.require_diagonal()?;
        let n = a.rows();
        let row_ptr = a.row_ptr().to_vec();
        let col_idx = a.col_idx().to_vec();
        let mut values = a.values().to_vec();

        // Locate the diagonal position of each row.
        let mut diag_pos = vec![0usize; n];
        for r in 0..n {
            for k in row_ptr[r]..row_ptr[r + 1] {
                if col_idx[k] == r {
                    diag_pos[r] = k;
                    break;
                }
            }
        }

        // IKJ-variant factorization restricted to the original pattern.
        // `pos_of_col[c]` maps a column index to its position in the current
        // row (usize::MAX when the column is not present).
        let mut pos_of_col = vec![usize::MAX; n];
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                pos_of_col[col_idx[k]] = k;
            }
            // Eliminate entries left of the diagonal.
            for kp in row_ptr[i]..diag_pos[i] {
                let k = col_idx[kp];
                let pivot = values[diag_pos[k]];
                if pivot.modulus() == 0.0 {
                    return Err(SparseError::ZeroPivot { index: k });
                }
                let lik = values[kp] / pivot;
                values[kp] = lik;
                for kk in (diag_pos[k] + 1)..row_ptr[k + 1] {
                    let j = col_idx[kk];
                    let pos = pos_of_col[j];
                    if pos != usize::MAX {
                        let update = lik * values[kk];
                        values[pos] -= update;
                    }
                }
            }
            if values[diag_pos[i]].modulus() == 0.0 {
                return Err(SparseError::ZeroPivot { index: i });
            }
            for k in row_ptr[i]..row_ptr[i + 1] {
                pos_of_col[col_idx[k]] = usize::MAX;
            }
        }

        Ok(Self {
            row_ptr,
            col_idx,
            values,
            diag_pos,
            n,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Applies the preconditioner: returns `z ≈ A⁻¹·r` by solving
    /// `L·U·z = r` with the incomplete factors.
    ///
    /// # Panics
    /// Panics if `r.len()` differs from the dimension.
    // vaem-lint: cold allocating convenience wrapper; hot callers use apply_into
    pub fn apply(&self, r: &[T]) -> Vec<T> {
        let mut z = vec![T::zero(); self.n];
        self.apply_into(r, &mut z);
        z
    }

    /// Applies the preconditioner into a caller-provided buffer (`r` and `z`
    /// must not alias) — the allocation-free inner-loop variant used by the
    /// Krylov solver workspaces.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn apply_into(&self, r: &[T], z: &mut [T]) {
        assert_eq!(r.len(), self.n, "ilu apply: dimension mismatch");
        assert_eq!(z.len(), self.n, "ilu apply: output length mismatch");
        // Forward solve with unit lower-triangular L; the strictly-lower
        // entries only reference already-computed z components, so z can be
        // filled directly from r.
        for i in 0..self.n {
            let mut acc = r[i];
            for k in self.row_ptr[i]..self.diag_pos[i] {
                acc -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = acc;
        }
        // Backward solve with U.
        for i in (0..self.n).rev() {
            let mut acc = z[i];
            for k in (self.diag_pos[i] + 1)..self.row_ptr[i + 1] {
                acc -= self.values[k] * z[self.col_idx[k]];
            }
            z[i] = acc / self.values[self.diag_pos[i]];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::Complex64;

    fn laplacian_1d(n: usize) -> CsrMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn tridiagonal_ilu0_is_exact() {
        // For a tridiagonal matrix ILU(0) equals the full LU, so applying the
        // preconditioner solves the system exactly.
        let a = laplacian_1d(10);
        let ilu = Ilu0::new(&a).unwrap();
        let b = vec![1.0; 10];
        let x = ilu.apply(&b);
        let r = a.residual(&x, &b);
        let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rnorm < 1e-12, "residual {rnorm}");
    }

    #[test]
    fn missing_diagonal_is_reported() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        assert!(matches!(
            Ilu0::new(&a),
            Err(SparseError::MissingDiagonal { row: 0 })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = CsrMatrix::<f64>::from_triplets(2, 3, &[(0, 0, 1.0), (1, 1, 1.0)]);
        assert!(matches!(
            Ilu0::new(&a),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn complex_tridiagonal_is_exact_too() {
        let j = Complex64::I;
        let mut t = Vec::new();
        let n = 6;
        for i in 0..n {
            t.push((i, i, Complex64::new(3.0, 0.5)));
            if i > 0 {
                t.push((i, i - 1, -Complex64::ONE + j * 0.1));
            }
            if i + 1 < n {
                t.push((i, i + 1, -Complex64::ONE));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let ilu = Ilu0::new(&a).unwrap();
        let b = vec![Complex64::ONE; n];
        let x = ilu.apply(&b);
        let r = a.residual(&x, &b);
        let rnorm: f64 = r.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
        assert!(rnorm < 1e-12);
    }

    #[test]
    fn preconditioner_reduces_condition_for_2d_grid() {
        // Build a small 2-D Laplacian (pattern wider than tridiagonal) and
        // check the preconditioned residual is much smaller than the
        // unpreconditioned one for an arbitrary vector.
        let nx = 6;
        let n = nx * nx;
        let mut t = Vec::new();
        let idx = |i: usize, j: usize| i * nx + j;
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let ilu = Ilu0::new(&a).unwrap();
        let b = vec![1.0; n];
        let z = ilu.apply(&b);
        let r = a.residual(&z, &b);
        let rnorm: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        let bnorm: f64 = (n as f64).sqrt();
        // Not exact (fill-in discarded) but clearly better than doing nothing.
        assert!(rnorm < 0.5 * bnorm, "rnorm = {rnorm}, bnorm = {bnorm}");
    }
}
