//! High-level linear-solver front-end.
//!
//! The FVM layer does not want to care about preconditioners, scalings and
//! fallbacks; it hands a [`CsrMatrix`] and a right-hand side to
//! [`LinearSolver`] and receives a solution plus a [`SolveReport`].

use crate::{
    BiCgStab, BiCgStabWorkspace, CsrMatrix, Gmres, GmresWorkspace, Ilu0, KrylovOptions,
    RowColScaling, SparseError, SparseLu, SymbolicLu,
};
use vaem_numeric::{vecops, Scalar};

/// Strategy selection for [`LinearSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Equilibrate, use the direct LU below a size threshold, otherwise
    /// ILU(0)+BiCGSTAB with an ILU(0)+GMRES and finally direct fallback.
    #[default]
    Auto,
    /// Always use the direct sparse LU.
    DirectLu,
    /// ILU(0)-preconditioned BiCGSTAB only.
    IluBiCgStab,
    /// ILU(0)-preconditioned restarted GMRES only.
    IluGmres,
}

/// Statistics describing how a linear solve was performed.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Short name of the strategy that produced the returned solution.
    pub strategy: &'static str,
    /// Krylov iterations used (0 for a direct solve).
    pub iterations: usize,
    /// Relative residual `‖b − A·x‖ / ‖b‖` of the returned solution,
    /// measured on the *original* (unscaled) system.
    pub residual_norm: f64,
    /// Matrix dimension.
    pub dimension: usize,
    /// Matrix stored non-zeros.
    pub nnz: usize,
}

/// Front-end that equilibrates the system and dispatches to the configured
/// solver, with automatic fallbacks in [`SolverKind::Auto`] mode.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, LinearSolver, SolverKind};
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0e7), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0e-6)]);
/// let b = vec![1.0, 1.0];
/// let solver = LinearSolver::new(SolverKind::Auto);
/// let (x, report) = solver.solve(&a, &b)?;
/// assert!(report.residual_norm < 1e-8);
/// assert_eq!(x.len(), 2);
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinearSolver {
    kind: SolverKind,
    options: KrylovOptions,
    direct_threshold: usize,
}

impl Default for LinearSolver {
    fn default() -> Self {
        Self::new(SolverKind::Auto)
    }
}

impl LinearSolver {
    /// Creates a solver front-end with default Krylov options and a direct
    /// threshold of 384 unknowns.
    ///
    /// The threshold follows the measured crossover on FVM-like systems
    /// (see the `sparse_solvers` bench): at 512 unknowns ILU(0)+BiCGSTAB is
    /// already ~25× faster than the direct LU, and the gap widens with size,
    /// while `Auto` still falls back to GMRES and then the direct LU when
    /// the iteration stagnates.
    pub fn new(kind: SolverKind) -> Self {
        Self {
            kind,
            options: KrylovOptions::default(),
            direct_threshold: 384,
        }
    }

    /// Overrides the Krylov options.
    pub fn with_options(mut self, options: KrylovOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the dimension below which [`SolverKind::Auto`] goes straight
    /// to the direct LU.
    pub fn with_direct_threshold(mut self, threshold: usize) -> Self {
        self.direct_threshold = threshold;
        self
    }

    /// Configured strategy.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Solves `A·x = b` starting from a zero initial guess.
    ///
    /// # Errors
    /// Propagates the underlying solver error if every configured strategy
    /// fails.
    pub fn solve<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
    ) -> Result<(Vec<T>, SolveReport), SparseError> {
        self.solve_with_guess(a, b, None)
    }

    /// Solves `A·x = b` using `x0` as the initial guess for the iterative
    /// strategies (ignored by the direct solver).
    ///
    /// # Errors
    /// Propagates the underlying solver error if every configured strategy
    /// fails.
    pub fn solve_with_guess<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        x0: Option<&[T]>,
    ) -> Result<(Vec<T>, SolveReport), SparseError> {
        if a.rows() != a.cols() || b.len() != a.rows() {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "solver needs square A and matching rhs; got {}x{} with rhs {}",
                    a.rows(),
                    a.cols(),
                    b.len()
                ),
            });
        }
        let (scaled, scaling) = RowColScaling::equilibrate(a);
        let bs = scaling.scale_rhs(b);
        let guess_scaled = x0.map(|g| scaling.scale_guess(g));

        let finish = |x_scaled: Vec<T>, strategy: &'static str, iterations: usize| {
            let x = scaling.unscale_solution(&x_scaled);
            let resid = vecops::norm2(&a.residual(&x, b)) / vecops::norm2(b).max(1e-300);
            (
                x,
                SolveReport {
                    strategy,
                    iterations,
                    residual_norm: resid,
                    dimension: a.rows(),
                    nnz: a.nnz(),
                },
            )
        };

        let direct = || -> Result<(Vec<T>, &'static str, usize), SparseError> {
            let lu = SparseLu::new(&scaled)?;
            Ok((lu.solve(&bs)?, "sparse-lu", 0))
        };
        let bicgstab = || -> Result<(Vec<T>, &'static str, usize), SparseError> {
            let ilu = Ilu0::new(&scaled)?;
            let solver = BiCgStab::new(self.options);
            let (x, it) = solver.solve(&scaled, &bs, Some(&ilu), guess_scaled.as_deref())?;
            Ok((x, "ilu0-bicgstab", it))
        };
        let gmres = || -> Result<(Vec<T>, &'static str, usize), SparseError> {
            let ilu = Ilu0::new(&scaled)?;
            let solver = Gmres::new(self.options);
            let (x, it) = solver.solve(&scaled, &bs, Some(&ilu), guess_scaled.as_deref())?;
            Ok((x, "ilu0-gmres", it))
        };

        let outcome = match self.kind {
            SolverKind::DirectLu => direct(),
            SolverKind::IluBiCgStab => bicgstab(),
            SolverKind::IluGmres => gmres(),
            SolverKind::Auto => {
                if a.rows() <= self.direct_threshold {
                    direct().or_else(|_| bicgstab()).or_else(|_| gmres())
                } else {
                    bicgstab().or_else(|_| gmres()).or_else(|_| direct())
                }
            }
        }?;

        let (x, strategy, iterations) = outcome;
        Ok(finish(x, strategy, iterations))
    }

    /// Equilibrates and factorizes `a` once, returning a [`PreparedSolver`]
    /// that can solve many right-hand sides against the same matrix.
    ///
    /// This is the fast path for workloads that solve one operator
    /// repeatedly — every terminal of a capacitance extraction, every
    /// frequency-sweep point reusing the previous factorization, and the
    /// AC stage of the sample sweeps. The strategy choice mirrors
    /// [`LinearSolver::solve`]: direct LU below the threshold (or when the
    /// ILU(0) setup fails in `Auto` mode), ILU(0)-preconditioned Krylov
    /// above it — and an `Auto` Krylov solve that fails even the GMRES
    /// fallback is rescued by an on-demand direct LU, so the prepared path
    /// is as robust as the one-shot chain.
    ///
    /// # Errors
    /// Propagates factorization failures of the selected strategy.
    pub fn prepare<T: Scalar>(&self, a: &CsrMatrix<T>) -> Result<PreparedSolver<T>, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "prepare needs a square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        let (scaled, scaling) = RowColScaling::equilibrate(a);
        let factorization = match self.kind {
            SolverKind::DirectLu => direct_factorization(&scaled)?,
            SolverKind::IluBiCgStab => Factorization::Ilu {
                ilu: Ilu0::new(&scaled)?,
                gmres_fallback: false,
            },
            SolverKind::IluGmres => Factorization::IluGmresOnly(Ilu0::new(&scaled)?),
            SolverKind::Auto => {
                if a.rows() <= self.direct_threshold {
                    match direct_factorization(&scaled) {
                        Ok(direct) => direct,
                        Err(_) => Factorization::Ilu {
                            ilu: Ilu0::new(&scaled)?,
                            gmres_fallback: true,
                        },
                    }
                } else {
                    match Ilu0::new(&scaled) {
                        Ok(ilu) => Factorization::Ilu {
                            ilu,
                            gmres_fallback: true,
                        },
                        Err(_) => direct_factorization(&scaled)?,
                    }
                }
            }
        };
        Ok(PreparedSolver {
            scaled,
            scaling,
            factorization,
            options: self.options,
            bicgstab_ws: BiCgStabWorkspace::new(),
            gmres_ws: GmresWorkspace::new(),
        })
    }
}

/// How a [`PreparedSolver`] applies its cached factorization.
#[derive(Debug, Clone)]
enum Factorization<T: Scalar> {
    /// Direct sparse LU of the equilibrated matrix, kept together with its
    /// symbolic phase so [`PreparedSolver::refactor`] pays only the numeric
    /// cost when the values change on the same pattern.
    Direct(Box<DirectFactorization<T>>),
    /// ILU(0) preconditioner shared by BiCGSTAB. When `gmres_fallback` is
    /// set (`Auto` mode), a failing solve falls back to GMRES with the same
    /// preconditioner and finally to an on-demand direct LU that replaces
    /// this factorization.
    Ilu { ilu: Ilu0<T>, gmres_fallback: bool },
    /// ILU(0)-preconditioned GMRES only.
    IluGmresOnly(Ilu0<T>),
}

/// A direct sparse LU kept together with its symbolic phase (boxed inside
/// [`Factorization`] to keep the enum small).
#[derive(Debug, Clone)]
struct DirectFactorization<T: Scalar> {
    symbolic: SymbolicLu,
    numeric: SparseLu<T>,
}

/// Builds a symbolic+numeric direct factorization of an equilibrated matrix.
fn direct_factorization<T: Scalar>(scaled: &CsrMatrix<T>) -> Result<Factorization<T>, SparseError> {
    let mut symbolic = SymbolicLu::analyze(scaled)?;
    let numeric = symbolic.factor(scaled)?;
    Ok(Factorization::Direct(Box::new(DirectFactorization {
        symbolic,
        numeric,
    })))
}

/// A factorized linear system ready to solve many right-hand sides.
///
/// Produced by [`LinearSolver::prepare`]; owns the equilibrated matrix, the
/// factorization and the Krylov workspaces, so repeated solves do no
/// factorization work and no per-call allocation beyond the returned
/// solution vector.
#[derive(Debug, Clone)]
pub struct PreparedSolver<T: Scalar> {
    scaled: CsrMatrix<T>,
    scaling: RowColScaling,
    factorization: Factorization<T>,
    options: KrylovOptions,
    bicgstab_ws: BiCgStabWorkspace<T>,
    gmres_ws: GmresWorkspace<T>,
}

impl<T: Scalar> PreparedSolver<T> {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.scaled.rows()
    }

    /// Short name of the prepared strategy.
    pub fn strategy(&self) -> &'static str {
        match &self.factorization {
            Factorization::Direct(_) => "sparse-lu",
            Factorization::Ilu { .. } => "ilu0-bicgstab",
            Factorization::IluGmresOnly(_) => "ilu0-gmres",
        }
    }

    /// Re-equilibrates and refactorizes for a matrix with **new values on
    /// the same sparsity pattern** (a Newton update, the next point of a
    /// frequency sweep), keeping the symbolic analysis of the direct
    /// strategy so only the numeric phase is redone.
    ///
    /// The strategy choice made by [`LinearSolver::prepare`] is kept; a
    /// direct factorization whose cached pivot sequence has gone stale for
    /// the new values transparently re-pivots (see [`SymbolicLu::factor`]),
    /// and a pattern change falls back to a fresh symbolic analysis.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when the shape differs from the
    ///   prepared matrix.
    /// * Factorization failures of the kept strategy.
    pub fn refactor(&mut self, a: &CsrMatrix<T>) -> Result<(), SparseError> {
        if a.rows() != self.scaled.rows() || a.cols() != self.scaled.cols() {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "refactor expects a {}x{} matrix, got {}x{}",
                    self.scaled.rows(),
                    self.scaled.cols(),
                    a.rows(),
                    a.cols()
                ),
            });
        }
        // Factor against the *local* equilibrated matrix and only commit the
        // new scaled/scaling state together with the new factorization: an
        // error must leave the solver answering for the previously prepared
        // matrix, not mix the old factors with the new scaling.
        let (scaled, scaling) = RowColScaling::equilibrate(a);
        match &mut self.factorization {
            Factorization::Direct(direct) => match direct.symbolic.factor(&scaled) {
                Ok(lu) => direct.numeric = lu,
                Err(SparseError::DimensionMismatch { .. }) => {
                    // The sparsity pattern itself changed: re-analyze.
                    self.factorization = direct_factorization(&scaled)?;
                }
                Err(err) => return Err(err),
            },
            Factorization::Ilu { ilu, .. } => *ilu = Ilu0::new(&scaled)?,
            Factorization::IluGmresOnly(ilu) => *ilu = Ilu0::new(&scaled)?,
        }
        self.scaled = scaled;
        self.scaling = scaling;
        Ok(())
    }

    /// Solves `A·x = b` with the cached factorization.
    ///
    /// # Errors
    /// Propagates solver failures (after the GMRES fallback for the `Auto`
    /// Krylov strategy).
    pub fn solve(&mut self, b: &[T]) -> Result<(Vec<T>, SolveReport), SparseError> {
        self.solve_with_guess(b, None)
    }

    /// Solves `A·x = b` starting the iterative strategies from `x0`.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn solve_with_guess(
        &mut self,
        b: &[T],
        x0: Option<&[T]>,
    ) -> Result<(Vec<T>, SolveReport), SparseError> {
        let n = self.scaled.rows();
        if b.len() != n {
            return Err(SparseError::DimensionMismatch {
                detail: format!("prepared solver dimension {n} but rhs has {}", b.len()),
            });
        }
        let bs = self.scaling.scale_rhs(b);
        let guess_scaled = x0.map(|g| self.scaling.scale_guess(g));
        // `None` after the match means "both Krylov strategies failed in
        // Auto mode" — rescued by the direct LU below, mirroring the
        // bicgstab → gmres → direct chain of [`LinearSolver::solve`].
        let mut outcome: Option<(Vec<T>, &'static str, usize)> = None;
        match &self.factorization {
            Factorization::Direct(direct) => {
                outcome = Some((direct.numeric.solve(&bs)?, "sparse-lu", 0))
            }
            Factorization::Ilu {
                ilu,
                gmres_fallback,
            } => {
                let solver = BiCgStab::new(self.options);
                match solver.solve_with_workspace(
                    &self.scaled,
                    &bs,
                    Some(ilu),
                    guess_scaled.as_deref(),
                    &mut self.bicgstab_ws,
                ) {
                    Ok((y, it)) => outcome = Some((y, "ilu0-bicgstab", it)),
                    Err(err) => {
                        if !gmres_fallback {
                            return Err(err);
                        }
                        let gmres = Gmres::new(self.options);
                        if let Ok((y, it)) = gmres.solve_with_workspace(
                            &self.scaled,
                            &bs,
                            Some(ilu),
                            guess_scaled.as_deref(),
                            &mut self.gmres_ws,
                        ) {
                            outcome = Some((y, "ilu0-gmres", it));
                        }
                    }
                }
            }
            Factorization::IluGmresOnly(ilu) => {
                let gmres = Gmres::new(self.options);
                let (y, it) = gmres.solve_with_workspace(
                    &self.scaled,
                    &bs,
                    Some(ilu),
                    guess_scaled.as_deref(),
                    &mut self.gmres_ws,
                )?;
                outcome = Some((y, "ilu0-gmres", it));
            }
        }
        let (y, strategy, iterations) = match outcome {
            Some(result) => result,
            None => {
                // Auto-mode last resort: the iteration has proven unreliable
                // on this operator, so factor the direct LU once (with its
                // symbolic phase, so later refactors stay cheap), keep it
                // for every subsequent solve, and answer from it.
                let direct = direct_factorization(&self.scaled)?;
                let y = match &direct {
                    Factorization::Direct(d) => d.numeric.solve(&bs)?,
                    _ => unreachable!("direct_factorization returns Direct"),
                };
                self.factorization = direct;
                (y, "sparse-lu", 0)
            }
        };
        // Residual of the *original* system, recovered from the scaled one:
        // b − A·x = R⁻¹·(b̂ − Â·ŷ) when Â = R·A·C, x = C·ŷ and b̂ = R·b.
        let mut resid_sqr = 0.0;
        let ay = self.scaled.matvec(&y);
        for i in 0..n {
            let ri = (bs[i] - ay[i]).modulus() / self.scaling.row_factors()[i];
            resid_sqr += ri * ri;
        }
        let resid = resid_sqr.sqrt() / vecops::norm2(b).max(1e-300);
        let x = self.scaling.unscale_solution(&y);
        Ok((
            x,
            SolveReport {
                strategy,
                iterations,
                residual_norm: resid,
                dimension: n,
                nnz: self.scaled.nnz(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::Complex64;

    fn laplacian_2d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn auto_small_uses_direct() {
        let a = laplacian_2d(8);
        let b = vec![1.0; a.rows()];
        let solver = LinearSolver::new(SolverKind::Auto);
        let (_, report) = solver.solve(&a, &b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(report.residual_norm < 1e-10);
    }

    #[test]
    fn auto_large_uses_iterative() {
        let a = laplacian_2d(30); // 900 unknowns
        let b = vec![1.0; a.rows()];
        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(100);
        let (_, report) = solver.solve(&a, &b).unwrap();
        assert_eq!(report.strategy, "ilu0-bicgstab");
        assert!(report.residual_norm < 1e-8);
        assert!(report.iterations > 0);
    }

    #[test]
    fn all_kinds_agree_on_solution() {
        let a = laplacian_2d(10);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.11).sin()).collect();
        let b = a.matvec(&x_true);
        for kind in [
            SolverKind::DirectLu,
            SolverKind::IluBiCgStab,
            SolverKind::IluGmres,
        ] {
            let solver = LinearSolver::new(kind).with_options(KrylovOptions {
                tolerance: 1e-12,
                max_iterations: 5000,
                restart: 50,
            });
            let (x, report) = solver.solve(&a, &b).unwrap();
            assert!(
                vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7,
                "kind {kind:?} failed with report {report:?}"
            );
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = laplacian_2d(20);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.05).cos()).collect();
        let b = a.matvec(&x_true);
        let solver = LinearSolver::new(SolverKind::IluBiCgStab);
        let (_, cold) = solver.solve(&a, &b).unwrap();
        let (_, warm) = solver.solve_with_guess(&a, &b, Some(&x_true)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn complex_system_with_huge_contrast() {
        // Mimics the metal/dielectric admittance contrast at 1 GHz.
        let nx = 12;
        let base = laplacian_2d(nx);
        let n = base.rows();
        let mut t: Vec<(usize, usize, Complex64)> = Vec::new();
        for r in 0..n {
            let sigma = if r % 7 == 0 { 5.8e7 } else { 1.0 };
            for (c, v) in base.row_entries(r) {
                t.push((r, c, Complex64::new(v * sigma, v * 1e-6)));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.2).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let b = a.matvec(&x_true);
        let solver = LinearSolver::new(SolverKind::Auto);
        let (x, report) = solver.solve(&a, &b).unwrap();
        assert!(
            vecops::relative_diff(&x, &x_true, 1e-30) < 1e-6,
            "report {report:?}"
        );
    }

    #[test]
    fn prepared_solver_reuses_one_factorization_for_many_rhs() {
        for (kind, nx, expect) in [
            (SolverKind::Auto, 8, "sparse-lu"),
            (SolverKind::IluBiCgStab, 14, "ilu0-bicgstab"),
            (SolverKind::IluGmres, 10, "ilu0-gmres"),
        ] {
            let a = laplacian_2d(nx);
            let solver = LinearSolver::new(kind);
            let mut prepared = solver.prepare(&a).unwrap();
            assert_eq!(prepared.strategy(), expect);
            assert_eq!(prepared.dim(), a.rows());
            for t in 0..3 {
                let x_true: Vec<f64> = (0..a.rows())
                    .map(|i| ((i + t) as f64 * 0.21).sin())
                    .collect();
                let b = a.matvec(&x_true);
                let (x, report) = prepared.solve(&b).unwrap();
                let (x_ref, _) = solver.solve(&a, &b).unwrap();
                assert!(
                    vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7,
                    "kind {kind:?} rhs {t} report {report:?}"
                );
                assert!(vecops::relative_diff(&x, &x_ref, 1e-30) < 1e-7);
                assert!(report.residual_norm < 1e-7);
            }
        }
    }

    #[test]
    fn prepared_auto_above_threshold_is_iterative_and_warm_startable() {
        let a = laplacian_2d(20);
        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(50);
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "ilu0-bicgstab");
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.05).cos()).collect();
        let b = a.matvec(&x_true);
        let (_, cold) = prepared.solve(&b).unwrap();
        assert!(cold.iterations > 0);
        let (_, warm) = prepared.solve_with_guess(&b, Some(&x_true)).unwrap();
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn prepared_auto_rescues_krylov_failure_with_direct_lu() {
        // A one-iteration budget at an unreachable tolerance makes both
        // BiCGSTAB and GMRES fail; Auto must still answer via the direct
        // LU (and keep it for later solves), like the one-shot chain does.
        let a = laplacian_2d(25); // 625 unknowns, above the direct threshold
        let solver = LinearSolver::new(SolverKind::Auto).with_options(KrylovOptions {
            tolerance: 1e-16,
            max_iterations: 1,
            restart: 2,
        });
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "ilu0-bicgstab");
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.13).sin()).collect();
        let b = a.matvec(&x_true);
        let (x, report) = prepared.solve(&b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
        // The rescue factorization is cached for subsequent solves.
        assert_eq!(prepared.strategy(), "sparse-lu");
        let (x2, report2) = prepared.solve(&b).unwrap();
        assert_eq!(report2.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x2, &x_true, 1e-30) < 1e-8);
    }

    /// Rotation-dominated system: near-90° 2×2 rotation blocks, chained by a
    /// skip-two coupling so that ILU(0) drops fill and cannot be exact.
    fn coupled_rotation_blocks(n_blocks: usize, diag: f64) -> CsrMatrix<f64> {
        let n = 2 * n_blocks;
        let mut t = Vec::new();
        for k in 0..n_blocks {
            let i = 2 * k;
            t.push((i, i, diag));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, 1.0));
            t.push((i + 1, i + 1, diag));
            if i + 2 < n {
                t.push((i, i + 2, 0.3));
                t.push((i + 2, i, -0.3));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn rotation_dominated_near_breakdown_never_yields_an_unconverged_iterate() {
        // With a ~1e-12 rotation-block diagonal, the BiCGSTAB recurrence
        // residual used to drift from the true residual after the
        // near-breakdown amplification and the solver returned "converged"
        // iterates that were wrong by ~1e-5. The true-residual verification
        // must either push the iteration on (residual-replacement restart)
        // or fail so the chain escalates — never hand back a bad iterate.
        let a = coupled_rotation_blocks(40, 1e-12); // 80 unknowns
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&x_true);

        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(8);
        let (x, report) = solver.solve(&a, &b).unwrap();
        assert!(
            vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7,
            "one-shot chain returned a bad iterate: report {report:?}"
        );
        assert!(report.residual_norm < 1e-8, "report {report:?}");

        let mut prepared = solver.prepare(&a).unwrap();
        let (xp, report_p) = prepared.solve(&b).unwrap();
        assert!(
            vecops::relative_diff(&xp, &x_true, 1e-30) < 1e-7,
            "prepared chain returned a bad iterate: report {report_p:?}"
        );
        assert!(report_p.residual_norm < 1e-8, "report {report_p:?}");
    }

    #[test]
    fn exactly_singular_rotation_blocks_escalate_to_the_direct_lu() {
        // A structurally present but exactly zero diagonal defeats ILU(0),
        // so both chains must escalate to the (pivoting) direct LU.
        let a = coupled_rotation_blocks(40, 0.0);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&x_true);
        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(8);
        let (x, report) = solver.solve(&a, &b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "sparse-lu");
        let (xp, _) = prepared.solve(&b).unwrap();
        assert!(vecops::relative_diff(&xp, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn refactor_reuses_the_direct_symbolic_phase() {
        let a = laplacian_2d(9);
        let solver = LinearSolver::new(SolverKind::Auto); // 81 unknowns -> direct
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "sparse-lu");
        // New values, same pattern: a shifted operator.
        let mut shifted = a.clone();
        let triplets: Vec<(usize, usize, f64)> = (0..a.rows())
            .flat_map(|r| {
                a.row_entries(r)
                    .map(move |(c, v)| (r, c, if r == c { v + 1.5 } else { v }))
            })
            .collect();
        shifted.assemble_into(&triplets).unwrap();
        prepared.refactor(&shifted).unwrap();
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.17).cos()).collect();
        let b = shifted.matvec(&x_true);
        let (x, report) = prepared.solve(&b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
        // And the refactored operator matches a from-scratch solve.
        let (x_ref, _) = solver.solve(&shifted, &b).unwrap();
        assert!(vecops::relative_diff(&x, &x_ref, 1e-30) < 1e-8);
    }

    #[test]
    fn refactor_rebuilds_the_ilu_preconditioner() {
        let a = laplacian_2d(20);
        let solver = LinearSolver::new(SolverKind::IluBiCgStab);
        let mut prepared = solver.prepare(&a).unwrap();
        let mut shifted = a.clone();
        let triplets: Vec<(usize, usize, f64)> = (0..a.rows())
            .flat_map(|r| {
                a.row_entries(r)
                    .map(move |(c, v)| (r, c, if r == c { v * 2.0 } else { v }))
            })
            .collect();
        shifted.assemble_into(&triplets).unwrap();
        prepared.refactor(&shifted).unwrap();
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.09).sin()).collect();
        let b = shifted.matvec(&x_true);
        let (x, report) = prepared.solve(&b).unwrap();
        assert_eq!(report.strategy, "ilu0-bicgstab");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7);
        assert!(report.residual_norm < 1e-8);
    }

    #[test]
    fn refactor_rejects_a_shape_change() {
        let a = laplacian_2d(5);
        let mut prepared = LinearSolver::default().prepare(&a).unwrap();
        let other = laplacian_2d(6);
        assert!(matches!(
            prepared.refactor(&other),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn prepared_solver_rejects_bad_rhs_lengths() {
        let a = laplacian_2d(4);
        let mut prepared = LinearSolver::default().prepare(&a).unwrap();
        assert!(matches!(
            prepared.solve(&[1.0, 2.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_rhs_is_rejected() {
        let a = laplacian_2d(4);
        let solver = LinearSolver::default();
        assert!(matches!(
            solver.solve(&a, &[1.0, 2.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }
}
