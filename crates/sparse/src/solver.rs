//! High-level linear-solver front-end.
//!
//! The FVM layer does not want to care about preconditioners, scalings and
//! fallbacks; it hands a [`CsrMatrix`] and a right-hand side to
//! [`LinearSolver`] and receives a solution plus a [`SolveReport`].

use crate::{
    BiCgStab, BiCgStabWorkspace, CsrMatrix, Gmres, GmresWorkspace, Ilu0, KrylovOptions,
    RowColScaling, SparseError, SparseLu, SymbolicLu,
};
use vaem_numeric::{vecops, Scalar};
use vaem_parallel::faults::{self, FaultSite};

/// Deterministic fault-injection checkpoint (see [`vaem_parallel::faults`]):
/// returns the canonical forced error for `site` exactly when the current
/// thread's fault scope arms it, `Ok(())` otherwise — including always
/// outside any scope, so production solves pay one thread-local read per
/// checkpoint.
fn fault_check(site: FaultSite) -> Result<(), SparseError> {
    if !faults::armed(site) {
        return Ok(());
    }
    Err(match site {
        FaultSite::Pivot => SparseError::ZeroPivot { index: 0 },
        FaultSite::Krylov => SparseError::NotConverged {
            iterations: 0,
            residual: f64::INFINITY,
        },
        _ => SparseError::Breakdown {
            // vaem-lint: allow(H1) fault-injection error construction, off the nominal path
            detail: format!("injected fault at site '{site}'"),
        },
    })
}

/// NaN-poisons a solution vector when the `nan` fault site is armed —
/// modeling a solve that "succeeds" with garbage, to exercise the
/// non-finite guards downstream.
fn fault_poison<T: Scalar>(x: &mut [T]) {
    if faults::armed(FaultSite::Nan) {
        x.fill(T::from_f64(f64::NAN));
    }
}

/// Strategy selection for [`LinearSolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Equilibrate, use the direct LU below a size threshold, otherwise
    /// ILU(0)+BiCGSTAB with an ILU(0)+GMRES and finally direct fallback.
    #[default]
    Auto,
    /// Always use the direct sparse LU.
    DirectLu,
    /// ILU(0)-preconditioned BiCGSTAB only.
    IluBiCgStab,
    /// ILU(0)-preconditioned restarted GMRES only.
    IluGmres,
}

/// Statistics describing how a linear solve was performed.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Short name of the strategy that produced the returned solution.
    pub strategy: &'static str,
    /// Krylov iterations used (0 for a direct solve).
    pub iterations: usize,
    /// Relative residual `‖b − A·x‖ / ‖b‖` of the returned solution,
    /// measured on the *original* (unscaled) system.
    pub residual_norm: f64,
    /// Matrix dimension.
    pub dimension: usize,
    /// Matrix stored non-zeros.
    pub nnz: usize,
}

/// Front-end that equilibrates the system and dispatches to the configured
/// solver, with automatic fallbacks in [`SolverKind::Auto`] mode.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, LinearSolver, SolverKind};
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0e7), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0e-6)]);
/// let b = vec![1.0, 1.0];
/// let solver = LinearSolver::new(SolverKind::Auto);
/// let (x, report) = solver.solve(&a, &b)?;
/// assert!(report.residual_norm < 1e-8);
/// assert_eq!(x.len(), 2);
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinearSolver {
    kind: SolverKind,
    options: KrylovOptions,
    direct_threshold: usize,
    seeded_direct_threshold: usize,
}

impl Default for LinearSolver {
    fn default() -> Self {
        Self::new(SolverKind::Auto)
    }
}

impl LinearSolver {
    /// Creates a solver front-end with default Krylov options, a cold direct
    /// threshold of 384 unknowns and a seeded direct threshold of 4096.
    ///
    /// Both thresholds follow measured crossovers on FVM-like systems (see
    /// the `sparse_solvers` bench). Cold: at 512 unknowns ILU(0)+BiCGSTAB is
    /// already ~25× faster than a from-scratch direct LU, and the gap widens
    /// with size, while `Auto` still falls back to GMRES and then the direct
    /// LU when the iteration stagnates. Seeded: when a donor symbolic phase
    /// with a recorded pivot structure is available
    /// ([`LinearSolver::prepare_seeded`]), the direct path pays only the
    /// supernode-blocked numeric refactorization, which the
    /// `seeded_crossover` bench measures on AC-like (shifted, lossy)
    /// slab systems as ~1.6× cheaper than the cold route at 1024 unknowns
    /// and ~5× cheaper at 4096 — the margin *grows* with size because the
    /// cold route burns a Krylov stagnation before its direct rescue. The
    /// default stops at 4096 as a conservative bound on the measured
    /// range, not a measured crossover; diffusion-like systems that
    /// Krylov handles well cross far earlier, and callers can move the
    /// threshold either way with
    /// [`with_seeded_direct_threshold`](LinearSolver::with_seeded_direct_threshold).
    pub fn new(kind: SolverKind) -> Self {
        Self {
            kind,
            options: KrylovOptions::default(),
            direct_threshold: 384,
            seeded_direct_threshold: 4096,
        }
    }

    /// Overrides the Krylov options.
    pub fn with_options(mut self, options: KrylovOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the dimension below which [`SolverKind::Auto`] goes straight
    /// to the direct LU.
    pub fn with_direct_threshold(mut self, threshold: usize) -> Self {
        self.direct_threshold = threshold;
        self
    }

    /// Overrides the dimension below which [`SolverKind::Auto`] prefers the
    /// direct LU when [`LinearSolver::prepare_seeded`] receives a usable
    /// donor symbolic phase (matching pattern, recorded structure). The
    /// seeded direct factorization is numeric-only, so its crossover against
    /// a cold ILU build sits far above the cold [`direct
    /// threshold`](LinearSolver::with_direct_threshold).
    pub fn with_seeded_direct_threshold(mut self, threshold: usize) -> Self {
        self.seeded_direct_threshold = threshold;
        self
    }

    /// Configured strategy.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Solves `A·x = b` starting from a zero initial guess.
    ///
    /// # Errors
    /// Propagates the underlying solver error if every configured strategy
    /// fails.
    pub fn solve<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
    ) -> Result<(Vec<T>, SolveReport), SparseError> {
        self.solve_with_guess(a, b, None)
    }

    /// Solves `A·x = b` using `x0` as the initial guess for the iterative
    /// strategies (ignored by the direct solver).
    ///
    /// # Errors
    /// Propagates the underlying solver error if every configured strategy
    /// fails.
    pub fn solve_with_guess<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        x0: Option<&[T]>,
    ) -> Result<(Vec<T>, SolveReport), SparseError> {
        if a.rows() != a.cols() || b.len() != a.rows() {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) solver-failure message, error path only
                detail: format!(
                    "solver needs square A and matching rhs; got {}x{} with rhs {}",
                    a.rows(),
                    a.cols(),
                    b.len()
                ),
            });
        }
        let (scaled, scaling) = RowColScaling::equilibrate(a);
        let bs = scaling.scale_rhs(b);
        let guess_scaled = x0.map(|g| scaling.scale_guess(g));

        let finish = |x_scaled: Vec<T>, strategy: &'static str, iterations: usize| {
            let mut x = scaling.unscale_solution(&x_scaled);
            fault_poison(&mut x);
            let resid = vecops::norm2(&a.residual(&x, b)) / vecops::norm2(b).max(1e-300);
            (
                x,
                SolveReport {
                    strategy,
                    iterations,
                    residual_norm: resid,
                    dimension: a.rows(),
                    nnz: a.nnz(),
                },
            )
        };

        let direct = || -> Result<(Vec<T>, &'static str, usize), SparseError> {
            fault_check(FaultSite::Pivot)?;
            let lu = SparseLu::new(&scaled)?;
            Ok((lu.solve(&bs)?, "sparse-lu", 0))
        };
        let bicgstab = || -> Result<(Vec<T>, &'static str, usize), SparseError> {
            fault_check(FaultSite::Ilu)?;
            fault_check(FaultSite::Krylov)?;
            let ilu = Ilu0::new(&scaled)?;
            let solver = BiCgStab::new(self.options);
            let (x, it) = solver.solve(&scaled, &bs, Some(&ilu), guess_scaled.as_deref())?;
            Ok((x, "ilu0-bicgstab", it))
        };
        let gmres = || -> Result<(Vec<T>, &'static str, usize), SparseError> {
            fault_check(FaultSite::Ilu)?;
            fault_check(FaultSite::Krylov)?;
            let ilu = Ilu0::new(&scaled)?;
            let solver = Gmres::new(self.options);
            let (x, it) = solver.solve(&scaled, &bs, Some(&ilu), guess_scaled.as_deref())?;
            Ok((x, "ilu0-gmres", it))
        };

        let outcome = match self.kind {
            SolverKind::DirectLu => direct(),
            SolverKind::IluBiCgStab => bicgstab(),
            SolverKind::IluGmres => gmres(),
            SolverKind::Auto => {
                if a.rows() <= self.direct_threshold {
                    direct().or_else(|_| bicgstab()).or_else(|_| gmres())
                } else {
                    bicgstab().or_else(|_| gmres()).or_else(|_| direct())
                }
            }
        }?;

        let (x, strategy, iterations) = outcome;
        Ok(finish(x, strategy, iterations))
    }

    /// Equilibrates and factorizes `a` once, returning a [`PreparedSolver`]
    /// that can solve many right-hand sides against the same matrix.
    ///
    /// This is the fast path for workloads that solve one operator
    /// repeatedly — every terminal of a capacitance extraction, every
    /// frequency-sweep point reusing the previous factorization, and the
    /// AC stage of the sample sweeps. The strategy choice mirrors
    /// [`LinearSolver::solve`]: direct LU below the threshold (or when the
    /// ILU(0) setup fails in `Auto` mode), ILU(0)-preconditioned Krylov
    /// above it — and an `Auto` Krylov solve that fails even the GMRES
    /// fallback is rescued by an on-demand direct LU, so the prepared path
    /// is as robust as the one-shot chain.
    ///
    /// # Errors
    /// Propagates factorization failures of the selected strategy.
    pub fn prepare<T: Scalar>(&self, a: &CsrMatrix<T>) -> Result<PreparedSolver<T>, SparseError> {
        self.prepare_seeded(a, None)
    }

    /// [`LinearSolver::prepare`] with an optional **donor symbolic phase**
    /// for the direct strategy.
    ///
    /// Variation-aware sweeps factorize many small perturbations of one
    /// nominal operator: when `seed` holds a [`SymbolicLu`] whose pattern
    /// matches `a` (after equilibration — scaling changes values, never the
    /// pattern) and whose pivot structure is recorded, the direct
    /// factorization starts from [`SymbolicLu::seed_from`] and pays only
    /// the numeric phase — no ordering selection, no reachability DFS, no
    /// pivot search. A seed whose pivots are numerically stale for `a`
    /// re-pivots transparently inside this solver's own handle (see
    /// [`PreparedSolver::direct_stale_fallbacks`]); a seed with a foreign
    /// pattern is ignored and the full analysis runs.
    ///
    /// In [`SolverKind::Auto`] mode a usable seed also moves the direct/
    /// iterative crossover: the numeric-only seeded refactorization beats a
    /// cold ILU(0) build well past the cold threshold, so the [`seeded
    /// threshold`](LinearSolver::with_seeded_direct_threshold) applies
    /// instead.
    ///
    /// # Errors
    /// Propagates factorization failures of the selected strategy.
    pub fn prepare_seeded<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        seed: Option<&SymbolicLu>,
    ) -> Result<PreparedSolver<T>, SparseError> {
        self.prepare_seeded_with(a, seed, None)
    }

    /// [`LinearSolver::prepare_seeded`] with an additional **donor ILU(0)**
    /// for the iterative strategies.
    ///
    /// The Krylov-side mirror of the direct donor: when the prepared
    /// strategy ends up iterative and `ilu_seed` holds a preconditioner of
    /// the right dimension (donated by a sibling solver on the same pattern,
    /// see [`PreparedSolver::ilu_donor`]), the sample starts from the
    /// donor's ILU(0) values instead of building its own. The seeded
    /// preconditioner enters marked *stale* with the donor's healthy
    /// iteration baseline carried over, so the existing lazy-refresh policy
    /// decides if and when this sample rebuilds from its own values — a
    /// mildly perturbed sample typically never pays the build at all.
    ///
    /// # Errors
    /// Propagates factorization failures of the selected strategy.
    pub fn prepare_seeded_with<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        seed: Option<&SymbolicLu>,
        ilu_seed: Option<&IluSeed<T>>,
    ) -> Result<PreparedSolver<T>, SparseError> {
        if a.rows() != a.cols() {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) solver-failure message, error path only
                detail: format!(
                    "prepare needs a square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        let (scaled, scaling) = RowColScaling::equilibrate(a);
        let ilu_state = |scaled: &CsrMatrix<T>| -> Result<IluRefresh<T>, SparseError> {
            match ilu_seed {
                Some(donated) if donated.ilu.dim() == scaled.rows() => {
                    Ok(IluRefresh::from_seed(donated))
                }
                _ => IluRefresh::build(scaled),
            }
        };
        let factorization = match self.kind {
            SolverKind::DirectLu => direct_factorization(&scaled, seed)?,
            SolverKind::IluBiCgStab => Factorization::Ilu {
                state: ilu_state(&scaled)?,
                gmres_fallback: false,
            },
            SolverKind::IluGmres => Factorization::IluGmresOnly(ilu_state(&scaled)?),
            SolverKind::Auto => {
                // A usable direct donor shifts the crossover: numeric-only
                // seeded refactorization stays cheaper than a cold ILU(0)
                // build up to the (much larger) seeded threshold.
                let seeded = seed.is_some_and(|d| d.has_structure() && d.matches(&scaled));
                let threshold = if seeded {
                    self.seeded_direct_threshold.max(self.direct_threshold)
                } else {
                    self.direct_threshold
                };
                if a.rows() <= threshold {
                    match direct_factorization(&scaled, seed) {
                        Ok(direct) => direct,
                        Err(_) => Factorization::Ilu {
                            state: ilu_state(&scaled)?,
                            gmres_fallback: true,
                        },
                    }
                } else {
                    match ilu_state(&scaled) {
                        Ok(state) => Factorization::Ilu {
                            state,
                            gmres_fallback: true,
                        },
                        Err(_) => direct_factorization(&scaled, seed)?,
                    }
                }
            }
        };
        Ok(PreparedSolver {
            scaled,
            scaling,
            factorization,
            options: self.options,
            bicgstab_ws: BiCgStabWorkspace::new(),
            gmres_ws: GmresWorkspace::new(),
        })
    }
}

/// A donated ILU(0) preconditioner plus the donor's healthy iteration
/// baseline — the Krylov-side counterpart of the [`SymbolicLu`] direct
/// donor. Produced by [`PreparedSolver::ilu_donor`], consumed by
/// [`LinearSolver::prepare_seeded_with`].
#[derive(Debug, Clone)]
pub struct IluSeed<T: Scalar> {
    ilu: Ilu0<T>,
    baseline_iterations: Option<(usize, &'static str)>,
}

impl<T: Scalar> IluSeed<T> {
    /// Dimension the donated preconditioner was built for.
    pub fn dim(&self) -> usize {
        self.ilu.dim()
    }
}

/// Iteration-count degradation ratio that retires a kept (stale) ILU(0):
/// when a solve against a preconditioner built for *older* values needs
/// more than `ILU_REFRESH_RATIO × baseline + ILU_REFRESH_SLACK` iterations,
/// the preconditioner is rebuilt from the current values before the next
/// solve. The additive slack keeps tiny baselines (1–3 iterations) from
/// triggering rebuilds on noise.
const ILU_REFRESH_RATIO: f64 = 2.0;
/// See [`ILU_REFRESH_RATIO`].
const ILU_REFRESH_SLACK: usize = 4;

/// How a [`PreparedSolver`] applies its cached factorization.
#[derive(Debug, Clone)]
enum Factorization<T: Scalar> {
    /// Direct sparse LU of the equilibrated matrix, kept together with its
    /// symbolic phase so [`PreparedSolver::refactor`] pays only the numeric
    /// cost when the values change on the same pattern.
    Direct(Box<DirectFactorization<T>>),
    /// ILU(0) preconditioner shared by BiCGSTAB. When `gmres_fallback` is
    /// set (`Auto` mode), a failing solve falls back to GMRES with the same
    /// preconditioner and finally to an on-demand direct LU that replaces
    /// this factorization.
    Ilu {
        state: IluRefresh<T>,
        gmres_fallback: bool,
    },
    /// ILU(0)-preconditioned GMRES only.
    IluGmresOnly(IluRefresh<T>),
}

/// A direct sparse LU kept together with its symbolic phase (boxed inside
/// [`Factorization`] to keep the enum small).
#[derive(Debug, Clone)]
struct DirectFactorization<T: Scalar> {
    symbolic: SymbolicLu,
    numeric: SparseLu<T>,
}

/// An ILU(0) preconditioner together with its lazy refresh policy.
///
/// [`PreparedSolver::refactor`] on an iterative strategy does **not**
/// rebuild the factorization eagerly: for a dense frequency grid or a
/// converging Newton tail the previous ILU(0) usually still clusters the
/// spectrum well enough, so the rebuild is deferred until the observed
/// Krylov iteration count degrades past
/// `ILU_REFRESH_RATIO × baseline + ILU_REFRESH_SLACK` (or a solve with the
/// stale factors fails outright).
#[derive(Debug, Clone)]
struct IluRefresh<T: Scalar> {
    ilu: Ilu0<T>,
    /// Iteration count of the first solve after the last (re)build — the
    /// "healthy preconditioner" reference — tagged with the solver that
    /// produced it. BiCGSTAB and GMRES counts are not commensurate (two
    /// matvecs per BiCGSTAB iteration, restart cycles in GMRES), so a
    /// degradation comparison only happens between counts of the same
    /// solver.
    baseline_iterations: Option<(usize, &'static str)>,
    /// The operator values have changed since `ilu` was built.
    stale: bool,
    rebuilds: u64,
}

impl<T: Scalar> IluRefresh<T> {
    fn build(scaled: &CsrMatrix<T>) -> Result<Self, SparseError> {
        fault_check(FaultSite::Ilu)?;
        Ok(Self {
            ilu: Ilu0::new(scaled)?,
            baseline_iterations: None,
            stale: false,
            rebuilds: 0,
        })
    }

    /// Starts from a donated preconditioner instead of building one: the
    /// factors are for the *donor's* values, so the state enters stale with
    /// the donor's healthy baseline carried over — the lazy refresh policy
    /// then treats the donation exactly like this solver's own aged ILU and
    /// rebuilds only when the observed iteration count degrades.
    // vaem-lint: cold preconditioner clone from a donated seed, once per sweep
    fn from_seed(seed: &IluSeed<T>) -> Self {
        Self {
            ilu: seed.ilu.clone(),
            baseline_iterations: seed.baseline_iterations,
            stale: true,
            rebuilds: 0,
        }
    }

    /// Rebuilds the preconditioner from the current values before a solve
    /// when there is no healthy baseline to judge staleness against (the
    /// caller refactored before ever solving, or the previous rebuild was
    /// immediately followed by another refactor). Without this, the first
    /// stale solve's (possibly degraded) iteration count would be recorded
    /// as the "healthy" reference and inflate the refresh threshold for
    /// the rest of the sweep. Rebuild failures are swallowed — the stale
    /// ILU keeps answering (solves remain residual-verified).
    fn ensure_baselined(&mut self, scaled: &CsrMatrix<T>) {
        if self.stale && self.baseline_iterations.is_none() {
            // vaem-lint: allow(E1) best-effort ILU rebuild: a stale preconditioner still answers and every solve is residual-verified
            let _ = self.rebuild(scaled);
        }
    }

    /// Records the outcome of one converged solve (`solver_tag` names the
    /// Krylov method that produced `iterations`) and rebuilds the stale
    /// preconditioner when the iteration count has degraded past the
    /// threshold. The baseline is only ever taken from a solve with fresh
    /// factors ([`IluRefresh::ensure_baselined`] guarantees one exists
    /// before any stale solve), and only compared against counts from the
    /// same solver — a BiCGSTAB observation judged against a GMRES
    /// baseline (or vice versa) would skew the policy in either direction.
    /// Rebuild failures are swallowed: the stale ILU keeps answering and
    /// the next degraded solve retries.
    fn observe(&mut self, iterations: usize, solver_tag: &'static str, scaled: &CsrMatrix<T>) {
        if !self.stale {
            if self.baseline_iterations.is_none() {
                self.baseline_iterations = Some((iterations, solver_tag));
            }
            return;
        }
        if let Some((base, tag)) = self.baseline_iterations {
            if tag != solver_tag {
                return;
            }
            let threshold = ILU_REFRESH_RATIO * base as f64 + ILU_REFRESH_SLACK as f64;
            if iterations as f64 > threshold {
                if let Ok(fresh) = Ilu0::new(scaled) {
                    self.ilu = fresh;
                    self.stale = false;
                    self.rebuilds += 1;
                    self.baseline_iterations = None;
                }
            }
        }
    }

    /// Forces a rebuild from the current values (used when a solve with
    /// stale factors fails before escalating to the fallback chain).
    fn rebuild(&mut self, scaled: &CsrMatrix<T>) -> Result<(), SparseError> {
        fault_check(FaultSite::Ilu)?;
        self.ilu = Ilu0::new(scaled)?;
        self.stale = false;
        self.rebuilds += 1;
        self.baseline_iterations = None;
        Ok(())
    }
}

/// Builds a symbolic+numeric direct factorization of an equilibrated
/// matrix, starting from a donor symbolic phase when one with a matching
/// pattern and recorded structure is supplied.
// vaem-lint: cold full factorization on prepare; per-iteration refactors go through refactor_numeric
fn direct_factorization<T: Scalar>(
    scaled: &CsrMatrix<T>,
    seed: Option<&SymbolicLu>,
) -> Result<Factorization<T>, SparseError> {
    fault_check(FaultSite::Pivot)?;
    let mut symbolic = match seed {
        Some(donor) if donor.has_structure() && donor.matches(scaled) => donor.seed_from(),
        _ => SymbolicLu::analyze(scaled)?,
    };
    let numeric = symbolic.factor(scaled)?;
    Ok(Factorization::Direct(Box::new(DirectFactorization {
        symbolic,
        numeric,
    })))
}

/// A factorized linear system ready to solve many right-hand sides.
///
/// Produced by [`LinearSolver::prepare`]; owns the equilibrated matrix, the
/// factorization and the Krylov workspaces, so repeated solves do no
/// factorization work and no per-call allocation beyond the returned
/// solution vector.
#[derive(Debug, Clone)]
pub struct PreparedSolver<T: Scalar> {
    scaled: CsrMatrix<T>,
    scaling: RowColScaling,
    factorization: Factorization<T>,
    options: KrylovOptions,
    bicgstab_ws: BiCgStabWorkspace<T>,
    gmres_ws: GmresWorkspace<T>,
}

impl<T: Scalar> PreparedSolver<T> {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.scaled.rows()
    }

    /// Short name of the prepared strategy.
    pub fn strategy(&self) -> &'static str {
        match &self.factorization {
            Factorization::Direct(_) => "sparse-lu",
            Factorization::Ilu { .. } => "ilu0-bicgstab",
            Factorization::IluGmresOnly(_) => "ilu0-gmres",
        }
    }

    /// The symbolic phase of the direct factorization, when the prepared
    /// strategy is direct. This is the donor handle for
    /// [`LinearSolver::prepare_seeded`]: cloning it (cheap, `Arc`-backed)
    /// lets sibling solvers on the same sparsity pattern skip their own
    /// symbolic analysis and pivot discovery.
    pub fn direct_symbolic(&self) -> Option<&SymbolicLu> {
        match &self.factorization {
            Factorization::Direct(direct) => Some(&direct.symbolic),
            _ => None,
        }
    }

    /// The current ILU(0) preconditioner as a donation for sibling solvers
    /// on the same pattern, when the prepared strategy is iterative — the
    /// Krylov-side counterpart of [`PreparedSolver::direct_symbolic`]. The
    /// seed carries this solver's healthy iteration baseline so the
    /// recipient's lazy-refresh policy can judge the donated factors
    /// against it (see [`LinearSolver::prepare_seeded_with`]).
    // vaem-lint: cold donor-seed extraction, once per sweep
    pub fn ilu_donor(&self) -> Option<IluSeed<T>> {
        let state = match &self.factorization {
            Factorization::Ilu { state, .. } => state,
            Factorization::IluGmresOnly(state) => state,
            Factorization::Direct(_) => return None,
        };
        Some(IluSeed {
            ilu: state.ilu.clone(),
            baseline_iterations: state.baseline_iterations,
        })
    }

    /// How many times this solver's direct factorization abandoned a cached
    /// pivot sequence (seeded or self-recorded) because it went numerically
    /// stale, and re-pivoted from scratch. Zero for iterative strategies.
    pub fn direct_stale_fallbacks(&self) -> u64 {
        match &self.factorization {
            Factorization::Direct(direct) => direct.symbolic.stale_fallback_count(),
            _ => 0,
        }
    }

    /// How many times the lazy ILU refresh policy rebuilt the
    /// preconditioner after the iteration count degraded (zero for the
    /// direct strategy).
    pub fn ilu_rebuilds(&self) -> u64 {
        match &self.factorization {
            Factorization::Ilu { state, .. } => state.rebuilds,
            Factorization::IluGmresOnly(state) => state.rebuilds,
            Factorization::Direct(_) => 0,
        }
    }

    /// Re-equilibrates and refactorizes for a matrix with **new values on
    /// the same sparsity pattern** (a Newton update, the next point of a
    /// frequency sweep), keeping the symbolic analysis of the direct
    /// strategy so only the numeric phase is redone.
    ///
    /// The strategy choice made by [`LinearSolver::prepare`] is kept; a
    /// direct factorization whose cached pivot sequence has gone stale for
    /// the new values transparently re-pivots (see [`SymbolicLu::factor`]),
    /// and a pattern change falls back to a fresh symbolic analysis.
    ///
    /// Iterative strategies do **not** rebuild their ILU(0) here: the
    /// previous preconditioner is kept (marked stale) until a solve's
    /// iteration count degrades past the refresh threshold — for dense
    /// frequency grids and Newton tails the old factors usually stay
    /// effective, so the rebuild cost is paid only when it buys iterations
    /// back.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when the shape differs from the
    ///   prepared matrix.
    /// * Factorization failures of the kept strategy.
    pub fn refactor(&mut self, a: &CsrMatrix<T>) -> Result<(), SparseError> {
        if a.rows() != self.scaled.rows() || a.cols() != self.scaled.cols() {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) refactor-failure message, error path only
                detail: format!(
                    "refactor expects a {}x{} matrix, got {}x{}",
                    self.scaled.rows(),
                    self.scaled.cols(),
                    a.rows(),
                    a.cols()
                ),
            });
        }
        // Factor against the *local* equilibrated matrix and only commit the
        // new scaled/scaling state together with the new factorization: an
        // error must leave the solver answering for the previously prepared
        // matrix, not mix the old factors with the new scaling.
        let (scaled, scaling) = RowColScaling::equilibrate(a);
        match &mut self.factorization {
            Factorization::Direct(direct) => {
                fault_check(FaultSite::Pivot)?;
                match direct.symbolic.factor(&scaled) {
                    Ok(lu) => direct.numeric = lu,
                    Err(SparseError::DimensionMismatch { .. }) => {
                        // The sparsity pattern itself changed: re-analyze.
                        self.factorization = direct_factorization(&scaled, None)?;
                    }
                    Err(err) => return Err(err),
                }
            }
            Factorization::Ilu { state, .. } => state.stale = true,
            Factorization::IluGmresOnly(state) => state.stale = true,
        }
        self.scaled = scaled;
        self.scaling = scaling;
        Ok(())
    }

    /// Solves `A·x = b` with the cached factorization.
    ///
    /// # Errors
    /// Propagates solver failures (after the GMRES fallback for the `Auto`
    /// Krylov strategy).
    pub fn solve(&mut self, b: &[T]) -> Result<(Vec<T>, SolveReport), SparseError> {
        self.solve_with_guess(b, None)
    }

    /// Solves `A·x = b` starting the iterative strategies from `x0`.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn solve_with_guess(
        &mut self,
        b: &[T],
        x0: Option<&[T]>,
    ) -> Result<(Vec<T>, SolveReport), SparseError> {
        let n = self.scaled.rows();
        if b.len() != n {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) solver-failure message, error path only
                detail: format!("prepared solver dimension {n} but rhs has {}", b.len()),
            });
        }
        let bs = self.scaling.scale_rhs(b);
        let guess_scaled = x0.map(|g| self.scaling.scale_guess(g));
        // Injected Krylov non-convergence fails both iterative attempts (the
        // rebuild retry and the GMRES fallback included) but leaves the
        // direct rescue below untouched — the fault exercises the whole
        // escalation chain instead of one solver call.
        let inject_krylov = faults::armed(FaultSite::Krylov);
        let forced_krylov = || SparseError::NotConverged {
            iterations: 0,
            residual: f64::INFINITY,
        };
        // `None` after the match means "both Krylov strategies failed in
        // Auto mode" — rescued by the direct LU below, mirroring the
        // bicgstab → gmres → direct chain of [`LinearSolver::solve`].
        let mut outcome: Option<(Vec<T>, &'static str, usize)> = None;
        let Self {
            scaled,
            factorization,
            options,
            bicgstab_ws,
            gmres_ws,
            ..
        } = &mut *self;
        match factorization {
            Factorization::Direct(direct) => {
                outcome = Some((direct.numeric.solve(&bs)?, "sparse-lu", 0))
            }
            Factorization::Ilu {
                state,
                gmres_fallback,
            } => {
                state.ensure_baselined(scaled);
                let solver = BiCgStab::new(*options);
                let mut attempt = if inject_krylov {
                    Err(forced_krylov())
                } else {
                    solver.solve_with_workspace(
                        scaled,
                        &bs,
                        Some(&state.ilu),
                        guess_scaled.as_deref(),
                        bicgstab_ws,
                    )
                };
                // A failure with stale factors may be the preconditioner's
                // fault: rebuild from the current values and retry once
                // before escalating through the fallback chain.
                if attempt.is_err()
                    && !inject_krylov
                    && state.stale
                    && state.rebuild(scaled).is_ok()
                {
                    attempt = solver.solve_with_workspace(
                        scaled,
                        &bs,
                        Some(&state.ilu),
                        guess_scaled.as_deref(),
                        bicgstab_ws,
                    );
                }
                match attempt {
                    Ok((y, it)) => {
                        state.observe(it, "ilu0-bicgstab", scaled);
                        outcome = Some((y, "ilu0-bicgstab", it));
                    }
                    Err(err) => {
                        if !*gmres_fallback {
                            return Err(err);
                        }
                        let gmres = Gmres::new(*options);
                        if inject_krylov {
                            // The forced non-convergence covers GMRES too;
                            // fall through to the direct rescue.
                        } else if let Ok((y, it)) = gmres.solve_with_workspace(
                            scaled,
                            &bs,
                            Some(&state.ilu),
                            guess_scaled.as_deref(),
                            gmres_ws,
                        ) {
                            // Feed the refresh policy here too: without a
                            // baseline, every later stale solve would
                            // eagerly rebuild (ensure_baselined), turning
                            // the lazy policy back into a per-point one.
                            state.observe(it, "ilu0-gmres", scaled);
                            outcome = Some((y, "ilu0-gmres", it));
                        }
                    }
                }
            }
            Factorization::IluGmresOnly(state) => {
                state.ensure_baselined(scaled);
                let gmres = Gmres::new(*options);
                let mut attempt = if inject_krylov {
                    Err(forced_krylov())
                } else {
                    gmres.solve_with_workspace(
                        scaled,
                        &bs,
                        Some(&state.ilu),
                        guess_scaled.as_deref(),
                        gmres_ws,
                    )
                };
                if attempt.is_err()
                    && !inject_krylov
                    && state.stale
                    && state.rebuild(scaled).is_ok()
                {
                    attempt = gmres.solve_with_workspace(
                        scaled,
                        &bs,
                        Some(&state.ilu),
                        guess_scaled.as_deref(),
                        gmres_ws,
                    );
                }
                let (y, it) = attempt?;
                state.observe(it, "ilu0-gmres", scaled);
                outcome = Some((y, "ilu0-gmres", it));
            }
        }
        let (y, strategy, iterations) = match outcome {
            Some(result) => result,
            None => {
                // Auto-mode last resort: the iteration has proven unreliable
                // on this operator, so factor the direct LU once (with its
                // symbolic phase, so later refactors stay cheap), keep it
                // for every subsequent solve, and answer from it.
                let direct = direct_factorization(&self.scaled, None)?;
                let y = match &direct {
                    Factorization::Direct(d) => d.numeric.solve(&bs)?,
                    _ => unreachable!("direct_factorization returns Direct"),
                };
                self.factorization = direct;
                (y, "sparse-lu", 0)
            }
        };
        // Residual of the *original* system, recovered from the scaled one:
        // b − A·x = R⁻¹·(b̂ − Â·ŷ) when Â = R·A·C, x = C·ŷ and b̂ = R·b.
        let mut resid_sqr = 0.0;
        let ay = self.scaled.matvec(&y);
        for i in 0..n {
            let ri = (bs[i] - ay[i]).modulus() / self.scaling.row_factors()[i];
            resid_sqr += ri * ri;
        }
        let resid = resid_sqr.sqrt() / vecops::norm2(b).max(1e-300);
        let mut x = self.scaling.unscale_solution(&y);
        fault_poison(&mut x);
        Ok((
            x,
            SolveReport {
                strategy,
                iterations,
                residual_norm: resid,
                dimension: n,
                nnz: self.scaled.nnz(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::Complex64;

    fn laplacian_2d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn auto_small_uses_direct() {
        let a = laplacian_2d(8);
        let b = vec![1.0; a.rows()];
        let solver = LinearSolver::new(SolverKind::Auto);
        let (_, report) = solver.solve(&a, &b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(report.residual_norm < 1e-10);
    }

    #[test]
    fn auto_large_uses_iterative() {
        let a = laplacian_2d(30); // 900 unknowns
        let b = vec![1.0; a.rows()];
        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(100);
        let (_, report) = solver.solve(&a, &b).unwrap();
        assert_eq!(report.strategy, "ilu0-bicgstab");
        assert!(report.residual_norm < 1e-8);
        assert!(report.iterations > 0);
    }

    #[test]
    fn all_kinds_agree_on_solution() {
        let a = laplacian_2d(10);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.11).sin()).collect();
        let b = a.matvec(&x_true);
        for kind in [
            SolverKind::DirectLu,
            SolverKind::IluBiCgStab,
            SolverKind::IluGmres,
        ] {
            let solver = LinearSolver::new(kind).with_options(KrylovOptions {
                tolerance: 1e-12,
                max_iterations: 5000,
                restart: 50,
            });
            let (x, report) = solver.solve(&a, &b).unwrap();
            assert!(
                vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7,
                "kind {kind:?} failed with report {report:?}"
            );
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = laplacian_2d(20);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.05).cos()).collect();
        let b = a.matvec(&x_true);
        let solver = LinearSolver::new(SolverKind::IluBiCgStab);
        let (_, cold) = solver.solve(&a, &b).unwrap();
        let (_, warm) = solver.solve_with_guess(&a, &b, Some(&x_true)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn complex_system_with_huge_contrast() {
        // Mimics the metal/dielectric admittance contrast at 1 GHz.
        let nx = 12;
        let base = laplacian_2d(nx);
        let n = base.rows();
        let mut t: Vec<(usize, usize, Complex64)> = Vec::new();
        for r in 0..n {
            let sigma = if r % 7 == 0 { 5.8e7 } else { 1.0 };
            for (c, v) in base.row_entries(r) {
                t.push((r, c, Complex64::new(v * sigma, v * 1e-6)));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.2).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let b = a.matvec(&x_true);
        let solver = LinearSolver::new(SolverKind::Auto);
        let (x, report) = solver.solve(&a, &b).unwrap();
        assert!(
            vecops::relative_diff(&x, &x_true, 1e-30) < 1e-6,
            "report {report:?}"
        );
    }

    #[test]
    fn prepared_solver_reuses_one_factorization_for_many_rhs() {
        for (kind, nx, expect) in [
            (SolverKind::Auto, 8, "sparse-lu"),
            (SolverKind::IluBiCgStab, 14, "ilu0-bicgstab"),
            (SolverKind::IluGmres, 10, "ilu0-gmres"),
        ] {
            let a = laplacian_2d(nx);
            let solver = LinearSolver::new(kind);
            let mut prepared = solver.prepare(&a).unwrap();
            assert_eq!(prepared.strategy(), expect);
            assert_eq!(prepared.dim(), a.rows());
            for t in 0..3 {
                let x_true: Vec<f64> = (0..a.rows())
                    .map(|i| ((i + t) as f64 * 0.21).sin())
                    .collect();
                let b = a.matvec(&x_true);
                let (x, report) = prepared.solve(&b).unwrap();
                let (x_ref, _) = solver.solve(&a, &b).unwrap();
                assert!(
                    vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7,
                    "kind {kind:?} rhs {t} report {report:?}"
                );
                assert!(vecops::relative_diff(&x, &x_ref, 1e-30) < 1e-7);
                assert!(report.residual_norm < 1e-7);
            }
        }
    }

    #[test]
    fn prepared_auto_above_threshold_is_iterative_and_warm_startable() {
        let a = laplacian_2d(20);
        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(50);
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "ilu0-bicgstab");
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.05).cos()).collect();
        let b = a.matvec(&x_true);
        let (_, cold) = prepared.solve(&b).unwrap();
        assert!(cold.iterations > 0);
        let (_, warm) = prepared.solve_with_guess(&b, Some(&x_true)).unwrap();
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn prepared_auto_rescues_krylov_failure_with_direct_lu() {
        // A one-iteration budget at an unreachable tolerance makes both
        // BiCGSTAB and GMRES fail; Auto must still answer via the direct
        // LU (and keep it for later solves), like the one-shot chain does.
        let a = laplacian_2d(25); // 625 unknowns, above the direct threshold
        let solver = LinearSolver::new(SolverKind::Auto).with_options(KrylovOptions {
            tolerance: 1e-16,
            max_iterations: 1,
            restart: 2,
        });
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "ilu0-bicgstab");
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.13).sin()).collect();
        let b = a.matvec(&x_true);
        let (x, report) = prepared.solve(&b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
        // The rescue factorization is cached for subsequent solves.
        assert_eq!(prepared.strategy(), "sparse-lu");
        let (x2, report2) = prepared.solve(&b).unwrap();
        assert_eq!(report2.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x2, &x_true, 1e-30) < 1e-8);
    }

    /// Rotation-dominated system: near-90° 2×2 rotation blocks, chained by a
    /// skip-two coupling so that ILU(0) drops fill and cannot be exact.
    fn coupled_rotation_blocks(n_blocks: usize, diag: f64) -> CsrMatrix<f64> {
        let n = 2 * n_blocks;
        let mut t = Vec::new();
        for k in 0..n_blocks {
            let i = 2 * k;
            t.push((i, i, diag));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, 1.0));
            t.push((i + 1, i + 1, diag));
            if i + 2 < n {
                t.push((i, i + 2, 0.3));
                t.push((i + 2, i, -0.3));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn rotation_dominated_near_breakdown_never_yields_an_unconverged_iterate() {
        // With a ~1e-12 rotation-block diagonal, the BiCGSTAB recurrence
        // residual used to drift from the true residual after the
        // near-breakdown amplification and the solver returned "converged"
        // iterates that were wrong by ~1e-5. The true-residual verification
        // must either push the iteration on (residual-replacement restart)
        // or fail so the chain escalates — never hand back a bad iterate.
        let a = coupled_rotation_blocks(40, 1e-12); // 80 unknowns
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&x_true);

        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(8);
        let (x, report) = solver.solve(&a, &b).unwrap();
        assert!(
            vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7,
            "one-shot chain returned a bad iterate: report {report:?}"
        );
        assert!(report.residual_norm < 1e-8, "report {report:?}");

        let mut prepared = solver.prepare(&a).unwrap();
        let (xp, report_p) = prepared.solve(&b).unwrap();
        assert!(
            vecops::relative_diff(&xp, &x_true, 1e-30) < 1e-7,
            "prepared chain returned a bad iterate: report {report_p:?}"
        );
        assert!(report_p.residual_norm < 1e-8, "report {report_p:?}");
    }

    #[test]
    fn exactly_singular_rotation_blocks_escalate_to_the_direct_lu() {
        // A structurally present but exactly zero diagonal defeats ILU(0),
        // so both chains must escalate to the (pivoting) direct LU.
        let a = coupled_rotation_blocks(40, 0.0);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.matvec(&x_true);
        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(8);
        let (x, report) = solver.solve(&a, &b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "sparse-lu");
        let (xp, _) = prepared.solve(&b).unwrap();
        assert!(vecops::relative_diff(&xp, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn refactor_reuses_the_direct_symbolic_phase() {
        let a = laplacian_2d(9);
        let solver = LinearSolver::new(SolverKind::Auto); // 81 unknowns -> direct
        let mut prepared = solver.prepare(&a).unwrap();
        assert_eq!(prepared.strategy(), "sparse-lu");
        // New values, same pattern: a shifted operator.
        let mut shifted = a.clone();
        let triplets: Vec<(usize, usize, f64)> = (0..a.rows())
            .flat_map(|r| {
                a.row_entries(r)
                    .map(move |(c, v)| (r, c, if r == c { v + 1.5 } else { v }))
            })
            .collect();
        shifted.assemble_into(&triplets).unwrap();
        prepared.refactor(&shifted).unwrap();
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.17).cos()).collect();
        let b = shifted.matvec(&x_true);
        let (x, report) = prepared.solve(&b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
        // And the refactored operator matches a from-scratch solve.
        let (x_ref, _) = solver.solve(&shifted, &b).unwrap();
        assert!(vecops::relative_diff(&x, &x_ref, 1e-30) < 1e-8);
    }

    #[test]
    fn refactor_rebuilds_the_ilu_preconditioner() {
        let a = laplacian_2d(20);
        let solver = LinearSolver::new(SolverKind::IluBiCgStab);
        let mut prepared = solver.prepare(&a).unwrap();
        let mut shifted = a.clone();
        let triplets: Vec<(usize, usize, f64)> = (0..a.rows())
            .flat_map(|r| {
                a.row_entries(r)
                    .map(move |(c, v)| (r, c, if r == c { v * 2.0 } else { v }))
            })
            .collect();
        shifted.assemble_into(&triplets).unwrap();
        prepared.refactor(&shifted).unwrap();
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.09).sin()).collect();
        let b = shifted.matvec(&x_true);
        let (x, report) = prepared.solve(&b).unwrap();
        assert_eq!(report.strategy, "ilu0-bicgstab");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7);
        assert!(report.residual_norm < 1e-8);
    }

    #[test]
    fn prepare_seeded_skips_the_symbolic_phase_and_matches_the_unseeded_bits() {
        let a = laplacian_2d(9);
        let solver = LinearSolver::new(SolverKind::DirectLu);
        let donor = solver.prepare(&a).unwrap();
        let seed = donor.direct_symbolic().expect("direct keeps its symbolic");
        assert!(seed.has_structure());

        // A perturbed operator on the same pattern (diagonal shift keeps
        // the pivot sequence of the diagonally dominant nominal).
        let mut shifted = a.clone();
        let triplets: Vec<(usize, usize, f64)> = (0..a.rows())
            .flat_map(|r| {
                a.row_entries(r)
                    .map(move |(c, v)| (r, c, if r == c { v + 0.8 } else { v * 1.02 }))
            })
            .collect();
        shifted.assemble_into(&triplets).unwrap();

        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.23).sin()).collect();
        let b = shifted.matvec(&x_true);

        let mut seeded = solver.prepare_seeded(&shifted, Some(seed)).unwrap();
        assert_eq!(seeded.strategy(), "sparse-lu");
        assert_eq!(seeded.direct_stale_fallbacks(), 0);
        let (x_seeded, report) = seeded.solve(&b).unwrap();
        assert!(report.residual_norm < 1e-10);

        // The numeric-only seeded factorization replays the donor's
        // elimination order, so as long as the pivots stay on the nominal
        // sequence the solution is bit-identical to the unseeded path.
        let mut unseeded = solver.prepare(&shifted).unwrap();
        let (x_unseeded, _) = unseeded.solve(&b).unwrap();
        assert_eq!(
            x_seeded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x_unseeded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn auto_with_a_usable_seed_stays_direct_above_the_cold_threshold() {
        // 400 unknowns with a cold threshold of 100: unseeded Auto prepares
        // the iterative strategy, but a usable donor symbolic moves the
        // crossover to the seeded threshold and keeps the direct path.
        let a = laplacian_2d(20);
        let solver = LinearSolver::new(SolverKind::Auto)
            .with_direct_threshold(100)
            .with_seeded_direct_threshold(1000);
        let cold = solver.prepare(&a).unwrap();
        assert_eq!(cold.strategy(), "ilu0-bicgstab");

        let donor = LinearSolver::new(SolverKind::DirectLu).prepare(&a).unwrap();
        let seed = donor.direct_symbolic().unwrap();
        let mut seeded = solver.prepare_seeded(&a, Some(seed)).unwrap();
        assert_eq!(seeded.strategy(), "sparse-lu");
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.21).sin()).collect();
        let b = a.matvec(&x_true);
        let (x, report) = seeded.solve(&b).unwrap();
        assert_eq!(report.strategy, "sparse-lu");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);

        // Above the seeded threshold the seed no longer flips the choice,
        // and a seedless or structureless donor never does.
        let tight = solver.clone().with_seeded_direct_threshold(200);
        assert_eq!(
            tight.prepare_seeded(&a, Some(seed)).unwrap().strategy(),
            "ilu0-bicgstab"
        );
        let unrecorded = SymbolicLu::analyze(&a).unwrap();
        assert!(!unrecorded.has_structure());
        assert_eq!(
            solver
                .prepare_seeded(&a, Some(&unrecorded))
                .unwrap()
                .strategy(),
            "ilu0-bicgstab"
        );
    }

    #[test]
    fn donated_ilu_preconditions_a_perturbed_sample_without_a_rebuild() {
        let nominal = varying_laplacian(20, 0.0, 0.0);
        let solver = LinearSolver::new(SolverKind::IluBiCgStab);
        let mut donor = solver.prepare(&nominal).unwrap();
        let x_true: Vec<f64> = (0..nominal.rows())
            .map(|i| (i as f64 * 0.17).sin())
            .collect();
        // The donor solves once so its healthy baseline travels with the
        // donation.
        let (_, healthy) = donor.solve(&nominal.matvec(&x_true)).unwrap();
        assert!(healthy.iterations > 0);
        let donation = donor.ilu_donor().expect("iterative strategy donates");
        assert_eq!(donation.dim(), nominal.rows());
        assert!(donor.direct_symbolic().is_none());

        // A mildly perturbed sample seeded with the nominal's ILU(0): the
        // donated factors stay effective, so the lazy policy never rebuilds.
        let sample = varying_laplacian(20, 0.05, 1.0);
        let mut seeded = solver
            .prepare_seeded_with(&sample, None, Some(&donation))
            .unwrap();
        let (x, report) = seeded.solve(&sample.matvec(&x_true)).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-7);
        assert_eq!(
            seeded.ilu_rebuilds(),
            0,
            "mild perturbation must ride the donated ILU ({} its vs donor {})",
            report.iterations,
            healthy.iterations
        );

        // A violently different sample degrades past the threshold and the
        // policy rebuilds from the sample's own values.
        let harsh = varying_laplacian(20, 2.2, 2.5);
        let mut reseeded = solver
            .prepare_seeded_with(&harsh, None, Some(&donation))
            .unwrap();
        let (xh, _) = reseeded.solve(&harsh.matvec(&x_true)).unwrap();
        assert!(vecops::relative_diff(&xh, &x_true, 1e-30) < 1e-6);
        assert_eq!(
            reseeded.ilu_rebuilds(),
            1,
            "harsh perturbation must retire the donated ILU"
        );

        // A wrong-dimension donation is ignored, not misapplied.
        let small = varying_laplacian(10, 0.0, 0.0);
        let mut fresh = solver
            .prepare_seeded_with(&small, None, Some(&donation))
            .unwrap();
        let xs: Vec<f64> = (0..small.rows()).map(|i| (i as f64 * 0.3).cos()).collect();
        let (got, _) = fresh.solve(&small.matvec(&xs)).unwrap();
        assert!(vecops::relative_diff(&got, &xs, 1e-30) < 1e-7);
    }

    #[test]
    fn prepare_seeded_ignores_a_foreign_pattern_seed() {
        let a = laplacian_2d(6);
        let donor = LinearSolver::new(SolverKind::DirectLu)
            .prepare(&laplacian_2d(8))
            .unwrap();
        let seed = donor.direct_symbolic().unwrap();
        let mut prepared = LinearSolver::new(SolverKind::DirectLu)
            .prepare_seeded(&a, Some(seed))
            .unwrap();
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.4).cos()).collect();
        let b = a.matvec(&x_true);
        let (x, _) = prepared.solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-9);
    }

    /// 2-D grid operator with per-link conductances spanning several orders
    /// of magnitude (`contrast` = 0 gives the uniform laplacian). All
    /// variants share one sparsity pattern.
    fn varying_laplacian(nx: usize, contrast: f64, phase: f64) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let weight =
            |a: usize, b: usize| (contrast * ((a * 31 + b * 17) as f64 * 0.7 + phase).sin()).exp();
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                let me = idx(i, j);
                let mut diag = 0.0;
                let mut neighbours = Vec::new();
                if i > 0 {
                    neighbours.push(idx(i - 1, j));
                }
                if i + 1 < nx {
                    neighbours.push(idx(i + 1, j));
                }
                if j > 0 {
                    neighbours.push(idx(i, j - 1));
                }
                if j + 1 < nx {
                    neighbours.push(idx(i, j + 1));
                }
                for other in neighbours {
                    let w = weight(me.min(other), me.max(other));
                    t.push((me, other, -w));
                    diag += w;
                }
                t.push((me, me, diag + 1e-3));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn stale_ilu_is_kept_until_iterations_degrade_then_rebuilt() {
        let nominal = varying_laplacian(20, 0.0, 0.0);
        let solver = LinearSolver::new(SolverKind::IluBiCgStab).with_options(KrylovOptions {
            max_iterations: 10_000,
            ..KrylovOptions::default()
        });
        let mut prepared = solver.prepare(&nominal).unwrap();
        let x_true: Vec<f64> = (0..nominal.rows())
            .map(|i| (i as f64 * 0.17).sin())
            .collect();

        // Baseline solve with the fresh preconditioner.
        let (_, healthy) = prepared.solve(&nominal.matvec(&x_true)).unwrap();
        assert!(healthy.iterations > 0);

        // Mild value drift: the stale ILU stays effective, so no rebuild.
        let mild = varying_laplacian(20, 0.05, 1.0);
        prepared.refactor(&mild).unwrap();
        let (x_mild, report_mild) = prepared.solve(&mild.matvec(&x_true)).unwrap();
        assert!(vecops::relative_diff(&x_mild, &x_true, 1e-30) < 1e-7);
        assert_eq!(
            prepared.ilu_rebuilds(),
            0,
            "mild drift must not rebuild (took {} vs baseline {})",
            report_mild.iterations,
            healthy.iterations
        );

        // Violent value change on the same pattern: the iteration count
        // degrades past the threshold and the policy rebuilds.
        let harsh = varying_laplacian(20, 2.2, 2.5);
        prepared.refactor(&harsh).unwrap();
        let b_harsh = harsh.matvec(&x_true);
        let (x_harsh, degraded) = prepared.solve(&b_harsh).unwrap();
        assert!(vecops::relative_diff(&x_harsh, &x_true, 1e-30) < 1e-6);
        assert_eq!(
            prepared.ilu_rebuilds(),
            1,
            "degraded solve ({} its vs baseline {}) must trigger a rebuild",
            degraded.iterations,
            healthy.iterations
        );

        // The rebuilt preconditioner matches the harsh operator again.
        let (x_fresh, recovered) = prepared.solve(&b_harsh).unwrap();
        assert!(vecops::relative_diff(&x_fresh, &x_true, 1e-30) < 1e-6);
        assert!(
            recovered.iterations < degraded.iterations,
            "rebuild must win iterations back: {} vs {}",
            recovered.iterations,
            degraded.iterations
        );
        assert_eq!(
            prepared.ilu_rebuilds(),
            1,
            "recovered solve must not rebuild again"
        );
    }

    #[test]
    fn refactor_before_any_solve_rebuilds_instead_of_baselining_stale_factors() {
        // prepare(&A) then refactor(&B) before the first solve: the solve
        // must not record a stale-preconditioner iteration count as the
        // "healthy" baseline (which would inflate the refresh threshold
        // for the whole sweep) — it rebuilds from B's values up front.
        let a = varying_laplacian(16, 0.0, 0.0);
        let b_mat = varying_laplacian(16, 2.0, 1.7);
        let solver = LinearSolver::new(SolverKind::IluBiCgStab);
        let mut prepared = solver.prepare(&a).unwrap();
        prepared.refactor(&b_mat).unwrap();
        let x_true: Vec<f64> = (0..b_mat.rows()).map(|i| (i as f64 * 0.19).sin()).collect();
        let (x, report) = prepared.solve(&b_mat.matvec(&x_true)).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-6);
        assert_eq!(
            prepared.ilu_rebuilds(),
            1,
            "unbaselined stale factors must be rebuilt before the solve \
             (took {} iterations)",
            report.iterations
        );
    }

    #[test]
    fn refactor_rejects_a_shape_change() {
        let a = laplacian_2d(5);
        let mut prepared = LinearSolver::default().prepare(&a).unwrap();
        let other = laplacian_2d(6);
        assert!(matches!(
            prepared.refactor(&other),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn prepared_solver_rejects_bad_rhs_lengths() {
        let a = laplacian_2d(4);
        let mut prepared = LinearSolver::default().prepare(&a).unwrap();
        assert!(matches!(
            prepared.solve(&[1.0, 2.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_rhs_is_rejected() {
        let a = laplacian_2d(4);
        let solver = LinearSolver::default();
        assert!(matches!(
            solver.solve(&a, &[1.0, 2.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn injected_mid_sweep_breakdown_is_rescued_without_poisoning_later_points() {
        use std::sync::Arc;
        use vaem_parallel::faults::{FaultPlan, FaultStage};

        // A frequency-sweep-like loop: one prepared solver, refactored for
        // each point. The fault plan forces a Krylov breakdown at sweep
        // point 2 only; the prepared Auto chain must rescue that point with
        // the on-demand direct LU, and every later point must still match a
        // from-scratch reference solve.
        let plan = Arc::new(FaultPlan::parse("krylov@sscm:2").unwrap());
        let solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(50);
        let points: Vec<CsrMatrix<f64>> = (0..5)
            .map(|p| varying_laplacian(12, 0.2, 0.3 * p as f64))
            .collect();
        let x_true: Vec<f64> = (0..points[0].rows())
            .map(|i| (i as f64 * 0.13).sin())
            .collect();

        let mut prepared = solver.prepare(&points[0]).unwrap();
        assert_eq!(prepared.strategy(), "ilu0-bicgstab");
        for (p, a) in points.iter().enumerate() {
            let _guard = faults::scope(plan.clone(), FaultStage::Sscm, p, 0);
            if p > 0 {
                prepared.refactor(a).unwrap();
            }
            let b = a.matvec(&x_true);
            let (x, report) = prepared
                .solve(&b)
                .unwrap_or_else(|e| panic!("point {p} must survive the injected fault: {e}"));
            assert!(
                vecops::relative_diff(&x, &x_true, 1e-30) < 1e-6,
                "point {p} solution poisoned (report {report:?})"
            );
            if p == 2 {
                assert_eq!(
                    report.strategy, "sparse-lu",
                    "the injected breakdown must be answered by the direct rescue"
                );
            }
            // Cross-check against an independent one-shot solve outside any
            // fault scope.
            let (x_ref, _) = LinearSolver::new(SolverKind::DirectLu)
                .solve(a, &b)
                .unwrap();
            assert!(
                vecops::relative_diff(&x, &x_ref, 1e-30) < 1e-6,
                "point {p} drifted from the reference after the rescue"
            );
        }
    }

    #[test]
    fn stale_donor_with_injected_rebuild_fault_escalates_instead_of_looping() {
        use std::sync::Arc;
        use vaem_parallel::faults::{FaultPlan, FaultStage};

        // A donated ILU(0) enters stale; a solve failure with stale factors
        // normally rebuilds once from the current values and retries. Here a
        // sticky `ilu` fault blocks every rebuild, so the chain must refuse
        // to loop on the stale donation and escalate through GMRES to the
        // direct rescue — still answering correctly.
        let nominal = varying_laplacian(20, 0.0, 0.0);
        let harsh = varying_laplacian(20, 2.6, 2.5);
        let tight = KrylovOptions {
            tolerance: 1e-12,
            max_iterations: 8,
            restart: 4,
        };
        let solver = LinearSolver::new(SolverKind::Auto)
            .with_direct_threshold(50)
            .with_options(tight);
        // The donor itself solves with generous options so its healthy
        // baseline (and the donation) comes from the iterative strategy.
        let donor_solver = LinearSolver::new(SolverKind::Auto).with_direct_threshold(50);
        let mut donor = donor_solver.prepare(&nominal).unwrap();
        let x_true: Vec<f64> = (0..nominal.rows())
            .map(|i| (i as f64 * 0.17).sin())
            .collect();
        let _ = donor.solve(&nominal.matvec(&x_true)).unwrap();
        let donation = donor.ilu_donor().expect("iterative strategy donates");

        let plan = Arc::new(FaultPlan::parse("ilu@sscm:0!").unwrap());
        let _guard = faults::scope(plan, FaultStage::Sscm, 0, 0);
        let mut seeded = solver
            .prepare_seeded_with(&harsh, None, Some(&donation))
            .unwrap();
        let b = harsh.matvec(&x_true);
        let (x, report) = seeded
            .solve(&b)
            .expect("the blocked rebuild must escalate, not fail the solve");
        assert!(
            vecops::relative_diff(&x, &x_true, 1e-30) < 1e-6,
            "escalated solve returned a bad iterate (report {report:?})"
        );
        assert_eq!(
            seeded.ilu_rebuilds(),
            0,
            "the injected fault must block every rebuild of the stale donation"
        );

        // Without the fault, the same stale donation refreshes exactly once
        // and answers iteratively — the non-looping baseline.
        drop(_guard);
        let mut refreshed = solver
            .prepare_seeded_with(&harsh, None, Some(&donation))
            .unwrap();
        let (xr, _) = refreshed.solve(&b).unwrap();
        assert!(vecops::relative_diff(&xr, &x_true, 1e-30) < 1e-6);
    }
}
