//! Row/column equilibration.
//!
//! The coupled A–V matrices mix metal conductivities (~10⁷ S/m), dielectric
//! admittances (~10⁻⁶ S/m at 1 GHz) and carrier-continuity rows with yet
//! another magnitude, giving raw condition numbers that defeat ILU-based
//! iterative solvers. A simple max-magnitude row/column equilibration brings
//! every row and column to O(1) before factorization.

use crate::CsrMatrix;
use vaem_numeric::Scalar;

/// Diagonal row/column scaling `As = R·A·C` with `R`, `C` chosen so that the
/// largest entry of every row and column of `As` has magnitude ≈ 1.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, RowColScaling};
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1e8), (0, 1, 1e6), (1, 1, 1e-6)]);
/// let (scaled, sc) = RowColScaling::equilibrate(&a);
/// assert!(scaled.norm_inf() < 10.0);
/// // Solving the scaled system and recovering x:
/// let b = vec![1.0, 2.0];
/// let bs = sc.scale_rhs(&b);
/// assert_eq!(bs.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RowColScaling {
    row: Vec<f64>,
    col: Vec<f64>,
}

impl RowColScaling {
    /// Computes the scaling for `a` and returns the scaled matrix together
    /// with the scaling data needed to transform right-hand sides and
    /// solutions.
    // vaem-lint: cold equilibration builds the scaled matrix once per factorization
    pub fn equilibrate<T: Scalar>(a: &CsrMatrix<T>) -> (CsrMatrix<T>, Self) {
        let rows = a.rows();
        let cols = a.cols();
        // Row scale from the max modulus of each row.
        let mut row = vec![1.0; rows];
        for r in 0..rows {
            let max = a
                .row_entries(r)
                .map(|(_, v)| v.modulus())
                .fold(0.0, f64::max);
            row[r] = if max > 0.0 { 1.0 / max } else { 1.0 };
        }
        // Column scale from the max modulus after row scaling.
        let mut col_max = vec![0.0_f64; cols];
        for r in 0..rows {
            for (c, v) in a.row_entries(r) {
                col_max[c] = col_max[c].max(v.modulus() * row[r]);
            }
        }
        let col: Vec<f64> = col_max
            .iter()
            .map(|&m| if m > 0.0 { 1.0 / m } else { 1.0 })
            .collect();

        let mut scaled = a.clone();
        scaled.scale_rows_cols(&row, &col);
        (scaled, Self { row, col })
    }

    /// Row scaling factors `R`.
    pub fn row_factors(&self) -> &[f64] {
        &self.row
    }

    /// Column scaling factors `C`.
    pub fn col_factors(&self) -> &[f64] {
        &self.col
    }

    /// Transforms a right-hand side: `bs = R·b`.
    // vaem-lint: cold materializes the scaled copy once per outer solve, not per Krylov iteration
    pub fn scale_rhs<T: Scalar>(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.row.len(), "scale_rhs: length mismatch");
        b.iter()
            .zip(self.row.iter())
            .map(|(v, &s)| v.scale(s))
            .collect()
    }

    /// Recovers the solution of the original system from the solution of the
    /// scaled system: `x = C·y`.
    // vaem-lint: cold materializes the unscaled copy once per outer solve, not per Krylov iteration
    pub fn unscale_solution<T: Scalar>(&self, y: &[T]) -> Vec<T> {
        assert_eq!(y.len(), self.col.len(), "unscale_solution: length mismatch");
        y.iter()
            .zip(self.col.iter())
            .map(|(v, &s)| v.scale(s))
            .collect()
    }

    /// Transforms an initial guess for the original system into one for the
    /// scaled system: `y0 = C⁻¹·x0`.
    // vaem-lint: cold materializes the scaled guess once per outer solve, not per Krylov iteration
    pub fn scale_guess<T: Scalar>(&self, x0: &[T]) -> Vec<T> {
        assert_eq!(x0.len(), self.col.len(), "scale_guess: length mismatch");
        x0.iter()
            .zip(self.col.iter())
            .map(|(v, &s)| v.scale(1.0 / s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::vecops;

    #[test]
    fn scaled_matrix_entries_are_order_one() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 5.8e7),
                (0, 1, 1.0e3),
                (1, 0, 1.0e3),
                (1, 1, 2.0e-6),
                (2, 2, 4.2e-12),
            ],
        );
        let (s, _) = RowColScaling::equilibrate(&a);
        for r in 0..3 {
            let max = s.row_entries(r).map(|(_, v)| v.abs()).fold(0.0, f64::max);
            assert!(max <= 1.0 + 1e-12);
            assert!(max > 1e-3, "row {r} got over-scaled: {max}");
        }
    }

    #[test]
    fn solution_roundtrip_through_scaling() {
        // (R A C) y = R b  with  x = C y  must reproduce the unscaled solution.
        let a = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0e6), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0e-6)],
        );
        let x_true = vec![2.0, -1.0];
        let b = a.matvec(&x_true);
        let (s, sc) = RowColScaling::equilibrate(&a);
        let bs = sc.scale_rhs(&b);
        // Dense solve of the 2x2 scaled system.
        let det = s.get(0, 0) * s.get(1, 1) - s.get(0, 1) * s.get(1, 0);
        let y = vec![
            (bs[0] * s.get(1, 1) - bs[1] * s.get(0, 1)) / det,
            (s.get(0, 0) * bs[1] - s.get(1, 0) * bs[0]) / det,
        ];
        let x = sc.unscale_solution(&y);
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
    }

    #[test]
    fn guess_scaling_is_inverse_of_solution_scaling() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 10.0), (1, 1, 0.1)]);
        let (_, sc) = RowColScaling::equilibrate(&a);
        let x = vec![3.0, 7.0];
        let y = sc.scale_guess(&x);
        let back = sc.unscale_solution(&y);
        assert!(vecops::relative_diff(&back, &x, 1e-30) < 1e-14);
    }

    #[test]
    fn empty_rows_get_unit_scale() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0)]);
        let (_, sc) = RowColScaling::equilibrate(&a);
        assert_eq!(sc.row_factors()[1], 1.0);
        assert_eq!(sc.col_factors()[2], 1.0);
    }
}
