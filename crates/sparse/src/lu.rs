//! Direct sparse LU factorization (left-looking, Gilbert–Peierls style) with
//! partial pivoting.
//!
//! The direct factorization is the robust fallback for the coupled systems
//! when the ILU-preconditioned Krylov solvers stagnate, and the default for
//! small and medium meshes where its cost is negligible.
//!
//! [`SparseLu::new`] is the **cold one-shot path**: natural ordering, scalar
//! column kernel, full pivot search per column. Anything that factorizes the
//! same pattern more than once should go through [`crate::SymbolicLu`]
//! instead, which adds fill-reducing ordering selection (RCM vs AMD), a
//! supernode-blocked numeric phase and elimination-tree parallelism on top
//! of the same factor representation — this type then serves as the shared
//! triangular-solve container for both paths.

use crate::{CsrMatrix, SparseError};
use vaem_numeric::Scalar;

/// Sparse LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// `L` is unit lower triangular and `U` upper triangular, both stored by
/// column in pivot coordinates.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, SparseLu};
/// let a = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 2.0), (0, 1, 1.0),
///     (1, 0, -1.0), (1, 1, 3.0), (1, 2, 0.5),
///     (2, 1, 1.0), (2, 2, 4.0),
/// ]);
/// let lu = SparseLu::new(&a)?;
/// let x = lu.solve(&[1.0, 2.0, 3.0])?;
/// let r = a.residual(&x, &[1.0, 2.0, 3.0]);
/// assert!(r.iter().map(|v| v * v).sum::<f64>().sqrt() < 1e-12);
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar = f64> {
    n: usize,
    /// Strictly-lower part of L by column (pivot coordinates), unit diagonal implied.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<T>,
    /// U by column (pivot coordinates), including the diagonal as the last entry.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<T>,
    /// `prow[k]` = original row chosen as the k-th pivot.
    prow: Vec<usize>,
    /// Optional column permutation `cperm[k] = original column` applied when
    /// the factorization was computed on a symmetrically permuted matrix
    /// (see [`crate::SymbolicLu`]); `None` for the natural ordering.
    cperm: Option<Vec<usize>>,
}

impl<T: Scalar> SparseLu<T> {
    /// Factorizes a square sparse matrix.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] for a non-square matrix.
    /// * [`SparseError::ZeroPivot`] when no usable pivot exists in a column
    ///   (structurally or numerically singular matrix).
    // vaem-lint: cold dense-fallback factorization construction, once per pattern
    pub fn new(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(SparseError::DimensionMismatch {
                detail: format!("sparse LU requires a square matrix, got {}x{}", n, a.cols()),
            });
        }
        // Column access: row r of Aᵀ is column r of A.
        let at = a.transpose();

        // pinv[orig_row] = pivot index, or usize::MAX if not yet pivotal.
        let mut pinv = vec![usize::MAX; n];
        let mut prow = vec![usize::MAX; n];

        // L columns in *original* row indices during factorization.
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        // U columns in pivot coordinates.
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();

        // Work arrays.
        let mut x = vec![T::zero(); n]; // dense accumulator indexed by original row
        let mut mark = vec![usize::MAX; n]; // visitation stamp per original row
        let mut topo: Vec<usize> = Vec::with_capacity(n); // reverse postorder (original rows)
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            // ---- symbolic: find the pattern reachable from A[:, j] ----
            topo.clear();
            for (orig_row, _) in at.row_entries(j) {
                if mark[orig_row] == j {
                    continue;
                }
                // Iterative DFS producing a postorder.
                dfs_stack.push((orig_row, 0));
                mark[orig_row] = j;
                while let Some(&mut (node, ref mut child_pos)) = dfs_stack.last_mut() {
                    let k = pinv[node];
                    let children: &[usize] = if k == usize::MAX {
                        &[]
                    } else {
                        &l_rows[l_colptr[k]..l_colptr[k + 1]]
                    };
                    if *child_pos < children.len() {
                        let child = children[*child_pos];
                        *child_pos += 1;
                        if mark[child] != j {
                            mark[child] = j;
                            dfs_stack.push((child, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }
            // Reverse postorder = topological order of dependencies.
            topo.reverse();

            // ---- numeric: sparse triangular solve ----
            for &r in &topo {
                x[r] = T::zero();
            }
            for (orig_row, v) in at.row_entries(j) {
                x[orig_row] = v;
            }
            for &r in &topo {
                let k = pinv[r];
                if k == usize::MAX {
                    continue;
                }
                let xr = x[r];
                if xr.modulus() == 0.0 {
                    continue;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    let rr = l_rows[idx];
                    let lv = l_vals[idx];
                    x[rr] -= xr * lv;
                }
            }

            // ---- pivot selection among non-pivotal rows of the pattern ----
            let mut piv_row = usize::MAX;
            let mut piv_mag = 0.0_f64;
            for &r in &topo {
                if pinv[r] == usize::MAX {
                    let m = x[r].modulus();
                    if m > piv_mag {
                        piv_mag = m;
                        piv_row = r;
                    }
                }
            }
            if piv_row == usize::MAX || piv_mag == 0.0 {
                return Err(SparseError::ZeroPivot { index: j });
            }
            let piv_val = x[piv_row];

            // ---- store U[:, j] (pivotal rows) and L[:, j] (non-pivotal) ----
            for &r in &topo {
                let k = pinv[r];
                if k != usize::MAX {
                    let v = x[r];
                    if v.modulus() > 0.0 {
                        u_rows.push(k);
                        u_vals.push(v);
                    }
                }
            }
            // Diagonal of U last within the column for an easy backward solve.
            u_rows.push(j);
            u_vals.push(piv_val);
            u_colptr.push(u_rows.len());

            for &r in &topo {
                if pinv[r] == usize::MAX && r != piv_row {
                    let v = x[r];
                    if v.modulus() > 0.0 {
                        l_rows.push(r);
                        l_vals.push(v / piv_val);
                    }
                }
            }
            l_colptr.push(l_rows.len());

            pinv[piv_row] = j;
            prow[j] = piv_row;
        }

        // Remap L row indices from original rows to pivot coordinates.
        for r in &mut l_rows {
            *r = pinv[*r];
        }

        Ok(Self {
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            prow,
            cperm: None,
        })
    }

    /// Assembles a factorization from raw parts (used by the symbolic/numeric
    /// split in [`crate::SymbolicLu`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        l_colptr: Vec<usize>,
        l_rows: Vec<usize>,
        l_vals: Vec<T>,
        u_colptr: Vec<usize>,
        u_rows: Vec<usize>,
        u_vals: Vec<T>,
        prow: Vec<usize>,
        cperm: Option<Vec<usize>>,
    ) -> Self {
        Self {
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            prow,
            cperm,
        }
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total number of stored factor entries (fill).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionMismatch`] if `b.len()` is wrong.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, SparseError> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) dimension-mismatch error message, failure path only
                detail: format!("rhs length {} does not match dimension {}", b.len(), self.n),
            });
        }
        // y = P b
        // vaem-lint: allow(H1) permuted rhs staging, once per triangular solve
        let mut y: Vec<T> = (0..self.n).map(|k| b[self.prow[k]]).collect();
        // Forward solve L y = P b (unit diagonal).
        for k in 0..self.n {
            let yk = y[k];
            if yk.modulus() == 0.0 {
                continue;
            }
            for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                let i = self.l_rows[idx];
                let v = self.l_vals[idx];
                y[i] -= yk * v;
            }
        }
        // Backward solve U x = y (columns processed right to left; the
        // diagonal is the last entry of each column).
        for k in (0..self.n).rev() {
            let lo = self.u_colptr[k];
            let hi = self.u_colptr[k + 1];
            let diag = self.u_vals[hi - 1];
            let xk = y[k] / diag;
            y[k] = xk;
            for idx in lo..(hi - 1) {
                let i = self.u_rows[idx];
                let v = self.u_vals[idx];
                y[i] -= xk * v;
            }
        }
        // Undo the symmetric (column) permutation, if any.
        match &self.cperm {
            None => Ok(y),
            Some(perm) => {
                // vaem-lint: allow(H1) inverse-permutation staging, once per triangular solve
                let mut x = vec![T::zero(); self.n];
                for (k, &old) in perm.iter().enumerate() {
                    x[old] = y[k];
                }
                Ok(x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::{vecops, Complex64};

    fn laplacian_2d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn solves_2d_laplacian_exactly() {
        let a = laplacian_2d(10);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&x_true);
        let lu = SparseLu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
    }

    #[test]
    fn partial_pivoting_handles_zero_diagonal() {
        // Permutation-like matrix: zero diagonal everywhere.
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)]);
        let lu = SparseLu::new(&a).unwrap();
        let b = vec![2.0, 6.0, 8.0];
        let x = lu.solve(&b).unwrap();
        // x = [2, 1, 2]
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0)]);
        assert!(matches!(
            SparseLu::new(&a),
            Err(SparseError::ZeroPivot { .. })
        ));
    }

    #[test]
    fn complex_unsymmetric_system() {
        let n = 50;
        let mut t: Vec<(usize, usize, Complex64)> = Vec::new();
        for i in 0..n {
            t.push((i, i, Complex64::new(3.0, 1.0)));
            if i > 0 {
                t.push((i, i - 1, Complex64::new(-1.0, 0.4)));
            }
            if i + 1 < n {
                t.push((i, i + 1, Complex64::new(-0.8, -0.2)));
            }
            if i + 5 < n {
                t.push((i, i + 5, Complex64::new(0.3, 0.0)));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.2).sin()))
            .collect();
        let b = a.matvec(&x_true);
        let lu = SparseLu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
    }

    #[test]
    fn factor_reports_fill() {
        let a = laplacian_2d(6);
        let lu = SparseLu::new(&a).unwrap();
        assert!(lu.factor_nnz() >= a.nnz());
        assert_eq!(lu.dim(), a.rows());
    }

    #[test]
    fn ill_conditioned_diagonal_scaling_still_solves() {
        // Huge dynamic range, as in metal vs dielectric conductivities.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 5.8e7),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2e-6),
                (1, 2, -1e-6),
                (2, 1, -1e-6),
                (2, 2, 3e-6),
            ],
        );
        let x_true = vec![1e-3, 2.0, -4.0];
        let b = a.matvec(&x_true);
        let lu = SparseLu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn wrong_rhs_length_is_an_error() {
        let a = laplacian_2d(3);
        let lu = SparseLu::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }
}
