//! Compressed sparse row (CSR) matrix.

use crate::SparseError;
use vaem_numeric::Scalar;

/// The structural (value-free) part of a CSR matrix: row pointers and sorted
/// column indices.
///
/// Captured once from an assembled matrix, a pattern lets repeated
/// assemblies (Newton iterations, frequency sweeps) rebuild only the values
/// via [`CsrMatrix::assemble_into`] instead of re-sorting triplets with
/// [`CsrMatrix::from_triplets`] on every pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Extracts the pattern of an assembled matrix.
    // vaem-lint: cold pattern extraction during solver setup
    pub fn of<T: Scalar>(matrix: &CsrMatrix<T>) -> Self {
        Self {
            rows: matrix.rows,
            cols: matrix.cols,
            row_ptr: matrix.row_ptr.clone(),
            col_idx: matrix.col_idx.clone(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of structural entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array (sorted within each row).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Returns `true` when `matrix` has exactly this structure.
    pub fn matches<T: Scalar>(&self, matrix: &CsrMatrix<T>) -> bool {
        self.rows == matrix.rows
            && self.cols == matrix.cols
            && self.row_ptr == matrix.row_ptr
            && self.col_idx == matrix.col_idx
    }

    /// Materializes an all-zero matrix with this structure, ready for
    /// [`CsrMatrix::assemble_into`].
    // vaem-lint: cold materializes an empty matrix for assembly reuse
    pub fn zeros<T: Scalar>(&self) -> CsrMatrix<T> {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: vec![T::zero(); self.col_idx.len()],
        }
    }
}

/// A sparse matrix in compressed sparse row format with sorted column
/// indices inside each row.
///
/// # Example
/// ```
/// use vaem_sparse::CsrMatrix;
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 1, 3.0)]);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds a CSR matrix from (row, col, value) triplets, summing
    /// duplicates and dropping entries that sum to exactly zero is *not*
    /// performed (the structural pattern is kept, which ILU(0) relies on).
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    // vaem-lint: cold matrix construction materializes its own storage
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, T)]) -> Self {
        // Count entries per row (with duplicates).
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        // Bucket the triplets per row.
        let mut col_tmp = vec![0usize; triplets.len()];
        let mut val_tmp = vec![T::zero(); triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let dst = next[r];
            col_tmp[dst] = c;
            val_tmp[dst] = v;
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        let mut order: Vec<usize> = Vec::new();
        for r in 0..rows {
            let lo = counts[r];
            let hi = counts[r + 1];
            order.clear();
            order.extend(lo..hi);
            order.sort_by_key(|&k| col_tmp[k]);
            let mut last_col = usize::MAX;
            for &k in &order {
                let c = col_tmp[k];
                let v = val_tmp[k];
                if c == last_col {
                    let idx = values.len() - 1;
                    values[idx] += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                    last_col = c;
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<(usize, usize, T)> = (0..n).map(|i| (i, i, T::one())).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Value array.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable value array (pattern is fixed).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Re-assembles the values from triplets while keeping the existing
    /// sparsity pattern: all stored values are zeroed, then every triplet is
    /// added at its structural position (duplicates sum, as in
    /// [`CsrMatrix::from_triplets`]).
    ///
    /// This is the fast path for iteration-style assembly (Newton steps, AC
    /// sweeps) where the pattern never changes: no per-row sort, no
    /// reallocation.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when a triplet indexes outside
    ///   the matrix shape.
    /// * [`SparseError::PatternMismatch`] when a triplet addresses a
    ///   position that is structurally absent; the matrix values are left in
    ///   an unspecified (partially assembled) state in that case.
    pub fn assemble_into(&mut self, triplets: &[(usize, usize, T)]) -> Result<(), SparseError> {
        for v in &mut self.values {
            *v = T::zero();
        }
        for &(r, c, v) in triplets {
            if r >= self.rows || c >= self.cols {
                return Err(SparseError::DimensionMismatch {
                    // vaem-lint: allow(H1) assembly-error message, constructed only on dimension mismatch
                    detail: format!(
                        "triplet ({r}, {c}) out of bounds for {}x{}",
                        self.rows, self.cols
                    ),
                });
            }
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            match self.col_idx[lo..hi].binary_search(&c) {
                Ok(k) => self.values[lo + k] += v,
                Err(_) => return Err(SparseError::PatternMismatch { row: r, col: c }),
            }
        }
        Ok(())
    }

    /// Returns the stored value at `(row, col)` or zero if not present.
    pub fn get(&self, row: usize, col: usize) -> T {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => T::zero(),
        }
    }

    /// Iterator over `(col, value)` pairs of one row.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    // vaem-lint: cold allocating convenience wrapper; hot callers use matvec_into
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![T::zero(); self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a pre-allocated output buffer.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "matvec_into: dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec_into: output length mismatch");
        for r in 0..self.rows {
            let mut acc = T::zero();
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// Residual `b − A·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    // vaem-lint: cold allocating convenience wrapper; hot callers reuse buffers via matvec_into
    pub fn residual(&self, x: &[T], b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.rows, "residual: rhs length mismatch");
        let ax = self.matvec(x);
        b.iter().zip(ax.iter()).map(|(bi, ai)| *bi - *ai).collect()
    }

    /// Extracts the main diagonal (zero where structurally absent).
    pub fn diagonal(&self) -> Vec<T> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Transposed copy.
    // vaem-lint: cold materializes the transpose during setup
    pub fn transpose(&self) -> Self {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        Self::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Scales row `i` by `row[i]` and column `j` by `col[j]` in place.
    ///
    /// # Panics
    /// Panics if the scale vectors have wrong lengths.
    pub fn scale_rows_cols(&mut self, row: &[f64], col: &[f64]) {
        assert_eq!(row.len(), self.rows, "row scale length mismatch");
        assert_eq!(col.len(), self.cols, "col scale length mismatch");
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                self.values[k] = self.values[k].scale(row[r] * col[c]);
            }
        }
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row_entries(r).map(|(_, v)| v.modulus()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Checks that every row has a structural diagonal entry.
    ///
    /// # Errors
    /// Returns [`SparseError::MissingDiagonal`] with the first offending row.
    pub fn require_diagonal(&self) -> Result<(), SparseError> {
        for r in 0..self.rows.min(self.cols) {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if self.col_idx[lo..hi].binary_search(&r).is_err() {
                return Err(SparseError::MissingDiagonal { row: r });
            }
        }
        Ok(())
    }

    /// Applies a symmetric permutation `B = A(p, p)` where `perm[new] = old`.
    ///
    /// # Panics
    /// Panics if the permutation length differs from the matrix dimension or
    /// the matrix is not square.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Self {
        assert!(
            self.rows == self.cols,
            "symmetric permutation needs a square matrix"
        );
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        // inverse permutation: inv[old] = new
        let mut inv = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((inv[r], inv[c], v));
            }
        }
        Self::from_triplets(self.rows, self.cols, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::Complex64;

    fn laplacian_1d(n: usize) -> CsrMatrix<f64> {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn from_triplets_sorts_and_merges() {
        let a =
            CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 2, 0.5), (1, 1, -1.0)]);
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 2), 1.5);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), 0.0);
        let row0: Vec<usize> = a.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(row0, vec![0, 2]);
    }

    #[test]
    fn matvec_matches_dense_result() {
        let a = laplacian_1d(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 1, 1.0), (1, 2, 5.0), (0, 0, -2.0)]);
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(2, 1), 5.0);
    }

    #[test]
    fn diagonal_and_missing_diagonal_check() {
        let a = laplacian_1d(4);
        assert_eq!(a.diagonal(), vec![2.0; 4]);
        assert!(a.require_diagonal().is_ok());
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]);
        assert!(matches!(
            b.require_diagonal(),
            Err(SparseError::MissingDiagonal { row: 1 })
        ));
    }

    #[test]
    fn scaling_rows_and_columns() {
        let mut a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 4.0), (1, 1, 8.0)]);
        a.scale_rows_cols(&[0.5, 0.25], &[1.0, 0.5]);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn complex_matvec() {
        let i = Complex64::I;
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, i), (1, 1, i * i)]);
        let y = a.matvec(&[Complex64::ONE, Complex64::ONE]);
        assert_eq!(y[0], i);
        assert_eq!(y[1], Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn symmetric_permutation_preserves_values() {
        let a = laplacian_1d(4);
        let perm = vec![3, 2, 1, 0];
        let b = a.permute_symmetric(&perm);
        // reversing twice restores
        let c = b.permute_symmetric(&perm);
        assert_eq!(a, c);
        assert_eq!(b.get(0, 0), 2.0);
        assert_eq!(b.get(0, 1), -1.0);
    }

    #[test]
    fn norm_inf_of_laplacian() {
        let a = laplacian_1d(5);
        assert_eq!(a.norm_inf(), 4.0);
    }

    #[test]
    fn identity_matvec() {
        let a = CsrMatrix::<f64>::identity(3);
        assert_eq!(a.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn assemble_into_updates_values_on_fixed_pattern() {
        let mut a = laplacian_1d(4);
        // Same pattern, different values, duplicates summed.
        a.assemble_into(&[
            (0, 0, 5.0),
            (0, 1, -2.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 1, 4.0),
            (3, 3, 9.0),
        ])
        .unwrap();
        assert_eq!(a.get(0, 0), 5.0);
        assert_eq!(a.get(0, 1), -2.0);
        assert_eq!(a.get(1, 1), 7.0);
        // Structural entries not mentioned are zeroed, pattern kept.
        assert_eq!(a.get(2, 2), 0.0);
        assert_eq!(a.nnz(), laplacian_1d(4).nnz());
        assert_eq!(a.get(3, 3), 9.0);
    }

    #[test]
    fn assemble_into_rejects_entries_outside_the_pattern() {
        let mut a = laplacian_1d(4);
        assert!(matches!(
            a.assemble_into(&[(0, 3, 1.0)]),
            Err(SparseError::PatternMismatch { row: 0, col: 3 })
        ));
        assert!(matches!(
            a.assemble_into(&[(0, 9, 1.0)]),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn pattern_roundtrip_and_matching() {
        let a = laplacian_1d(5);
        let pattern = SparsityPattern::of(&a);
        assert_eq!(pattern.rows(), 5);
        assert_eq!(pattern.cols(), 5);
        assert_eq!(pattern.nnz(), a.nnz());
        assert!(pattern.matches(&a));

        let mut z: CsrMatrix<f64> = pattern.zeros();
        assert!(pattern.matches(&z));
        assert_eq!(z.nnz(), a.nnz());
        assert!(z.values().iter().all(|&v| v == 0.0));
        // A zeroed clone of the pattern accepts the original values.
        let triplets: Vec<(usize, usize, f64)> = (0..5)
            .flat_map(|r| a.row_entries(r).map(move |(c, v)| (r, c, v)))
            .collect();
        z.assemble_into(&triplets).unwrap();
        assert_eq!(z, a);

        let other = laplacian_1d(6);
        assert!(!pattern.matches(&other));
    }
}
