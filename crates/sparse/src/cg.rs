//! Conjugate gradient for symmetric positive-definite real systems.

use crate::{CsrMatrix, Ilu0, KrylovOptions, SparseError};
use vaem_numeric::vecops;

/// Preconditioned conjugate gradient solver for real SPD matrices.
///
/// The pure electrostatic sub-problem (Laplace/Poisson with Dirichlet
/// contacts) is symmetric positive definite, where CG is the cheapest option.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, ConjugateGradient, KrylovOptions};
/// let n = 40;
/// let mut t = Vec::new();
/// for i in 0..n {
///     t.push((i, i, 2.0));
///     if i > 0 { t.push((i, i - 1, -1.0)); }
///     if i + 1 < n { t.push((i, i + 1, -1.0)); }
/// }
/// let a = CsrMatrix::from_triplets(n, n, &t);
/// let b = vec![1.0; n];
/// let cg = ConjugateGradient::new(KrylovOptions::default());
/// let (x, _) = cg.solve(&a, &b, None, None)?;
/// let r = a.residual(&x, &b);
/// assert!(r.iter().map(|v| v * v).sum::<f64>().sqrt() < 1e-8);
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConjugateGradient {
    options: KrylovOptions,
}

/// Reusable buffers of the CG recurrence (`r`, `z`, `p`, `A·p`).
#[derive(Debug, Clone, Default)]
pub struct CgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        for buf in [&mut self.r, &mut self.z, &mut self.p, &mut self.ap] {
            buf.clear();
            buf.resize(n, 0.0);
        }
    }
}

impl ConjugateGradient {
    /// Creates a solver with the given options.
    pub fn new(options: KrylovOptions) -> Self {
        Self { options }
    }

    /// Solver options.
    pub fn options(&self) -> &KrylovOptions {
        &self.options
    }

    /// Solves the SPD system `A·x = b`.
    ///
    /// Symmetry/definiteness is not checked; using an unsuitable matrix shows
    /// up as a convergence failure.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] on shape mismatch.
    /// * [`SparseError::NotConverged`] when the tolerance is not met.
    pub fn solve(
        &self,
        a: &CsrMatrix<f64>,
        b: &[f64],
        precond: Option<&Ilu0<f64>>,
        x0: Option<&[f64]>,
    ) -> Result<(Vec<f64>, usize), SparseError> {
        let mut workspace = CgWorkspace::new();
        self.solve_with_workspace(a, b, precond, x0, &mut workspace)
    }

    /// [`ConjugateGradient::solve`] with caller-owned buffers, keeping the
    /// inner loop allocation-free across repeated solves.
    ///
    /// # Errors
    /// Same conditions as [`ConjugateGradient::solve`].
    pub fn solve_with_workspace(
        &self,
        a: &CsrMatrix<f64>,
        b: &[f64],
        precond: Option<&Ilu0<f64>>,
        x0: Option<&[f64]>,
        ws: &mut CgWorkspace,
    ) -> Result<(Vec<f64>, usize), SparseError> {
        let n = a.rows();
        if a.cols() != n || b.len() != n {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) dimension-mismatch error message, failure path only
                detail: format!(
                    "CG needs square A and matching rhs; got {}x{} with rhs {}",
                    a.rows(),
                    a.cols(),
                    b.len()
                ),
            });
        }
        ws.reset(n);
        let bnorm = vecops::norm2(b).max(1e-300);
        let mut x = match x0 {
            Some(x0) => {
                assert_eq!(x0.len(), n, "initial guess length mismatch");
                // vaem-lint: allow(H1) initial-guess copy, once per solve entry
                x0.to_vec()
            }
            // vaem-lint: allow(H1) zero initial guess, once per solve entry
            None => vec![0.0; n],
        };
        // r = b − A·x (skip the matvec for the zero initial guess).
        if x0.is_some() {
            a.matvec_into(&x, &mut ws.ap);
            for i in 0..n {
                ws.r[i] = b[i] - ws.ap[i];
            }
        } else {
            ws.r.copy_from_slice(b);
        }
        if vecops::norm2(&ws.r) / bnorm <= self.options.tolerance {
            return Ok((x, 0));
        }
        match precond {
            Some(m) => m.apply_into(&ws.r, &mut ws.z),
            None => ws.z.copy_from_slice(&ws.r),
        }
        ws.p.copy_from_slice(&ws.z);
        let mut rz = vecops::dot(&ws.r, &ws.z);

        for iter in 1..=self.options.max_iterations {
            a.matvec_into(&ws.p, &mut ws.ap);
            let pap = vecops::dot(&ws.p, &ws.ap);
            if pap.abs() < 1e-300 {
                return Err(SparseError::Breakdown {
                    // vaem-lint: allow(H1) breakdown-label construction, failure path only
                    detail: "p . A p became zero in CG".to_string(),
                });
            }
            let alpha = rz / pap;
            for i in 0..n {
                x[i] += alpha * ws.p[i];
                ws.r[i] -= alpha * ws.ap[i];
            }
            if vecops::norm2(&ws.r) / bnorm <= self.options.tolerance {
                return Ok((x, iter));
            }
            match precond {
                Some(m) => m.apply_into(&ws.r, &mut ws.z),
                None => ws.z.copy_from_slice(&ws.r),
            }
            let rz_new = vecops::dot(&ws.r, &ws.z);
            let beta = rz_new / rz;
            for i in 0..n {
                ws.p[i] = ws.z[i] + beta * ws.p[i];
            }
            rz = rz_new;
        }

        let rel = vecops::norm2(&a.residual(&x, b)) / bnorm;
        Err(SparseError::NotConverged {
            iterations: self.options.max_iterations,
            residual: rel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_2d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn converges_on_2d_laplacian() {
        let a = laplacian_2d(15);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.05).cos()).collect();
        let b = a.matvec(&x_true);
        let cg = ConjugateGradient::new(KrylovOptions {
            tolerance: 1e-12,
            max_iterations: 2000,
            restart: 0,
        });
        let (x, _) = cg.solve(&a, &b, None, None).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn ilu_preconditioning_reduces_iterations() {
        let a = laplacian_2d(20);
        let b = vec![1.0; a.rows()];
        let opts = KrylovOptions {
            tolerance: 1e-10,
            max_iterations: 5000,
            restart: 0,
        };
        let cg = ConjugateGradient::new(opts);
        let (_, it_plain) = cg.solve(&a, &b, None, None).unwrap();
        let ilu = Ilu0::new(&a).unwrap();
        let (_, it_prec) = cg.solve(&a, &b, Some(&ilu), None).unwrap();
        assert!(it_prec < it_plain, "{it_prec} vs {it_plain}");
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let cg = ConjugateGradient::new(KrylovOptions {
            tolerance: 1e-12,
            max_iterations: 2000,
            restart: 0,
        });
        let mut ws = CgWorkspace::new();
        for nx in [12, 8, 15] {
            let a = laplacian_2d(nx);
            let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.09).sin()).collect();
            let b = a.matvec(&x_true);
            let ilu = Ilu0::new(&a).unwrap();
            let (x_ws, it_ws) = cg
                .solve_with_workspace(&a, &b, Some(&ilu), None, &mut ws)
                .unwrap();
            let (x_fresh, it_fresh) = cg.solve(&a, &b, Some(&ilu), None).unwrap();
            assert_eq!(it_ws, it_fresh, "nx = {nx}");
            assert_eq!(x_ws, x_fresh, "nx = {nx}");
        }
    }

    #[test]
    fn warm_start_converges_instantly() {
        let a = laplacian_2d(8);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| i as f64).collect();
        let b = a.matvec(&x_true);
        let cg = ConjugateGradient::new(KrylovOptions::default());
        let (_, iters) = cg.solve(&a, &b, None, Some(&x_true)).unwrap();
        assert_eq!(iters, 0);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = laplacian_2d(20);
        let b = vec![1.0; a.rows()];
        let cg = ConjugateGradient::new(KrylovOptions {
            tolerance: 1e-15,
            max_iterations: 2,
            restart: 0,
        });
        assert!(matches!(
            cg.solve(&a, &b, None, None),
            Err(SparseError::NotConverged { .. })
        ));
    }
}
