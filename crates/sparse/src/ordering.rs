//! Fill-reducing / bandwidth-reducing orderings.
//!
//! The structured FVM grids produce matrices whose natural ordering is
//! already banded, but the coupled multi-field numbering (V, n, p blocks)
//! benefits from a fill-reducing pass before ILU(0) or the direct LU. Two
//! orderings are provided — reverse Cuthill–McKee ([`rcm`], profile
//! reduction) and approximate minimum degree ([`amd`], fill reduction) —
//! plus an exact symbolic-Cholesky fill predictor ([`predicted_fill`]) that
//! lets `SymbolicLu` pick the cheaper of the two per pattern.

use crate::CsrMatrix;
use vaem_numeric::Scalar;

/// Which fill-reducing ordering a symbolic analysis selected for a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingKind {
    /// Reverse Cuthill–McKee: bandwidth/profile reduction ([`rcm`]).
    Rcm,
    /// Approximate minimum degree: fill reduction ([`amd`]).
    Amd,
}

/// Computes a reverse Cuthill–McKee ordering of the symmetrized pattern of
/// `a` and returns a permutation `perm` with `perm[new] = old`.
///
/// The ordering reduces the bandwidth/profile, which improves the quality of
/// ILU(0) and the fill of the direct sparse LU.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, rcm};
/// // An "arrow" matrix: node 0 connected to everyone (worst case for banding).
/// let mut t = vec![(0usize, 0usize, 1.0)];
/// for i in 1..6 {
///     t.push((i, i, 1.0));
///     t.push((0, i, 1.0));
///     t.push((i, 0, 1.0));
/// }
/// let a = CsrMatrix::from_triplets(6, 6, &t);
/// let perm = rcm(&a);
/// // The result is a permutation of all node indices.
/// let mut sorted = perm.clone();
/// sorted.sort();
/// assert_eq!(sorted, (0..6).collect::<Vec<_>>());
/// // RCM starts the reversed order away from the high-degree hub.
/// assert_ne!(perm[perm.len() - 1], 0);
/// ```
// vaem-lint: cold fill-reducing ordering, once per sparsity pattern
// vaem-lint: stage pure function of the sparsity pattern, content-addressable
pub fn rcm<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    let n = a.rows();
    // Build the symmetrized adjacency (pattern of A + Aᵀ, excluding the diagonal).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for (c, _) in a.row_entries(r) {
            if c != r && c < n {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    loop {
        // Pick the unvisited node of minimum degree as the next component seed.
        let seed = (0..n).filter(|&i| !visited[i]).min_by_key(|&i| degree[i]);
        let seed = match seed {
            Some(s) => s,
            None => break,
        };
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut neighbours: Vec<usize> =
                adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            neighbours.sort_by_key(|&v| degree[v]);
            for v in neighbours {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }

    order.reverse();
    order
}

/// Computes an approximate-minimum-degree (AMD) ordering of the symmetrized
/// pattern of `a` and returns a permutation `perm` with `perm[new] = old`.
///
/// The classic quotient-graph formulation: eliminating a variable replaces
/// its clique of neighbours by one *element*; the degree of a remaining
/// variable is approximated from its still-explicit edges plus the unions
/// of its adjacent elements, with absorbed elements dropped lazily. Ties in
/// the minimum degree are broken by the smaller node index and every data
/// structure iterates in deterministic order, so the ordering is a pure
/// function of the pattern — a requirement for the seeded factorization
/// donors, which must replay the exact same ordering on every worker.
///
/// On the FVM meshes AMD trades RCM's banded profile for substantially less
/// factor fill once the mesh is three-dimensional enough that the bandwidth
/// itself grows superlinearly; [`predicted_fill`] quantifies the trade per
/// pattern.
// vaem-lint: cold fill-reducing ordering, once per sparsity pattern
// vaem-lint: stage pure function of the sparsity pattern, content-addressable
pub fn amd<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    let n = a.rows();
    // Symmetrized off-diagonal adjacency, deduplicated and sorted.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for (c, _) in a.row_entries(r) {
            if c != r && c < n {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    // Quotient-graph state. An element is named after the pivot variable
    // whose elimination created it; `elem_nodes[e]` is its live variable
    // set. Invariant: a live element contains only live variables, because
    // eliminating a variable absorbs every element adjacent to it.
    let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem_nodes: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem_alive = vec![false; n];
    let mut var_alive = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    // Lazy min-heap: stale (degree, node) entries are skipped on pop.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|v| Reverse((degree[v], v))).collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    // Per-pivot scratch, stamped by elimination step to avoid clearing.
    let mut mark = vec![usize::MAX; n];
    let mut w = vec![0usize; n]; // |Le \ Lp| counters per element
    let mut w_stamp = vec![usize::MAX; n];
    let mut lp: Vec<usize> = Vec::new();

    while let Some(Reverse((d, v))) = heap.pop() {
        if !var_alive[v] || d != degree[v] {
            continue; // stale heap entry
        }
        let stamp = order.len();
        order.push(v);
        var_alive[v] = false;
        mark[v] = stamp;

        // Lp: the pivot element's variable set — v's explicit neighbours
        // plus the members of v's elements, minus v itself.
        lp.clear();
        for &u in &adj[v] {
            if var_alive[u] && mark[u] != stamp {
                mark[u] = stamp;
                lp.push(u);
            }
        }
        for &e in &elems[v] {
            if elem_alive[e] {
                for &u in &elem_nodes[e] {
                    if mark[u] != stamp {
                        mark[u] = stamp;
                        lp.push(u);
                    }
                }
                // Absorbed into the new pivot element.
                elem_alive[e] = false;
                elem_nodes[e] = Vec::new();
            }
        }

        // One pass computing w(e) = |Le \ Lp| for every element adjacent to
        // Lp: initialize to |Le| on first touch, decrement per Lp member.
        for &u in &lp {
            for &e in &elems[u] {
                if elem_alive[e] {
                    if w_stamp[e] != stamp {
                        w_stamp[e] = stamp;
                        w[e] = elem_nodes[e].len();
                    }
                    w[e] -= 1;
                }
            }
        }

        // Update every member of Lp: prune explicit edges now covered by
        // the pivot element, refresh the element list, approximate the new
        // external degree.
        let remaining = n - order.len();
        for &u in &lp {
            adj[u].retain(|&t| var_alive[t] && mark[t] != stamp);
            let mut esum = 0usize;
            elems[u].retain(|&e| {
                if !elem_alive[e] {
                    return false;
                }
                if w[e] == 0 && w_stamp[e] == stamp {
                    // Le ⊆ Lp: the element is absorbed by the pivot.
                    elem_alive[e] = false;
                    elem_nodes[e] = Vec::new();
                    return false;
                }
                esum += w[e];
                true
            });
            elems[u].push(v);
            let lp_minus = lp.len() - 1;
            let d_new = (degree[u] + lp_minus)
                .min(adj[u].len() + lp_minus + esum)
                .min(remaining.saturating_sub(1));
            degree[u] = d_new;
            heap.push(Reverse((d_new, u)));
        }

        elem_nodes[v] = lp.clone();
        elem_alive[v] = !lp.is_empty();
    }
    order
}

/// Exact factor size `nnz(L)` (diagonal included) of the symbolic Cholesky
/// factorization of the symmetrized pattern of `a` under the ordering
/// `perm` (`perm[new] = old`) — the fill predictor `SymbolicLu` uses to
/// choose between [`rcm`] and [`amd`] per pattern.
///
/// Uses Liu's elimination-tree characterization: `L(i, k) ≠ 0` iff `k` lies
/// on the tree path from some `j` with `A(i, j) ≠ 0, j < i` up to `i`. The
/// tree is built incrementally and each row's subtree is walked once via
/// the parent links with per-row visit marks, so the whole count costs
/// `O(nnz(L) + nnz(A))` — each counted entry is one climb step. For the
/// pivoting LU the number is a prediction, not a guarantee — off-diagonal
/// pivoting adds fill the Cholesky model does not see — but the *relative*
/// comparison between two orderings of one pattern is what drives the
/// selection.
///
/// # Panics
/// Panics when `perm` is not a permutation of `0..a.rows()`.
// vaem-lint: cold ordering-selection heuristic, once per sparsity pattern
// vaem-lint: stage pure function of the sparsity pattern, content-addressable
pub fn predicted_fill<T: Scalar>(a: &CsrMatrix<T>, perm: &[usize]) -> usize {
    let n = a.rows();
    assert_eq!(perm.len(), n, "predicted_fill: permutation length");
    let mut inv = vec![usize::MAX; n];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    assert!(
        inv.iter().all(|&p| p != usize::MAX),
        "predicted_fill: perm is not a permutation"
    );
    // Strictly-lower symmetrized adjacency in permuted coordinates:
    // `lower[i]` holds the columns j < i of row i (duplicates are fine —
    // the second visit stops at the row marker).
    let mut lower: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for (c, _) in a.row_entries(r) {
            if c != r && c < n {
                let (pr, pc) = (inv[r], inv[c]);
                let (hi, lo) = if pr > pc { (pr, pc) } else { (pc, pr) };
                lower[hi].push(lo);
            }
        }
    }

    let mut parent = vec![usize::MAX; n];
    let mut visited = vec![usize::MAX; n];
    let mut nnz = n; // the diagonal
    for i in 0..n {
        visited[i] = i;
        for &j in &lower[i] {
            // Climb from j towards i along the (incrementally built) tree;
            // every first-visited node k contributes the entry L(i, k).
            let mut k = j;
            while visited[k] != i {
                visited[k] = i;
                nnz += 1;
                if parent[k] == usize::MAX {
                    parent[k] = i;
                    break;
                }
                k = parent[k];
            }
        }
    }
    nnz
}

/// Computes the bandwidth of a square matrix (maximum |i − j| over stored
/// entries); used to verify that an ordering actually helps.
pub fn bandwidth<T: Scalar>(a: &CsrMatrix<T>) -> usize {
    let mut bw = 0usize;
    for r in 0..a.rows() {
        for (c, _) in a.row_entries(r) {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D grid Laplacian with a deliberately bad (random-ish) numbering.
    fn scrambled_grid(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        // Scramble node numbering with a simple multiplicative permutation.
        let scramble = |i: usize| (i * 7 + 3) % n;
        let idx = |i: usize, j: usize| scramble(i * nx + j);
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                let me = idx(i, j);
                t.push((me, me, 4.0));
                if i > 0 {
                    t.push((me, idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((me, idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((me, idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((me, idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = scrambled_grid(7);
        let perm = rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_grid() {
        let a = scrambled_grid(9);
        let before = bandwidth(&a);
        let perm = rcm(&a);
        let b = a.permute_symmetric(&perm);
        let after = bandwidth(&b);
        assert!(
            after < before,
            "bandwidth should shrink: {after} vs {before}"
        );
    }

    #[test]
    fn handles_disconnected_components() {
        // Two decoupled 2x2 blocks.
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 3, 1.0),
            ],
        );
        let perm = rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_pattern_matrix_still_permutes() {
        let a = CsrMatrix::<f64>::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let perm = rcm(&a);
        assert_eq!(perm.len(), 3);
    }

    /// 3-D 7-point grid Laplacian — the pattern class of the FVM systems.
    fn grid_3d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx * nx;
        let idx = |i: usize, j: usize, k: usize| (i * nx + j) * nx + k;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                for k in 0..nx {
                    let me = idx(i, j, k);
                    t.push((me, me, 6.0));
                    let mut link = |other: usize| t.push((me, other, -1.0));
                    if i > 0 {
                        link(idx(i - 1, j, k));
                    }
                    if i + 1 < nx {
                        link(idx(i + 1, j, k));
                    }
                    if j > 0 {
                        link(idx(i, j - 1, k));
                    }
                    if j + 1 < nx {
                        link(idx(i, j + 1, k));
                    }
                    if k > 0 {
                        link(idx(i, j, k - 1));
                    }
                    if k + 1 < nx {
                        link(idx(i, j, k + 1));
                    }
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn amd_is_a_permutation() {
        for a in [scrambled_grid(9), grid_3d(5)] {
            let perm = amd(&a);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn amd_handles_disconnected_and_diagonal_patterns() {
        let diag = CsrMatrix::<f64>::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let mut perm = amd(&diag);
        perm.sort_unstable();
        assert_eq!(perm, vec![0, 1, 2]);
        let blocks = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 3, 1.0),
            ],
        );
        let mut perm = amd(&blocks);
        perm.sort_unstable();
        assert_eq!(perm, vec![0, 1, 2, 3]);
    }

    #[test]
    fn amd_is_deterministic() {
        let a = grid_3d(4);
        assert_eq!(amd(&a), amd(&a));
    }

    #[test]
    fn predicted_fill_is_exact_on_a_tridiagonal_chain() {
        // A chain has no fill at all in its natural order: nnz(L) = 2n − 1.
        let n = 17;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let identity: Vec<usize> = (0..n).collect();
        assert_eq!(predicted_fill(&a, &identity), 2 * n - 1);
        // Eliminating the chain from both ends inward is also fill-free.
        let reversed: Vec<usize> = (0..n).rev().collect();
        assert_eq!(predicted_fill(&a, &reversed), 2 * n - 1);
    }

    #[test]
    fn predicted_fill_sees_the_arrow_matrix_trap() {
        // Arrow matrix: hub first = dense factor, hub last = no fill.
        let n = 12;
        let mut t = vec![(0usize, 0usize, 1.0)];
        for i in 1..n {
            t.push((i, i, 1.0));
            t.push((0, i, 1.0));
            t.push((i, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let hub_first: Vec<usize> = (0..n).collect();
        let hub_last: Vec<usize> = (1..n).chain(std::iter::once(0)).collect();
        assert_eq!(predicted_fill(&a, &hub_first), n * (n + 1) / 2);
        assert_eq!(predicted_fill(&a, &hub_last), 2 * n - 1);
        // AMD finds the fill-free end of that trade-off.
        let amd_perm = amd(&a);
        assert_eq!(predicted_fill(&a, &amd_perm), 2 * n - 1);
    }

    #[test]
    fn amd_predicts_less_fill_than_rcm_on_a_3d_grid() {
        let a = grid_3d(6);
        let fill_rcm = predicted_fill(&a, &rcm(&a));
        let fill_amd = predicted_fill(&a, &amd(&a));
        assert!(
            fill_amd < fill_rcm,
            "AMD should out-order RCM on a 3-D mesh: {fill_amd} vs {fill_rcm}"
        );
    }
}
