//! Fill-reducing / bandwidth-reducing orderings.
//!
//! The structured FVM grids produce matrices whose natural ordering is
//! already banded, but the coupled multi-field numbering (V, n, p blocks)
//! benefits from a reverse Cuthill–McKee pass before ILU(0) or the direct LU.

use crate::CsrMatrix;
use vaem_numeric::Scalar;

/// Computes a reverse Cuthill–McKee ordering of the symmetrized pattern of
/// `a` and returns a permutation `perm` with `perm[new] = old`.
///
/// The ordering reduces the bandwidth/profile, which improves the quality of
/// ILU(0) and the fill of the direct sparse LU.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, rcm};
/// // An "arrow" matrix: node 0 connected to everyone (worst case for banding).
/// let mut t = vec![(0usize, 0usize, 1.0)];
/// for i in 1..6 {
///     t.push((i, i, 1.0));
///     t.push((0, i, 1.0));
///     t.push((i, 0, 1.0));
/// }
/// let a = CsrMatrix::from_triplets(6, 6, &t);
/// let perm = rcm(&a);
/// // The result is a permutation of all node indices.
/// let mut sorted = perm.clone();
/// sorted.sort();
/// assert_eq!(sorted, (0..6).collect::<Vec<_>>());
/// // RCM starts the reversed order away from the high-degree hub.
/// assert_ne!(perm[perm.len() - 1], 0);
/// ```
pub fn rcm<T: Scalar>(a: &CsrMatrix<T>) -> Vec<usize> {
    let n = a.rows();
    // Build the symmetrized adjacency (pattern of A + Aᵀ, excluding the diagonal).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for (c, _) in a.row_entries(r) {
            if c != r && c < n {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    loop {
        // Pick the unvisited node of minimum degree as the next component seed.
        let seed = (0..n).filter(|&i| !visited[i]).min_by_key(|&i| degree[i]);
        let seed = match seed {
            Some(s) => s,
            None => break,
        };
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut neighbours: Vec<usize> =
                adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            neighbours.sort_by_key(|&v| degree[v]);
            for v in neighbours {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }

    order.reverse();
    order
}

/// Computes the bandwidth of a square matrix (maximum |i − j| over stored
/// entries); used to verify that an ordering actually helps.
pub fn bandwidth<T: Scalar>(a: &CsrMatrix<T>) -> usize {
    let mut bw = 0usize;
    for r in 0..a.rows() {
        for (c, _) in a.row_entries(r) {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D grid Laplacian with a deliberately bad (random-ish) numbering.
    fn scrambled_grid(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        // Scramble node numbering with a simple multiplicative permutation.
        let scramble = |i: usize| (i * 7 + 3) % n;
        let idx = |i: usize, j: usize| scramble(i * nx + j);
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                let me = idx(i, j);
                t.push((me, me, 4.0));
                if i > 0 {
                    t.push((me, idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((me, idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((me, idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((me, idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = scrambled_grid(7);
        let perm = rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_grid() {
        let a = scrambled_grid(9);
        let before = bandwidth(&a);
        let perm = rcm(&a);
        let b = a.permute_symmetric(&perm);
        let after = bandwidth(&b);
        assert!(
            after < before,
            "bandwidth should shrink: {after} vs {before}"
        );
    }

    #[test]
    fn handles_disconnected_components() {
        // Two decoupled 2x2 blocks.
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 3, 1.0),
            ],
        );
        let perm = rcm(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_pattern_matrix_still_permutes() {
        let a = CsrMatrix::<f64>::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let perm = rcm(&a);
        assert_eq!(perm.len(), 3);
    }
}
