//! Sparse matrices and linear solvers for the VAEM coupled FVM systems.
//!
//! The discretized coupled A–V system (paper eq. 8) is a large sparse,
//! non-symmetric, complex-valued matrix equation. This crate provides the
//! storage formats and solvers used throughout the workspace:
//!
//! * [`TripletMatrix`] — coordinate-format assembly buffer (the FVM assembly
//!   pushes one entry per flux contribution and lets the conversion sum
//!   duplicates).
//! * [`CsrMatrix`] — compressed sparse row storage with matrix–vector
//!   products, diagonal extraction, scaling and transposition.
//! * [`Ilu0`] — incomplete LU factorization with zero fill-in, used as a
//!   preconditioner.
//! * [`BiCgStab`] and [`Gmres`] — preconditioned Krylov solvers for the
//!   non-symmetric complex systems.
//! * [`ConjugateGradient`] — for the symmetric positive-definite real systems
//!   (pure electrostatic sub-problems).
//! * [`SparseLu`] — a left-looking (Gilbert–Peierls style) direct sparse LU
//!   with partial pivoting, used as a robust fallback and for smaller meshes.
//! * [`SymbolicLu`] — the symbolic phase of the direct LU cached per
//!   [`SparsityPattern`] (fill-reducing ordering, pivot sequence, factor
//!   structure, supernode partition and elimination-level schedule) so
//!   repeated factorizations on one pattern pay only a supernode-blocked,
//!   optionally tree-parallel numeric cost.
//! * [`rcm`] and [`amd`] — reverse Cuthill–McKee and approximate minimum
//!   degree orderings; [`SymbolicLu`] keeps whichever [`predicted_fill`]
//!   scores better for the pattern at hand.
//! * [`LinearSolver`] — a front-end that picks a strategy and reports
//!   [`SolveReport`] statistics.
//!
//! # Example
//!
//! ```
//! use vaem_sparse::{TripletMatrix, LinearSolver, SolverKind};
//!
//! // 1-D Poisson matrix.
//! let n = 50;
//! let mut t = TripletMatrix::new(n, n);
//! for i in 0..n {
//!     t.push(i, i, 2.0);
//!     if i > 0 {
//!         t.push(i, i - 1, -1.0);
//!     }
//!     if i + 1 < n {
//!         t.push(i, i + 1, -1.0);
//!     }
//! }
//! let a = t.to_csr();
//! let b = vec![1.0; n];
//! let solver = LinearSolver::new(SolverKind::Auto);
//! let (x, report) = solver.solve(&a, &b)?;
//! assert!(report.residual_norm < 1e-8);
//! assert_eq!(x.len(), n);
//! # Ok::<(), vaem_sparse::SparseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bicgstab;
mod cg;
mod csr;
mod error;
mod gmres;
mod ilu;
mod lu;
pub mod ordering;
mod scaling;
mod solver;
mod symbolic;
mod triplet;

pub use bicgstab::{BiCgStab, BiCgStabWorkspace, KrylovOptions};
pub use cg::{CgWorkspace, ConjugateGradient};
pub use csr::{CsrMatrix, SparsityPattern};
pub use error::SparseError;
pub use gmres::{Gmres, GmresWorkspace};
pub use ilu::Ilu0;
pub use lu::SparseLu;
pub use ordering::{amd, predicted_fill, rcm, OrderingKind};
pub use scaling::RowColScaling;
pub use solver::{IluSeed, LinearSolver, PreparedSolver, SolveReport, SolverKind};
pub use symbolic::SymbolicLu;
pub use triplet::TripletMatrix;
