//! Restarted GMRES with right preconditioning.

use crate::{CsrMatrix, Ilu0, KrylovOptions, SparseError};
use vaem_numeric::{vecops, Scalar};

/// Right-preconditioned restarted GMRES(m).
///
/// Used as a fallback when BiCGSTAB stagnates on the coupled systems; the
/// restart length is taken from [`KrylovOptions::restart`].
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, Gmres, Ilu0, KrylovOptions};
/// let n = 20;
/// let mut t = Vec::new();
/// for i in 0..n {
///     t.push((i, i, 3.0));
///     if i > 0 { t.push((i, i - 1, -1.0)); }
///     if i + 1 < n { t.push((i, i + 1, -1.5)); }
/// }
/// let a = CsrMatrix::from_triplets(n, n, &t);
/// let b = vec![1.0; n];
/// let gmres = Gmres::new(KrylovOptions::default());
/// let ilu = Ilu0::new(&a)?;
/// let (x, _) = gmres.solve(&a, &b, Some(&ilu), None)?;
/// let r = a.residual(&x, &b);
/// assert!(r.iter().map(|v| v * v).sum::<f64>().sqrt() < 1e-8);
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gmres {
    options: KrylovOptions,
}

/// Reusable buffers of the restarted GMRES cycle: the Arnoldi basis, the
/// Hessenberg columns, the Givens coefficients and the scratch vectors.
///
/// The basis alone is `restart + 1` vectors of length `n`; reusing it across
/// restart cycles and across calls removes the dominant allocation churn of
/// the solver.
#[derive(Debug, Clone, Default)]
pub struct GmresWorkspace<T: Scalar = f64> {
    v: Vec<Vec<T>>,
    h: Vec<Vec<T>>,
    cs: Vec<T>,
    sn: Vec<T>,
    g: Vec<T>,
    y: Vec<T>,
    r: Vec<T>,
    z: Vec<T>,
    w: Vec<T>,
    update: Vec<T>,
    m_update: Vec<T>,
}

impl<T: Scalar> GmresWorkspace<T> {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize, m: usize) {
        self.v.resize_with(m + 1, Vec::new);
        for basis in &mut self.v {
            basis.clear();
            basis.resize(n, T::zero());
        }
        self.h.resize_with(m + 1, Vec::new);
        for row in &mut self.h {
            row.clear();
            row.resize(m, T::zero());
        }
        for buf in [&mut self.cs, &mut self.sn] {
            buf.clear();
            buf.resize(m, T::zero());
        }
        self.g.clear();
        self.g.resize(m + 1, T::zero());
        self.y.clear();
        self.y.resize(m, T::zero());
        for buf in [
            &mut self.r,
            &mut self.z,
            &mut self.w,
            &mut self.update,
            &mut self.m_update,
        ] {
            buf.clear();
            buf.resize(n, T::zero());
        }
    }

    fn clear_cycle(&mut self) {
        for row in &mut self.h {
            row.fill(T::zero());
        }
        self.g.fill(T::zero());
    }
}

impl Gmres {
    /// Creates a solver with the given options.
    pub fn new(options: KrylovOptions) -> Self {
        Self { options }
    }

    /// Solver options.
    pub fn options(&self) -> &KrylovOptions {
        &self.options
    }

    /// Solves `A·x = b` with right preconditioning `A·M⁻¹·y = b`, `x = M⁻¹·y`.
    ///
    /// Returns the solution and the total number of inner iterations.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] on shape mismatch.
    /// * [`SparseError::NotConverged`] when the tolerance is not met within
    ///   the iteration budget.
    pub fn solve<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        precond: Option<&Ilu0<T>>,
        x0: Option<&[T]>,
    ) -> Result<(Vec<T>, usize), SparseError> {
        let mut workspace = GmresWorkspace::new();
        self.solve_with_workspace(a, b, precond, x0, &mut workspace)
    }

    /// [`Gmres::solve`] with caller-owned buffers, reusing the Arnoldi basis
    /// across restart cycles and across calls.
    ///
    /// # Errors
    /// Same conditions as [`Gmres::solve`].
    pub fn solve_with_workspace<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        precond: Option<&Ilu0<T>>,
        x0: Option<&[T]>,
        ws: &mut GmresWorkspace<T>,
    ) -> Result<(Vec<T>, usize), SparseError> {
        let n = a.rows();
        if a.cols() != n || b.len() != n {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) dimension-mismatch error message, failure path only
                detail: format!(
                    "GMRES needs square A and matching rhs; got {}x{} with rhs {}",
                    a.rows(),
                    a.cols(),
                    b.len()
                ),
            });
        }
        let m = self.options.restart.max(2).min(n.max(2));
        ws.reset(n, m);
        let bnorm = vecops::norm2(b).max(1e-300);
        let mut x = match x0 {
            Some(x0) => {
                assert_eq!(x0.len(), n, "initial guess length mismatch");
                // vaem-lint: allow(H1) initial-guess copy, once per solve entry
                x0.to_vec()
            }
            // vaem-lint: allow(H1) zero initial guess, once per solve entry
            None => vec![T::zero(); n],
        };
        let mut total_iters = 0usize;

        while total_iters < self.options.max_iterations {
            // r = b − A·x.
            a.matvec_into(&x, &mut ws.w);
            for i in 0..n {
                ws.r[i] = b[i] - ws.w[i];
            }
            let beta = vecops::norm2(&ws.r);
            if beta / bnorm <= self.options.tolerance {
                return Ok((x, total_iters));
            }
            ws.clear_cycle();
            ws.v[0].copy_from_slice(&ws.r);
            vecops::scale_in_place(T::from_f64(1.0 / beta), &mut ws.v[0]);
            ws.g[0] = T::from_f64(beta);
            let (cs, sn, h, g) = (&mut ws.cs, &mut ws.sn, &mut ws.h, &mut ws.g);

            let mut k_used = 0usize;
            for k in 0..m {
                total_iters += 1;
                k_used = k + 1;
                // w = A M^{-1} v_k
                match precond {
                    Some(p) => p.apply_into(&ws.v[k], &mut ws.z),
                    None => ws.z.copy_from_slice(&ws.v[k]),
                }
                a.matvec_into(&ws.z, &mut ws.w);
                // Modified Gram-Schmidt.
                for i in 0..=k {
                    let hik = vecops::dot(&ws.v[i], &ws.w);
                    h[i][k] = hik;
                    for (wj, vj) in ws.w.iter_mut().zip(ws.v[i].iter()) {
                        *wj -= hik * *vj;
                    }
                }
                let wnorm = vecops::norm2(&ws.w);
                h[k + 1][k] = T::from_f64(wnorm);
                if wnorm > 1e-300 {
                    ws.v[k + 1].copy_from_slice(&ws.w);
                    vecops::scale_in_place(T::from_f64(1.0 / wnorm), &mut ws.v[k + 1]);
                } else {
                    ws.v[k + 1].fill(T::zero());
                }
                // Apply the previous Givens rotations to the new column.
                for i in 0..k {
                    let temp = cs[i] * h[i][k] + sn[i] * h[i + 1][k];
                    h[i + 1][k] = -sn[i].conj() * h[i][k] + cs[i].conj() * h[i + 1][k];
                    h[i][k] = temp;
                }
                // Compute the new rotation annihilating h[k+1][k].
                let (c, s) = givens(h[k][k], h[k + 1][k]);
                cs[k] = c;
                sn[k] = s;
                h[k][k] = c * h[k][k] + s * h[k + 1][k];
                h[k + 1][k] = T::zero();
                let g_k = g[k];
                g[k] = c * g_k;
                g[k + 1] = -s.conj() * g_k;

                let rel = g[k + 1].modulus() / bnorm;
                if rel <= self.options.tolerance || total_iters >= self.options.max_iterations {
                    break;
                }
            }

            // Solve the small triangular system and update x.
            for i in (0..k_used).rev() {
                let mut acc = g[i];
                for j in (i + 1)..k_used {
                    acc -= h[i][j] * ws.y[j];
                }
                if h[i][i].modulus() < 1e-300 {
                    return Err(SparseError::Breakdown {
                        // vaem-lint: allow(H1) stagnation-label construction, failure path only
                        detail: "singular Hessenberg diagonal in GMRES".to_string(),
                    });
                }
                ws.y[i] = acc / h[i][i];
            }
            ws.update.fill(T::zero());
            for j in 0..k_used {
                vecops::axpy(ws.y[j], &ws.v[j], &mut ws.update);
            }
            match precond {
                Some(p) => p.apply_into(&ws.update, &mut ws.m_update),
                None => ws.m_update.copy_from_slice(&ws.update),
            }
            for i in 0..n {
                x[i] += ws.m_update[i];
            }
        }

        let rel = vecops::norm2(&a.residual(&x, b)) / bnorm;
        if rel <= self.options.tolerance {
            Ok((x, total_iters))
        } else {
            Err(SparseError::NotConverged {
                iterations: total_iters,
                residual: rel,
            })
        }
    }
}

/// Computes a (complex-capable) Givens rotation (c, s) such that the second
/// component of `[c s; -conj(s) c] · [a; b]ᵀ`-style update is annihilated.
fn givens<T: Scalar>(a: T, b: T) -> (T, T) {
    let bm = b.modulus();
    if bm == 0.0 {
        return (T::one(), T::zero());
    }
    let am = a.modulus();
    let r = (am * am + bm * bm).sqrt();
    if am == 0.0 {
        // Rotate fully onto b.
        return (T::zero(), b.conj().scale(1.0 / bm));
    }
    let c = T::from_f64(am / r);
    // s = (a/|a|) * conj(b) / r
    let phase = a.scale(1.0 / am);
    let s = phase * b.conj().scale(1.0 / r);
    (c, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::Complex64;

    fn convection_diffusion(n: usize) -> CsrMatrix<f64> {
        // Non-symmetric tridiagonal system (upwind convection + diffusion).
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 3.0));
            if i > 0 {
                t.push((i, i - 1, -1.8));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.7));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn solves_nonsymmetric_real_system() {
        let a = convection_diffusion(80);
        let x_true: Vec<f64> = (0..80).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.matvec(&x_true);
        let gmres = Gmres::new(KrylovOptions {
            tolerance: 1e-12,
            ..Default::default()
        });
        let (x, _) = gmres.solve(&a, &b, None, None).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn solves_with_ilu_preconditioner_in_fewer_iterations() {
        let a = convection_diffusion(200);
        let b = vec![1.0; 200];
        let opts = KrylovOptions {
            tolerance: 1e-10,
            max_iterations: 5000,
            restart: 30,
        };
        let gmres = Gmres::new(opts);
        let (_, iters_plain) = gmres.solve(&a, &b, None, None).unwrap();
        let ilu = Ilu0::new(&a).unwrap();
        let (_, iters_ilu) = gmres.solve(&a, &b, Some(&ilu), None).unwrap();
        assert!(
            iters_ilu < iters_plain,
            "ILU should accelerate: {iters_ilu} vs {iters_plain}"
        );
    }

    #[test]
    fn solves_complex_nonhermitian_system() {
        let n = 40;
        let mut t: Vec<(usize, usize, Complex64)> = Vec::new();
        for i in 0..n {
            t.push((i, i, Complex64::new(2.5, 1.0)));
            if i > 0 {
                t.push((i, i - 1, Complex64::new(-1.0, 0.2)));
            }
            if i + 1 < n {
                t.push((i, i + 1, Complex64::new(-0.5, -0.1)));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let b = a.matvec(&x_true);
        let gmres = Gmres::new(KrylovOptions {
            tolerance: 1e-12,
            ..Default::default()
        });
        let ilu = Ilu0::new(&a).unwrap();
        let (x, _) = gmres.solve(&a, &b, Some(&ilu), None).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves_across_sizes() {
        let gmres = Gmres::new(KrylovOptions {
            tolerance: 1e-12,
            max_iterations: 4000,
            restart: 12,
        });
        let mut ws = GmresWorkspace::new();
        for n in [60, 30, 90] {
            let a = convection_diffusion(n);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
            let b = a.matvec(&x_true);
            let ilu = Ilu0::new(&a).unwrap();
            let (x_ws, it_ws) = gmres
                .solve_with_workspace(&a, &b, Some(&ilu), None, &mut ws)
                .unwrap();
            let (x_fresh, it_fresh) = gmres.solve(&a, &b, Some(&ilu), None).unwrap();
            assert_eq!(it_ws, it_fresh, "n = {n}");
            assert_eq!(x_ws, x_fresh, "n = {n}");
        }
    }

    #[test]
    fn restart_still_converges() {
        let a = convection_diffusion(120);
        let b = vec![1.0; 120];
        let gmres = Gmres::new(KrylovOptions {
            tolerance: 1e-10,
            max_iterations: 4000,
            restart: 5, // force many restarts
        });
        let (x, _) = gmres.solve(&a, &b, None, None).unwrap();
        let r = a.residual(&x, &b);
        assert!(vecops::norm2(&r) / vecops::norm2(&b) < 1e-9);
    }

    #[test]
    fn non_convergence_is_reported() {
        let a = convection_diffusion(100);
        let b = vec![1.0; 100];
        let gmres = Gmres::new(KrylovOptions {
            tolerance: 1e-14,
            max_iterations: 3,
            restart: 3,
        });
        assert!(matches!(
            gmres.solve(&a, &b, None, None),
            Err(SparseError::NotConverged { .. })
        ));
    }
}
