//! Preconditioned BiCGSTAB for non-symmetric (complex) systems.

use crate::{CsrMatrix, Ilu0, SparseError};
use vaem_numeric::{vecops, Scalar};

/// Relative near-breakdown threshold of the BiCGSTAB recurrence scalars.
///
/// `ρ = r̂·r` and `r̂·v` contract to (numerically) zero when the shadow
/// residual turns orthogonal to the iteration space — the classic failure
/// mode on rotation-dominated operators. Comparing them against the product
/// of the participating vector norms (instead of an absolute `1e-300`)
/// detects the *near*-breakdown scale-free, so the solver escalates to the
/// GMRES/direct fallbacks immediately instead of burning the whole
/// iteration budget on a diverging recurrence and reporting a spurious
/// max-iterations failure.
const BREAKDOWN_REL: f64 = 1e-14;

/// Options shared by the Krylov solvers ([`BiCgStab`], [`crate::Gmres`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrylovOptions {
    /// Relative residual tolerance `‖b − A·x‖ / ‖b‖`.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// GMRES restart length (ignored by BiCGSTAB).
    pub restart: usize,
}

impl Default for KrylovOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 2000,
            restart: 60,
        }
    }
}

/// Preconditioned BiCGSTAB (van der Vorst) with an optional ILU(0)
/// preconditioner.
///
/// This is the work-horse solver for the frequency-domain coupled A–V
/// systems: non-symmetric, complex, with strong coefficient contrast between
/// metal and semiconductor regions (handled by equilibration + ILU(0)).
///
/// # Example
/// ```
/// use vaem_sparse::{BiCgStab, CsrMatrix, Ilu0, KrylovOptions};
/// let n = 30;
/// let mut t = Vec::new();
/// for i in 0..n {
///     t.push((i, i, 2.5));
///     if i > 0 { t.push((i, i - 1, -1.0)); }
///     if i + 1 < n { t.push((i, i + 1, -1.0)); }
/// }
/// let a = CsrMatrix::from_triplets(n, n, &t);
/// let ilu = Ilu0::new(&a)?;
/// let b = vec![1.0; n];
/// let solver = BiCgStab::new(KrylovOptions::default());
/// let (x, iters) = solver.solve(&a, &b, Some(&ilu), None)?;
/// assert!(iters <= n);
/// let r = a.residual(&x, &b);
/// assert!(r.iter().map(|v| v * v).sum::<f64>().sqrt() < 1e-8);
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BiCgStab {
    options: KrylovOptions,
}

/// Reusable buffers of the BiCGSTAB recurrence (`r`, `r̂`, `v`, `p`, `p̂`,
/// `s`, `ŝ`, `t`).
///
/// One Newton/AC solve used to allocate (and drop) eight fresh vectors per
/// call plus two per iteration; keeping a workspace alive across calls makes
/// the inner loop allocation-free. Buffers are resized lazily, so one
/// workspace can serve systems of different sizes.
#[derive(Debug, Clone, Default)]
pub struct BiCgStabWorkspace<T: Scalar = f64> {
    r: Vec<T>,
    r_hat: Vec<T>,
    v: Vec<T>,
    p: Vec<T>,
    p_hat: Vec<T>,
    s: Vec<T>,
    s_hat: Vec<T>,
    t: Vec<T>,
}

impl<T: Scalar> BiCgStabWorkspace<T> {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        for buf in [
            &mut self.r,
            &mut self.r_hat,
            &mut self.v,
            &mut self.p,
            &mut self.p_hat,
            &mut self.s,
            &mut self.s_hat,
            &mut self.t,
        ] {
            buf.clear();
            buf.resize(n, T::zero());
        }
    }
}

impl BiCgStab {
    /// Creates a solver with the given options.
    pub fn new(options: KrylovOptions) -> Self {
        Self { options }
    }

    /// Solver options.
    pub fn options(&self) -> &KrylovOptions {
        &self.options
    }

    /// Solves `A·x = b`, optionally preconditioned by `precond` and starting
    /// from `x0` (zero when `None`).
    ///
    /// Returns the solution and the number of iterations used.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] on shape mismatch.
    /// * [`SparseError::Breakdown`] when a recurrence scalar vanishes.
    /// * [`SparseError::NotConverged`] when the tolerance is not met.
    pub fn solve<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        precond: Option<&Ilu0<T>>,
        x0: Option<&[T]>,
    ) -> Result<(Vec<T>, usize), SparseError> {
        let mut workspace = BiCgStabWorkspace::new();
        self.solve_with_workspace(a, b, precond, x0, &mut workspace)
    }

    /// [`BiCgStab::solve`] with caller-owned buffers; the variant used by
    /// repeated solves (Newton iterations, terminal/frequency sweeps) to
    /// keep the inner loops allocation-free.
    ///
    /// # Errors
    /// Same conditions as [`BiCgStab::solve`].
    pub fn solve_with_workspace<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        b: &[T],
        precond: Option<&Ilu0<T>>,
        x0: Option<&[T]>,
        ws: &mut BiCgStabWorkspace<T>,
    ) -> Result<(Vec<T>, usize), SparseError> {
        let n = a.rows();
        if a.cols() != n || b.len() != n {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) dimension-mismatch error message, failure path only
                detail: format!(
                    "BiCGSTAB needs square A and matching rhs; got {}x{} with rhs {}",
                    a.rows(),
                    a.cols(),
                    b.len()
                ),
            });
        }
        ws.reset(n);

        let bnorm = vecops::norm2(b).max(1e-300);
        let mut x = match x0 {
            Some(x0) => {
                assert_eq!(x0.len(), n, "initial guess length mismatch");
                // vaem-lint: allow(H1) initial-guess copy, once per solve entry
                x0.to_vec()
            }
            // vaem-lint: allow(H1) zero initial guess, once per solve entry
            None => vec![T::zero(); n],
        };
        // r = b − A·x (skip the matvec for the zero initial guess).
        if x0.is_some() {
            a.matvec_into(&x, &mut ws.t);
            for i in 0..n {
                ws.r[i] = b[i] - ws.t[i];
            }
        } else {
            ws.r.copy_from_slice(b);
        }
        let mut r_norm = vecops::norm2(&ws.r);
        if r_norm / bnorm <= self.options.tolerance {
            return Ok((x, 0));
        }
        ws.r_hat.copy_from_slice(&ws.r);
        let mut r_hat_norm = r_norm;
        let mut rho = T::one();
        let mut alpha = T::one();
        let mut omega = T::one();

        for iter in 1..=self.options.max_iterations {
            let rho_new = vecops::dot(&ws.r_hat, &ws.r);
            if !rho_new.is_finite_scalar()
                || rho_new.modulus() < BREAKDOWN_REL * r_hat_norm * r_norm
            {
                return Err(SparseError::Breakdown {
                    // vaem-lint: allow(H1) breakdown-label construction, failure path only
                    detail: "rho (near-)vanished in BiCGSTAB".to_string(),
                });
            }
            let beta = (rho_new / rho) * (alpha / omega);
            // p = r + beta (p - omega v)
            for i in 0..n {
                ws.p[i] = ws.r[i] + beta * (ws.p[i] - omega * ws.v[i]);
            }
            match precond {
                Some(m) => m.apply_into(&ws.p, &mut ws.p_hat),
                None => ws.p_hat.copy_from_slice(&ws.p),
            }
            a.matvec_into(&ws.p_hat, &mut ws.v);
            let denom = vecops::dot(&ws.r_hat, &ws.v);
            if !denom.is_finite_scalar()
                || denom.modulus() < BREAKDOWN_REL * r_hat_norm * vecops::norm2(&ws.v)
                || denom.modulus() < 1e-300
            {
                return Err(SparseError::Breakdown {
                    // vaem-lint: allow(H1) breakdown-label construction, failure path only
                    detail: "r_hat . v (near-)vanished in BiCGSTAB".to_string(),
                });
            }
            alpha = rho_new / denom;
            // s = r - alpha v
            for i in 0..n {
                ws.s[i] = ws.r[i] - alpha * ws.v[i];
            }
            if vecops::norm2(&ws.s) / bnorm <= self.options.tolerance {
                for i in 0..n {
                    x[i] += alpha * ws.p_hat[i];
                }
                if verify_or_restart(
                    a,
                    b,
                    bnorm,
                    &x,
                    self.options.tolerance,
                    ws,
                    &mut r_norm,
                    &mut r_hat_norm,
                    &mut rho,
                    &mut alpha,
                    &mut omega,
                ) {
                    return Ok((x, iter));
                }
                continue;
            }
            match precond {
                Some(m) => m.apply_into(&ws.s, &mut ws.s_hat),
                None => ws.s_hat.copy_from_slice(&ws.s),
            }
            a.matvec_into(&ws.s_hat, &mut ws.t);
            let tt = vecops::dot(&ws.t, &ws.t);
            if !tt.is_finite_scalar() || tt.modulus() < 1e-300 {
                return Err(SparseError::Breakdown {
                    // vaem-lint: allow(H1) breakdown-label construction, failure path only
                    detail: "t . t (near-)vanished in BiCGSTAB".to_string(),
                });
            }
            omega = vecops::dot(&ws.t, &ws.s) / tt;
            for i in 0..n {
                x[i] += alpha * ws.p_hat[i] + omega * ws.s_hat[i];
                ws.r[i] = ws.s[i] - omega * ws.t[i];
            }
            r_norm = vecops::norm2(&ws.r);
            let rel = r_norm / bnorm;
            if !rel.is_finite() {
                // The recurrence overflowed/NaN-poisoned itself; report a
                // breakdown now rather than a max-iterations failure later.
                return Err(SparseError::Breakdown {
                    // vaem-lint: allow(H1) breakdown-label construction, failure path only
                    detail: "residual became non-finite in BiCGSTAB".to_string(),
                });
            }
            if rel <= self.options.tolerance {
                if verify_or_restart(
                    a,
                    b,
                    bnorm,
                    &x,
                    self.options.tolerance,
                    ws,
                    &mut r_norm,
                    &mut r_hat_norm,
                    &mut rho,
                    &mut alpha,
                    &mut omega,
                ) {
                    return Ok((x, iter));
                }
                continue;
            }
            if !omega.is_finite_scalar() || omega.modulus() < 1e-300 {
                return Err(SparseError::Breakdown {
                    // vaem-lint: allow(H1) divergence-label construction, failure path only
                    detail: "omega (near-)vanished in BiCGSTAB".to_string(),
                });
            }
            rho = rho_new;
        }

        let rel = vecops::norm2(&a.residual(&x, b)) / bnorm;
        Err(SparseError::NotConverged {
            iterations: self.options.max_iterations,
            residual: rel,
        })
    }
}

/// Trust-but-verify step shared by both BiCGSTAB convergence exits: the
/// recurrence residual can drift from the true residual once a
/// near-breakdown has amplified the iterates, so claimed convergence is only
/// accepted when the explicit residual `b − A·x` confirms it. On drift the
/// recurrence is restarted from the verified residual (residual
/// replacement): `r = r̂ = b − A·x`, scalars reset, search directions
/// zeroed. Returns `true` when `x` is truly converged.
#[allow(clippy::too_many_arguments)]
fn verify_or_restart<T: Scalar>(
    a: &CsrMatrix<T>,
    b: &[T],
    bnorm: f64,
    x: &[T],
    tolerance: f64,
    ws: &mut BiCgStabWorkspace<T>,
    r_norm: &mut f64,
    r_hat_norm: &mut f64,
    rho: &mut T,
    alpha: &mut T,
    omega: &mut T,
) -> bool {
    let n = x.len();
    a.matvec_into(x, &mut ws.t);
    let mut true_sqr = 0.0;
    for i in 0..n {
        true_sqr += (b[i] - ws.t[i]).modulus_sqr();
    }
    let true_rel = true_sqr.sqrt() / bnorm;
    if true_rel <= tolerance {
        return true;
    }
    for i in 0..n {
        ws.r[i] = b[i] - ws.t[i];
    }
    ws.r_hat.copy_from_slice(&ws.r);
    *r_norm = true_rel * bnorm;
    *r_hat_norm = *r_norm;
    *rho = T::one();
    *alpha = T::one();
    *omega = T::one();
    ws.p.fill(T::zero());
    ws.v.fill(T::zero());
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::Complex64;

    fn laplacian_2d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn solves_2d_laplacian_with_ilu() {
        let a = laplacian_2d(12);
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.matvec(&x_true);
        let ilu = Ilu0::new(&a).unwrap();
        let solver = BiCgStab::new(KrylovOptions {
            tolerance: 1e-12,
            ..Default::default()
        });
        let (x, iters) = solver.solve(&a, &b, Some(&ilu), None).unwrap();
        assert!(iters < 80, "iterations {iters}");
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn solves_without_preconditioner() {
        let a = laplacian_2d(6);
        let b = vec![1.0; a.rows()];
        let solver = BiCgStab::new(KrylovOptions::default());
        let (x, _) = solver.solve(&a, &b, None, None).unwrap();
        let r = a.residual(&x, &b);
        assert!(vecops::norm2(&r) < 1e-7);
    }

    #[test]
    fn solves_complex_shifted_laplacian() {
        let base = laplacian_2d(8);
        let n = base.rows();
        let mut t: Vec<(usize, usize, Complex64)> = Vec::new();
        for r in 0..n {
            for (c, v) in base.row_entries(r) {
                t.push((r, c, Complex64::new(v, 0.0)));
            }
            t.push((r, r, Complex64::new(0.0, 0.35)));
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.3).cos(), (i as f64 * 0.17).sin()))
            .collect();
        let b = a.matvec(&x_true);
        let ilu = Ilu0::new(&a).unwrap();
        let solver = BiCgStab::new(KrylovOptions {
            tolerance: 1e-12,
            ..Default::default()
        });
        let (x, _) = solver.solve(&a, &b, Some(&ilu), None).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-8);
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves_across_sizes() {
        let solver = BiCgStab::new(KrylovOptions {
            tolerance: 1e-12,
            ..Default::default()
        });
        let mut ws = BiCgStabWorkspace::new();
        // Shrinking and growing sizes exercise the lazy buffer resize.
        for nx in [10, 6, 12] {
            let a = laplacian_2d(nx);
            let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.07).sin()).collect();
            let b = a.matvec(&x_true);
            let ilu = Ilu0::new(&a).unwrap();
            let (x_ws, it_ws) = solver
                .solve_with_workspace(&a, &b, Some(&ilu), None, &mut ws)
                .unwrap();
            let (x_fresh, it_fresh) = solver.solve(&a, &b, Some(&ilu), None).unwrap();
            assert_eq!(it_ws, it_fresh, "nx = {nx}");
            assert_eq!(x_ws, x_fresh, "nx = {nx}");
        }
    }

    #[test]
    fn initial_guess_close_to_solution_converges_immediately() {
        let a = laplacian_2d(6);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| i as f64).collect();
        let b = a.matvec(&x_true);
        let solver = BiCgStab::new(KrylovOptions::default());
        let (_, iters) = solver.solve(&a, &b, None, Some(&x_true)).unwrap();
        assert_eq!(iters, 0);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = laplacian_2d(3);
        let solver = BiCgStab::new(KrylovOptions::default());
        assert!(matches!(
            solver.solve(&a, &[1.0, 2.0], None, None),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    /// Block-diagonal matrix of near-90° 2×2 rotation blocks — the
    /// rotation-dominated operator on which the BiCGSTAB recurrence scalars
    /// (near-)vanish.
    fn rotation_blocks(n_blocks: usize, diag: f64) -> CsrMatrix<f64> {
        let n = 2 * n_blocks;
        let mut t = Vec::new();
        for k in 0..n_blocks {
            let i = 2 * k;
            t.push((i, i, diag));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, 1.0));
            t.push((i + 1, i + 1, diag));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn rotation_dominated_system_breaks_down_instead_of_burning_the_budget() {
        // diag = 1e-15 puts r_hat·v at ~1e-15·‖r̂‖·‖v̂‖ on the very first
        // iteration: far above the old absolute 1e-300 cutoff (which let the
        // recurrence diverge and mis-report), but below the relative
        // threshold, which must flag the near-breakdown immediately.
        let a = rotation_blocks(20, 1e-15);
        let b = vec![1.0; a.rows()];
        let solver = BiCgStab::new(KrylovOptions::default());
        match solver.solve(&a, &b, None, None) {
            Err(SparseError::Breakdown { .. }) => {}
            other => panic!("expected a breakdown, got {other:?}"),
        }
    }

    #[test]
    fn reports_non_convergence_for_tiny_iteration_budget() {
        let a = laplacian_2d(10);
        let b = vec![1.0; a.rows()];
        let solver = BiCgStab::new(KrylovOptions {
            tolerance: 1e-14,
            max_iterations: 2,
            restart: 10,
        });
        let out = solver.solve(&a, &b, None, None);
        assert!(matches!(out, Err(SparseError::NotConverged { .. })));
    }
}
