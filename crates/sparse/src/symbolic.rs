//! Symbolic/numeric split of the direct sparse LU.
//!
//! [`SparseLu::new`] redoes the whole pipeline — fill-reducing ordering is
//! absent, the reachability DFS and the pivot search run per column — on
//! every call. Workloads that factorize many matrices with one sparsity
//! pattern (Newton iterations, frequency sweeps, perturbed samples) only
//! change the *values*, so [`SymbolicLu`] caches everything that depends on
//! the pattern alone:
//!
//! * the reverse Cuthill–McKee ordering of the pattern (fill reduction),
//! * after the first numeric factorization: the pivot sequence and the full
//!   structural patterns of `L` and `U`.
//!
//! Subsequent [`SymbolicLu::factor`] calls then pay only the numeric phase —
//! a sparse triangular solve per column over a fixed pattern, with no DFS,
//! no sorting and no pivot search. A cached pivot that becomes numerically
//! unstable for the new values triggers a transparent fresh pivoting
//! factorization (which also refreshes the cached structure); the number of
//! such fallbacks is counted and surfaced through
//! [`SymbolicLu::stale_fallback_count`].
//!
//! Variation-aware sweeps factorize many *perturbations of one nominal
//! matrix* on worker threads, so the pattern-derived state (ordering, column
//! map) and the recorded structure are both behind [`Arc`]s:
//! [`SymbolicLu::seed_from`] hands each worker its own handle onto the
//! donor's analysis and pivot structure for the cost of two reference-count
//! bumps, and the worker's first `factor` call is already numeric-only. The
//! numeric refactorization replays the donor's exact elimination order, so
//! for the *same* values it reproduces the donor's factors bit for bit —
//! which is what keeps a seeded sample sweep bit-identical to an unseeded
//! one whenever the perturbed pivots stay on the nominal sequence.

use crate::{ordering, CsrMatrix, SparseError, SparseLu, SparsityPattern};
use std::sync::Arc;
use vaem_numeric::Scalar;

/// Relative pivot tolerance of the numeric-only refactorization: when the
/// cached pivot falls below this fraction of the magnitude of its column the
/// cached pivot sequence is considered stale and the factorization restarts
/// with fresh partial pivoting.
const REFACTOR_PIVOT_TOL: f64 = 1e-10;

/// The reusable symbolic phase of the sparse LU for one sparsity pattern.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, SparsityPattern, SymbolicLu};
/// let a = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 2.0), (0, 1, 1.0),
///     (1, 0, -1.0), (1, 1, 3.0), (1, 2, 0.5),
///     (2, 1, 1.0), (2, 2, 4.0),
/// ]);
/// let mut symbolic = SymbolicLu::new(&SparsityPattern::of(&a))?;
/// let lu = symbolic.factor(&a)?; // full pivoting factorization
/// let x = lu.solve(&[1.0, 2.0, 3.0])?;
/// // Same pattern, new values: only the numeric phase runs.
/// let b = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 4.0), (0, 1, -1.0),
///     (1, 0, 2.0), (1, 1, 5.0), (1, 2, 1.5),
///     (2, 1, -1.0), (2, 2, 2.0),
/// ]);
/// let lu_b = symbolic.factor(&b)?;
/// let y = lu_b.solve(&[1.0, 2.0, 3.0])?;
/// assert!(a.residual(&x, &[1.0, 2.0, 3.0]).iter().all(|r| r.abs() < 1e-10));
/// assert!(b.residual(&y, &[1.0, 2.0, 3.0]).iter().all(|r| r.abs() < 1e-10));
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    /// Pattern-derived analysis, shared (read-only) by every seeded clone.
    core: Arc<SymbolicCore>,
    /// Pivot sequence + factor patterns recorded by the first numeric
    /// factorization; `Arc`-shared so seeding a worker costs a refcount
    /// bump, replaced wholesale when a fallback re-pivots.
    structure: Option<Arc<LuStructure>>,
    /// How many times a cached pivot sequence went numerically stale and
    /// `factor` fell back to a fresh pivoting factorization.
    stale_fallbacks: u64,
}

/// The immutable pattern-only half of the analysis.
#[derive(Debug)]
struct SymbolicCore {
    n: usize,
    pattern: SparsityPattern,
    /// Fill-reducing (RCM) ordering, `perm[new] = old`.
    perm: Vec<usize>,
    /// Column access of the permuted matrix `Ap = A(p, p)`: per permuted
    /// column, the permuted row indices and the positions of the values in
    /// the CSR value array of the *unpermuted* matrix. Pattern-only, so it
    /// is valid for every matrix sharing the pattern.
    col_ptr: Vec<usize>,
    col_rows: Vec<usize>,
    col_src: Vec<usize>,
}

/// Structural output of one pivoting factorization, all row indices in pivot
/// coordinates of the permuted matrix.
#[derive(Debug, Clone)]
struct LuStructure {
    /// `prow[k]` = permuted row chosen as the k-th pivot.
    prow: Vec<usize>,
    /// `pinv[permuted row]` = pivot index.
    pinv: Vec<usize>,
    l_colptr: Vec<usize>,
    /// Strictly-lower rows per column, sorted ascending.
    l_rows: Vec<usize>,
    u_colptr: Vec<usize>,
    /// Upper rows per column, sorted ascending; the diagonal (`== column`)
    /// is therefore the last entry.
    u_rows: Vec<usize>,
    /// Per column, the positions (indices into `u_rows`/`u_vals`) of the
    /// off-diagonal U entries in the exact order the recording
    /// factorization eliminated them (its topological DFS order).
    /// Replaying this order makes the numeric refactorization perform the
    /// same floating-point operations in the same sequence as the pivoting
    /// factorization, so identical values reproduce identical factor bits.
    elim_ptr: Vec<usize>,
    elim_pos: Vec<usize>,
}

impl SymbolicLu {
    /// Analyzes a sparsity pattern: computes the fill-reducing ordering and
    /// the permuted column-access map.
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionMismatch`] for a non-square pattern.
    pub fn new(pattern: &SparsityPattern) -> Result<Self, SparseError> {
        let n = pattern.rows();
        if pattern.cols() != n {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "symbolic LU requires a square pattern, got {}x{}",
                    n,
                    pattern.cols()
                ),
            });
        }
        let perm = ordering::rcm(&pattern.zeros::<f64>());
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        // Bucket the CSR entries by permuted column.
        let row_ptr = pattern.row_ptr();
        let col_idx = pattern.col_idx();
        let mut col_ptr = vec![0usize; n + 1];
        for &c in col_idx {
            col_ptr[inv[c] + 1] += 1;
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut next = col_ptr.clone();
        let mut col_rows = vec![0usize; col_idx.len()];
        let mut col_src = vec![0usize; col_idx.len()];
        for r in 0..n {
            for k in row_ptr[r]..row_ptr[r + 1] {
                let pc = inv[col_idx[k]];
                let dst = next[pc];
                col_rows[dst] = inv[r];
                col_src[dst] = k;
                next[pc] += 1;
            }
        }
        Ok(Self {
            core: Arc::new(SymbolicCore {
                n,
                pattern: pattern.clone(),
                perm,
                col_ptr,
                col_rows,
                col_src,
            }),
            structure: None,
            stale_fallbacks: 0,
        })
    }

    /// Convenience: analyzes the pattern of an assembled matrix.
    ///
    /// # Errors
    /// Same conditions as [`SymbolicLu::new`].
    pub fn analyze<T: Scalar>(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        Self::new(&SparsityPattern::of(a))
    }

    /// A cheap independent handle onto this analysis: the new `SymbolicLu`
    /// shares the (immutable) ordering, column map and — when already
    /// recorded — the pivot structure through `Arc`s, so the clone costs
    /// reference-count bumps instead of re-running RCM and the first
    /// pivoting factorization.
    ///
    /// This is the cross-sample reuse path of the variation-aware sweeps:
    /// the nominal sample donates its symbolic phase and every perturbed
    /// sample (on its own worker thread) starts numeric-only. A seed whose
    /// pivots go stale for some perturbation re-pivots locally, replacing
    /// only its own structure handle; the donor and the other workers are
    /// unaffected. The stale-fallback counter of the new handle starts at
    /// zero.
    pub fn seed_from(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
            structure: self.structure.clone(),
            stale_fallbacks: 0,
        }
    }

    /// Dimension of the analyzed pattern.
    pub fn dim(&self) -> usize {
        self.core.n
    }

    /// The fill-reducing ordering (`perm[new] = old`).
    pub fn ordering(&self) -> &[usize] {
        &self.core.perm
    }

    /// `true` once a factorization has recorded the pivot sequence, i.e.
    /// subsequent [`SymbolicLu::factor`] calls take the numeric-only path.
    pub fn has_structure(&self) -> bool {
        self.structure.is_some()
    }

    /// `true` when `a` has exactly the analyzed sparsity pattern, i.e.
    /// [`SymbolicLu::factor`] would accept it.
    pub fn matches<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        self.core.pattern.matches(a)
    }

    /// How many times a cached pivot sequence went numerically stale for
    /// the handed-in values and [`SymbolicLu::factor`] fell back to a fresh
    /// pivoting factorization. Seeded handles start at zero, so for a
    /// per-sample seed this counts exactly the samples' re-pivots.
    pub fn stale_fallback_count(&self) -> u64 {
        self.stale_fallbacks
    }

    /// Factorizes a matrix with the analyzed pattern.
    ///
    /// The first call runs the full pivoting factorization and records the
    /// pivot sequence and factor structure; later calls redo only the
    /// numeric phase against that structure, restarting with fresh pivoting
    /// when a cached pivot becomes numerically unusable for the new values.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when `a` does not have exactly
    ///   the analyzed pattern.
    /// * [`SparseError::ZeroPivot`] when the matrix is (numerically)
    ///   singular even under fresh pivoting.
    pub fn factor<T: Scalar>(&mut self, a: &CsrMatrix<T>) -> Result<SparseLu<T>, SparseError> {
        if !self.core.pattern.matches(a) {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "matrix ({}x{}, {} nnz) does not share the analyzed sparsity pattern \
                     ({}x{}, {} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    self.core.pattern.rows(),
                    self.core.pattern.cols(),
                    self.core.pattern.nnz()
                ),
            });
        }
        if let Some(structure) = self.structure.clone() {
            match self.refactor_numeric(a, &structure) {
                Ok(lu) => return Ok(lu),
                // Stale pivot sequence — fall through to a fresh pivoting
                // factorization, which also refreshes (this handle's)
                // structure; shared donors keep theirs.
                Err(_) => {
                    self.structure = None;
                    self.stale_fallbacks += 1;
                }
            }
        }
        self.factor_full(a)
    }

    /// Full left-looking Gilbert–Peierls factorization with partial pivoting
    /// on the RCM-permuted matrix; records the (unpruned) structural reach
    /// of every column so the numeric refactorization stays exact even when
    /// entries that cancelled here become non-zero later.
    fn factor_full<T: Scalar>(&mut self, a: &CsrMatrix<T>) -> Result<SparseLu<T>, SparseError> {
        // Own a handle so the pattern data stays readable while
        // `self.structure` is replaced at the end.
        let core = Arc::clone(&self.core);
        let core = &*core;
        let n = core.n;
        let vals = a.values();

        let mut pinv = vec![usize::MAX; n];
        let mut prow = vec![usize::MAX; n];
        // L columns in *permuted* row indices during factorization.
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        // U columns in pivot coordinates.
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();
        // Off-diagonal U rows in elimination (topological) order, recorded
        // so the numeric refactorization can replay the same operation
        // sequence (see `LuStructure::elim_pos`).
        let mut elim_ptr = vec![0usize];
        let mut elim_rows: Vec<usize> = Vec::new();

        let mut x = vec![T::zero(); n];
        let mut mark = vec![usize::MAX; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            // ---- symbolic: reach of Ap[:, j] through the L columns ----
            topo.clear();
            for t in core.col_ptr[j]..core.col_ptr[j + 1] {
                let row = core.col_rows[t];
                if mark[row] == j {
                    continue;
                }
                dfs_stack.push((row, 0));
                mark[row] = j;
                while let Some(&mut (node, ref mut child_pos)) = dfs_stack.last_mut() {
                    let k = pinv[node];
                    let children: &[usize] = if k == usize::MAX {
                        &[]
                    } else {
                        &l_rows[l_colptr[k]..l_colptr[k + 1]]
                    };
                    if *child_pos < children.len() {
                        let child = children[*child_pos];
                        *child_pos += 1;
                        if mark[child] != j {
                            mark[child] = j;
                            dfs_stack.push((child, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }
            topo.reverse();

            // ---- numeric: sparse triangular solve ----
            for &r in &topo {
                x[r] = T::zero();
            }
            for t in core.col_ptr[j]..core.col_ptr[j + 1] {
                x[core.col_rows[t]] = vals[core.col_src[t]];
            }
            for &r in &topo {
                let k = pinv[r];
                if k == usize::MAX {
                    continue;
                }
                elim_rows.push(k);
                let xr = x[r];
                if xr.modulus() == 0.0 {
                    continue;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    x[l_rows[idx]] -= xr * l_vals[idx];
                }
            }
            elim_ptr.push(elim_rows.len());

            // ---- pivot selection among non-pivotal rows ----
            let mut piv_row = usize::MAX;
            let mut piv_mag = 0.0_f64;
            for &r in &topo {
                if pinv[r] == usize::MAX {
                    let m = x[r].modulus();
                    if m > piv_mag {
                        piv_mag = m;
                        piv_row = r;
                    }
                }
            }
            if piv_row == usize::MAX || piv_mag == 0.0 {
                return Err(SparseError::ZeroPivot { index: j });
            }
            let piv_val = x[piv_row];

            // ---- store U[:, j] and L[:, j]; keep the whole reach, even
            // numerically zero entries, so the cached structure stays a
            // superset for any values on this pattern ----
            for &r in &topo {
                let k = pinv[r];
                if k != usize::MAX {
                    u_rows.push(k);
                    u_vals.push(x[r]);
                }
            }
            u_rows.push(j);
            u_vals.push(piv_val);
            u_colptr.push(u_rows.len());

            for &r in &topo {
                if pinv[r] == usize::MAX && r != piv_row {
                    l_rows.push(r);
                    l_vals.push(x[r] / piv_val);
                }
            }
            l_colptr.push(l_rows.len());

            pinv[piv_row] = j;
            prow[j] = piv_row;
        }

        // Remap L rows to pivot coordinates, then sort every factor column
        // ascending (the U diagonal lands last automatically) so the numeric
        // refactorization can zero/scatter in plain index order.
        for r in &mut l_rows {
            *r = pinv[*r];
        }
        for j in 0..n {
            sort_column(&mut l_rows, &mut l_vals, l_colptr[j], l_colptr[j + 1]);
            sort_column(&mut u_rows, &mut u_vals, u_colptr[j], u_colptr[j + 1]);
        }

        // Convert the recorded elimination order from pivot indices to
        // positions in the (now sorted) U columns: `elim_rows` for column j
        // holds exactly the off-diagonal rows of U[:, j] in topological
        // order, so each lookup is a binary search in the sorted slice.
        let mut elim_pos = vec![0usize; elim_rows.len()];
        for j in 0..n {
            let (lo, hi) = (u_colptr[j], u_colptr[j + 1]);
            let sorted = &u_rows[lo..hi];
            for e in elim_ptr[j]..elim_ptr[j + 1] {
                let at = sorted
                    .binary_search(&elim_rows[e])
                    .expect("eliminated row is a recorded U entry");
                elim_pos[e] = lo + at;
            }
        }

        self.structure = Some(Arc::new(LuStructure {
            prow: prow.clone(),
            pinv,
            l_colptr: l_colptr.clone(),
            l_rows: l_rows.clone(),
            u_colptr: u_colptr.clone(),
            u_rows: u_rows.clone(),
            elim_ptr,
            elim_pos,
        }));

        let prow_orig: Vec<usize> = prow.iter().map(|&r| core.perm[r]).collect();
        Ok(SparseLu::from_parts(
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            prow_orig,
            Some(core.perm.clone()),
        ))
    }

    /// Numeric-only refactorization against a cached pivot sequence and
    /// factor structure: per column, scatter, eliminate replaying the
    /// recorded topological order, divide — no reachability DFS, no
    /// sorting, no pivot search. Because the elimination replays the
    /// recording factorization's exact operation sequence, handing in the
    /// same values reproduces the same factor bits.
    fn refactor_numeric<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        st: &LuStructure,
    ) -> Result<SparseLu<T>, SparseError> {
        let core = &*self.core;
        let n = core.n;
        let vals = a.values();
        let mut l_vals = vec![T::zero(); st.l_rows.len()];
        let mut u_vals = vec![T::zero(); st.u_rows.len()];
        let mut x = vec![T::zero(); n];

        for j in 0..n {
            // The column pattern is exactly U[:, j] ∪ L[:, j] (the diagonal
            // is the last U entry); zero it, then scatter Ap[:, j].
            for idx in st.u_colptr[j]..st.u_colptr[j + 1] {
                x[st.u_rows[idx]] = T::zero();
            }
            for idx in st.l_colptr[j]..st.l_colptr[j + 1] {
                x[st.l_rows[idx]] = T::zero();
            }
            for t in core.col_ptr[j]..core.col_ptr[j + 1] {
                x[st.pinv[core.col_rows[t]]] = vals[core.col_src[t]];
            }

            for &idx in &st.elim_pos[st.elim_ptr[j]..st.elim_ptr[j + 1]] {
                let k = st.u_rows[idx];
                let xk = x[k];
                u_vals[idx] = xk;
                if xk.modulus() != 0.0 {
                    for li in st.l_colptr[k]..st.l_colptr[k + 1] {
                        x[st.l_rows[li]] -= xk * l_vals[li];
                    }
                }
            }

            let u_hi = st.u_colptr[j + 1];
            let piv = x[j];
            let l_lo = st.l_colptr[j];
            let l_hi = st.l_colptr[j + 1];
            let mut colmax = piv.modulus();
            for idx in l_lo..l_hi {
                colmax = colmax.max(x[st.l_rows[idx]].modulus());
            }
            if piv.modulus() == 0.0 || piv.modulus() < REFACTOR_PIVOT_TOL * colmax {
                return Err(SparseError::ZeroPivot { index: j });
            }
            u_vals[u_hi - 1] = piv;
            for idx in l_lo..l_hi {
                l_vals[idx] = x[st.l_rows[idx]] / piv;
            }
        }

        let prow_orig: Vec<usize> = st.prow.iter().map(|&r| core.perm[r]).collect();
        Ok(SparseLu::from_parts(
            n,
            st.l_colptr.clone(),
            st.l_rows.clone(),
            l_vals,
            st.u_colptr.clone(),
            st.u_rows.clone(),
            u_vals,
            prow_orig,
            Some(core.perm.clone()),
        ))
    }
}

/// Sorts the `(row, value)` pairs of one factor column by row index.
fn sort_column<T: Scalar>(rows: &mut [usize], vals: &mut [T], lo: usize, hi: usize) {
    if hi - lo < 2 {
        return;
    }
    let mut pairs: Vec<(usize, T)> = (lo..hi).map(|i| (rows[i], vals[i])).collect();
    pairs.sort_unstable_by_key(|&(r, _)| r);
    for (off, (r, v)) in pairs.into_iter().enumerate() {
        rows[lo + off] = r;
        vals[lo + off] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::{vecops, Complex64};

    fn laplacian_2d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// Rebuilds the laplacian with shifted values on the identical pattern.
    fn shifted_laplacian(nx: usize, shift: f64) -> CsrMatrix<f64> {
        let mut a = laplacian_2d(nx);
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..a.rows() {
            for (c, v) in a.row_entries(r) {
                let v = if r == c {
                    v + shift
                } else {
                    v * (1.0 + shift * 0.1)
                };
                triplets.push((r, c, v));
            }
        }
        a.assemble_into(&triplets).unwrap();
        a
    }

    #[test]
    fn first_factorization_matches_plain_sparse_lu() {
        let a = laplacian_2d(9);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.21).sin()).collect();
        let b = a.matvec(&x_true);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        assert!(!sym.has_structure());
        let lu = sym.factor(&a).unwrap();
        assert!(sym.has_structure());
        let x = lu.solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
        let reference = SparseLu::new(&a).unwrap().solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &reference, 1e-30) < 1e-10);
    }

    #[test]
    fn numeric_refactorization_matches_from_scratch_factorization() {
        let a = laplacian_2d(8);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        for shift in [0.5, -0.25, 3.0] {
            let b_mat = shifted_laplacian(8, shift);
            let lu = sym.factor(&b_mat).unwrap();
            assert!(sym.has_structure(), "shift {shift} fell back to full");
            let x_true: Vec<f64> = (0..b_mat.rows()).map(|i| (i as f64 * 0.4).cos()).collect();
            let rhs = b_mat.matvec(&x_true);
            let x = lu.solve(&rhs).unwrap();
            let fresh = SparseLu::new(&b_mat).unwrap().solve(&rhs).unwrap();
            assert!(
                vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10,
                "shift {shift}"
            );
            assert!(
                vecops::relative_diff(&x, &fresh, 1e-30) < 1e-10,
                "shift {shift}"
            );
        }
    }

    #[test]
    fn entries_cancelling_in_the_first_factorization_survive_refactor() {
        // In the first matrix the update 1·(1/2)·2 cancels A[2,1] exactly, so
        // a value-pruned structure would drop that factor position; the
        // second matrix needs it. The refactorization must stay exact.
        let t1 = [
            (0usize, 0usize, 2.0),
            (0, 1, 2.0),
            (1, 0, 1.0),
            (1, 1, 1.0),
            (1, 2, 1.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
        ];
        let a = CsrMatrix::from_triplets(3, 3, &t1);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        let t2 = [
            (0usize, 0usize, 2.0),
            (0, 1, 2.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
        ];
        let b_mat = CsrMatrix::from_triplets(3, 3, &t2);
        let lu = sym.factor(&b_mat).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let rhs = b_mat.matvec(&x_true);
        let x = lu.solve(&rhs).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
    }

    #[test]
    fn complex_refactorization_round_trips() {
        let n = 40;
        let build = |phase: f64| {
            let mut t: Vec<(usize, usize, Complex64)> = Vec::new();
            for i in 0..n {
                t.push((i, i, Complex64::new(3.0, phase)));
                if i > 0 {
                    t.push((i, i - 1, Complex64::new(-1.0, 0.3 * phase)));
                }
                if i + 1 < n {
                    t.push((i, i + 1, Complex64::new(-0.7, -0.2)));
                }
                if i + 6 < n {
                    t.push((i, i + 6, Complex64::new(0.2, 0.1 * phase)));
                }
            }
            CsrMatrix::from_triplets(n, n, &t)
        };
        let a = build(1.0);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        let b_mat = build(2.5);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.15).sin()))
            .collect();
        let rhs = b_mat.matvec(&x_true);
        let x = sym.factor(&b_mat).unwrap().solve(&rhs).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-9);
    }

    #[test]
    fn stale_pivot_sequence_triggers_a_fresh_factorization() {
        // First factor a diagonally dominant matrix, then hand in values
        // that zero the previously chosen pivots; factor() must transparently
        // re-pivot and still produce an accurate factorization.
        let t1 = [
            (0usize, 0usize, 10.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 10.0),
        ];
        let a = CsrMatrix::from_triplets(2, 2, &t1);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        let t2 = [(0usize, 0usize, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)];
        let b_mat = CsrMatrix::from_triplets(2, 2, &t2);
        let lu = sym.factor(&b_mat).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_pattern_is_rejected() {
        let a = laplacian_2d(4);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        let other = laplacian_2d(5);
        assert!(matches!(
            sym.factor(&other),
            Err(SparseError::DimensionMismatch { .. })
        ));
        // Same shape, different pattern.
        let dense_row = CsrMatrix::from_triplets(
            a.rows(),
            a.cols(),
            &(0..a.cols())
                .map(|c| (0usize, c, 1.0))
                .chain((1..a.rows()).map(|r| (r, r, 1.0)))
                .collect::<Vec<_>>(),
        );
        assert!(matches!(
            sym.factor(&dense_row),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 0.0), (1, 1, 0.0)]);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        assert!(matches!(sym.factor(&a), Err(SparseError::ZeroPivot { .. })));
    }

    #[test]
    fn seeded_handle_is_numeric_only_and_bitwise_matches_the_donor() {
        let a = laplacian_2d(8);
        let mut donor = SymbolicLu::analyze(&a).unwrap();
        let donor_lu = donor.factor(&a).unwrap();
        // Seeding shares the recorded structure: the clone starts with the
        // numeric-only path available and a fresh fallback counter.
        let mut seeded = donor.seed_from();
        assert!(seeded.has_structure());
        assert_eq!(seeded.stale_fallback_count(), 0);
        assert!(seeded.matches(&a));
        // Same values through the seeded handle reproduce the donor's
        // factorization bit for bit (the refactorization replays the
        // recorded elimination order).
        let rhs: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.31).sin()).collect();
        let x_donor = donor_lu.solve(&rhs).unwrap();
        let x_seeded = seeded.factor(&a).unwrap().solve(&rhs).unwrap();
        let donor_bits: Vec<u64> = x_donor.iter().map(|v| v.to_bits()).collect();
        let seeded_bits: Vec<u64> = x_seeded.iter().map(|v| v.to_bits()).collect();
        assert_eq!(donor_bits, seeded_bits);
        // Perturbed values still solve accurately through the seed.
        let b_mat = shifted_laplacian(8, 0.75);
        let x_true: Vec<f64> = (0..b_mat.rows()).map(|i| (i as f64 * 0.12).cos()).collect();
        let b_rhs = b_mat.matvec(&x_true);
        let x = seeded.factor(&b_mat).unwrap().solve(&b_rhs).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
        assert_eq!(seeded.stale_fallback_count(), 0);
    }

    #[test]
    fn numeric_refactorization_of_identical_values_is_bitwise_stable() {
        // factor() twice on the same matrix: the second call replays the
        // recorded elimination order and must reproduce the first (full,
        // pivoting) factorization's solve bits exactly.
        let a = laplacian_2d(11);
        let rhs: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        let full = sym.factor(&a).unwrap().solve(&rhs).unwrap();
        let replay = sym.factor(&a).unwrap().solve(&rhs).unwrap();
        assert_eq!(
            full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            replay.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn stale_seed_falls_back_locally_and_counts_it() {
        let t1 = [
            (0usize, 0usize, 10.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 10.0),
        ];
        let a = CsrMatrix::from_triplets(2, 2, &t1);
        let mut donor = SymbolicLu::analyze(&a).unwrap();
        donor.factor(&a).unwrap();
        let mut seeded = donor.seed_from();
        // Values that zero the donor's pivots: the seeded handle re-pivots
        // locally (counted), the donor's structure is untouched.
        let t2 = [(0usize, 0usize, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)];
        let b_mat = CsrMatrix::from_triplets(2, 2, &t2);
        let x = seeded.factor(&b_mat).unwrap().solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
        assert_eq!(seeded.stale_fallback_count(), 1);
        assert_eq!(donor.stale_fallback_count(), 0);
        // The donor still factors its own matrix numerically afterwards.
        donor.factor(&a).unwrap();
        assert_eq!(donor.stale_fallback_count(), 0);
    }

    #[test]
    fn rcm_ordering_is_a_permutation() {
        let a = laplacian_2d(6);
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut sorted = sym.ordering().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
        assert_eq!(sym.dim(), a.rows());
    }
}
