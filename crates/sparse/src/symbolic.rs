//! Symbolic/numeric split of the direct sparse LU.
//!
//! [`SparseLu::new`] redoes the whole pipeline — fill-reducing ordering is
//! absent, the reachability DFS and the pivot search run per column — on
//! every call. Workloads that factorize many matrices with one sparsity
//! pattern (Newton iterations, frequency sweeps, perturbed samples) only
//! change the *values*, so [`SymbolicLu`] caches everything that depends on
//! the pattern alone:
//!
//! * the better of two fill-reducing orderings — reverse Cuthill–McKee and
//!   approximate minimum degree — selected per pattern by exact predicted
//!   factor size ([`crate::ordering::predicted_fill`]) and recorded in the
//!   shared analysis so every seeded clone replays the same choice,
//! * after the first numeric factorization: the pivot sequence, the full
//!   structural patterns of `L` and `U`, the supernode partition of the
//!   factor columns and a level schedule of the column dependency DAG.
//!
//! Subsequent [`SymbolicLu::factor`] calls then pay only the numeric phase,
//! and that phase is **supernode-blocked**: runs of consecutive pivot
//! columns with identical sub-diagonal structure are eliminated through the
//! fused panel kernels of [`vaem_numeric::panel`] instead of one scalar
//! column update at a time. Per scatter target the fused kernel performs
//! the same floating-point operations in the same order as the scalar
//! elimination, so blocking changes throughput, never bits.
//!
//! The numeric phase can also run **in parallel across the elimination
//! tree**: columns are scheduled level by level (a column's dependencies —
//! the pivots appearing in its `U` column — always sit in strictly earlier
//! levels), with the fan-out going through [`vaem_parallel::par_for_with`]
//! so each worker owns a private dense scratch column. Every column's
//! factor values are a pure function of the matrix values and of its
//! dependencies' finished columns, so the factors are **bit-identical at
//! any thread count** (including the serial path, which just walks columns
//! in ascending order — itself a valid topological order).
//!
//! A cached pivot that becomes numerically unstable for the new values
//! triggers a transparent fresh pivoting factorization (which also
//! refreshes the cached structure); the number of such fallbacks is counted
//! and surfaced through [`SymbolicLu::stale_fallback_count`].
//!
//! Variation-aware sweeps factorize many *perturbations of one nominal
//! matrix* on worker threads, so the pattern-derived state (ordering, column
//! map) and the recorded structure are both behind [`Arc`]s:
//! [`SymbolicLu::seed_from`] hands each worker its own handle onto the
//! donor's analysis and pivot structure for the cost of two reference-count
//! bumps, and the worker's first `factor` call is already numeric-only. The
//! numeric refactorization eliminates in ascending pivot order — the exact
//! order the recording factorization used — so for the *same* values it
//! reproduces the donor's factors bit for bit, which is what keeps a seeded
//! sample sweep bit-identical to an unseeded one whenever the perturbed
//! pivots stay on the nominal sequence.

use crate::ordering::{self, OrderingKind};
use crate::{CsrMatrix, SparseError, SparseLu, SparsityPattern};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use vaem_numeric::{panel, Scalar};

/// Relative pivot tolerance of the numeric-only refactorization: when the
/// cached pivot falls below this fraction of the magnitude of its column the
/// cached pivot sequence is considered stale and the factorization restarts
/// with fresh partial pivoting.
const REFACTOR_PIVOT_TOL: f64 = 1e-10;

/// Minimum number of columns in one elimination level before the parallel
/// numeric phase fans the level out to worker threads; narrower levels run
/// on the calling thread (spawning would cost more than it saves).
const PAR_MIN_LEVEL_COLS: usize = 16;

/// The reusable symbolic phase of the sparse LU for one sparsity pattern.
///
/// # Example
/// ```
/// use vaem_sparse::{CsrMatrix, SparsityPattern, SymbolicLu};
/// let a = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 2.0), (0, 1, 1.0),
///     (1, 0, -1.0), (1, 1, 3.0), (1, 2, 0.5),
///     (2, 1, 1.0), (2, 2, 4.0),
/// ]);
/// let mut symbolic = SymbolicLu::new(&SparsityPattern::of(&a))?;
/// let lu = symbolic.factor(&a)?; // full pivoting factorization
/// let x = lu.solve(&[1.0, 2.0, 3.0])?;
/// // Same pattern, new values: only the numeric phase runs.
/// let b = CsrMatrix::from_triplets(3, 3, &[
///     (0, 0, 4.0), (0, 1, -1.0),
///     (1, 0, 2.0), (1, 1, 5.0), (1, 2, 1.5),
///     (2, 1, -1.0), (2, 2, 2.0),
/// ]);
/// let lu_b = symbolic.factor(&b)?;
/// let y = lu_b.solve(&[1.0, 2.0, 3.0])?;
/// assert!(a.residual(&x, &[1.0, 2.0, 3.0]).iter().all(|r| r.abs() < 1e-10));
/// assert!(b.residual(&y, &[1.0, 2.0, 3.0]).iter().all(|r| r.abs() < 1e-10));
/// # Ok::<(), vaem_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    /// Pattern-derived analysis, shared (read-only) by every seeded clone.
    core: Arc<SymbolicCore>,
    /// Pivot sequence + factor patterns recorded by the first numeric
    /// factorization; `Arc`-shared so seeding a worker costs a refcount
    /// bump, replaced wholesale when a fallback re-pivots.
    structure: Option<Arc<LuStructure>>,
    /// How many times a cached pivot sequence went numerically stale and
    /// `factor` fell back to a fresh pivoting factorization.
    stale_fallbacks: u64,
}

/// The immutable pattern-only half of the analysis.
#[derive(Debug)]
struct SymbolicCore {
    n: usize,
    pattern: SparsityPattern,
    /// Which fill-reducing ordering won the per-pattern selection; recorded
    /// here so seeded clones replay the identical choice.
    kind: OrderingKind,
    /// The selected fill-reducing ordering, `perm[new] = old`.
    perm: Vec<usize>,
    /// Column access of the permuted matrix `Ap = A(p, p)`: per permuted
    /// column, the permuted row indices and the positions of the values in
    /// the CSR value array of the *unpermuted* matrix. Pattern-only, so it
    /// is valid for every matrix sharing the pattern.
    col_ptr: Vec<usize>,
    col_rows: Vec<usize>,
    col_src: Vec<usize>,
}

/// Structural output of one pivoting factorization, all row indices in pivot
/// coordinates of the permuted matrix.
#[derive(Debug, Clone)]
struct LuStructure {
    /// `prow[k]` = permuted row chosen as the k-th pivot.
    prow: Vec<usize>,
    /// `pinv[permuted row]` = pivot index.
    pinv: Vec<usize>,
    l_colptr: Vec<usize>,
    /// Strictly-lower rows per column, sorted ascending.
    l_rows: Vec<usize>,
    u_colptr: Vec<usize>,
    /// Upper rows per column, sorted ascending; the diagonal (`== column`)
    /// is therefore the last entry, and the off-diagonal entries walk the
    /// column's dependencies in ascending pivot order — which is exactly
    /// the elimination order both the recording factorization and the
    /// numeric refactorization use (ascending pivot index is always a
    /// valid topological order: a row of `L(:, k)` that later becomes
    /// pivotal gets a pivot index above `k`).
    u_rows: Vec<usize>,
    /// `sn_start[j]` = first column of the supernode containing column `j`.
    /// Supernodes are maximal runs of consecutive columns where each column
    /// `j` satisfies `L(:, j-1) = {j} ∪ L(:, j)` — identical sub-diagonal
    /// structure — so a run of members inside one supernode updates a
    /// target column through one fused dense panel.
    sn_start: Vec<usize>,
    /// Level schedule of the column dependency DAG: `level_cols[level_ptr
    /// [l]..level_ptr[l + 1]]` lists (ascending) the columns whose
    /// dependencies all sit in levels `< l`. Columns of one level are
    /// independent and can be factorized concurrently.
    level_ptr: Vec<usize>,
    level_cols: Vec<usize>,
}

/// A raw factor-value pointer that may cross the scoped-thread boundary of
/// the parallel numeric phase.
///
/// Safety contract (upheld by [`SymbolicLu::refactor_numeric`]): workers
/// write only the disjoint `l_vals`/`u_vals` ranges of the columns they
/// claimed, read only ranges of columns finished in earlier levels (the
/// per-level join provides the happens-before edge), and the parent does
/// not touch the buffers until every worker has joined.
struct ValsPtr<T>(*mut T);
// SAFETY: the pointee buffers (`l_vals`/`u_vals`) outlive the scoped-thread
// region, and the contract above guarantees every write targets a column
// range owned by exactly one worker.
unsafe impl<T: Send> Send for ValsPtr<T> {}
// SAFETY: shared references only hand out the raw pointer; all dereferences
// go through `refactor_column`, which touches disjoint column ranges per
// worker and reads only columns sealed by an earlier level's join.
unsafe impl<T: Send> Sync for ValsPtr<T> {}

impl SymbolicLu {
    /// Analyzes a sparsity pattern: computes both candidate fill-reducing
    /// orderings (RCM and AMD), keeps whichever predicts the smaller factor
    /// ([`crate::ordering::predicted_fill`], ties favour RCM), and builds
    /// the permuted column-access map.
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionMismatch`] for a non-square pattern.
    pub fn new(pattern: &SparsityPattern) -> Result<Self, SparseError> {
        Self::with_ordering(pattern, None)
    }

    /// [`SymbolicLu::new`] with the ordering forced instead of selected —
    /// for tests and benchmarks that pin one side of the comparison.
    ///
    /// # Errors
    /// Same conditions as [`SymbolicLu::new`].
    pub fn new_with_ordering(
        pattern: &SparsityPattern,
        kind: OrderingKind,
    ) -> Result<Self, SparseError> {
        Self::with_ordering(pattern, Some(kind))
    }

    // vaem-lint: cold symbolic skeleton construction, once per sparsity pattern
    fn with_ordering(
        pattern: &SparsityPattern,
        forced: Option<OrderingKind>,
    ) -> Result<Self, SparseError> {
        let n = pattern.rows();
        if pattern.cols() != n {
            return Err(SparseError::DimensionMismatch {
                detail: format!(
                    "symbolic LU requires a square pattern, got {}x{}",
                    n,
                    pattern.cols()
                ),
            });
        }
        let zeros = pattern.zeros::<f64>();
        let (kind, perm) = match forced {
            Some(OrderingKind::Rcm) => (OrderingKind::Rcm, ordering::rcm(&zeros)),
            Some(OrderingKind::Amd) => (OrderingKind::Amd, ordering::amd(&zeros)),
            None => {
                let rcm_perm = ordering::rcm(&zeros);
                let amd_perm = ordering::amd(&zeros);
                let rcm_fill = ordering::predicted_fill(&zeros, &rcm_perm);
                let amd_fill = ordering::predicted_fill(&zeros, &amd_perm);
                if amd_fill < rcm_fill {
                    (OrderingKind::Amd, amd_perm)
                } else {
                    (OrderingKind::Rcm, rcm_perm)
                }
            }
        };
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        // Bucket the CSR entries by permuted column.
        let row_ptr = pattern.row_ptr();
        let col_idx = pattern.col_idx();
        let mut col_ptr = vec![0usize; n + 1];
        for &c in col_idx {
            col_ptr[inv[c] + 1] += 1;
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let mut next = col_ptr.clone();
        let mut col_rows = vec![0usize; col_idx.len()];
        let mut col_src = vec![0usize; col_idx.len()];
        for r in 0..n {
            for k in row_ptr[r]..row_ptr[r + 1] {
                let pc = inv[col_idx[k]];
                let dst = next[pc];
                col_rows[dst] = inv[r];
                col_src[dst] = k;
                next[pc] += 1;
            }
        }
        Ok(Self {
            core: Arc::new(SymbolicCore {
                n,
                pattern: pattern.clone(),
                kind,
                perm,
                col_ptr,
                col_rows,
                col_src,
            }),
            structure: None,
            stale_fallbacks: 0,
        })
    }

    /// Convenience: analyzes the pattern of an assembled matrix.
    ///
    /// # Errors
    /// Same conditions as [`SymbolicLu::new`].
    pub fn analyze<T: Scalar>(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        Self::new(&SparsityPattern::of(a))
    }

    /// A cheap independent handle onto this analysis: the new `SymbolicLu`
    /// shares the (immutable) ordering, column map and — when already
    /// recorded — the pivot structure through `Arc`s, so the clone costs
    /// reference-count bumps instead of re-running the ordering selection
    /// and the first pivoting factorization.
    ///
    /// This is the cross-sample reuse path of the variation-aware sweeps:
    /// the nominal sample donates its symbolic phase and every perturbed
    /// sample (on its own worker thread) starts numeric-only. A seed whose
    /// pivots go stale for some perturbation re-pivots locally, replacing
    /// only its own structure handle; the donor and the other workers are
    /// unaffected. The stale-fallback counter of the new handle starts at
    /// zero.
    // vaem-lint: cold warm-start seed cloning, once per sparsity pattern
    pub fn seed_from(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
            structure: self.structure.clone(),
            stale_fallbacks: 0,
        }
    }

    /// Dimension of the analyzed pattern.
    pub fn dim(&self) -> usize {
        self.core.n
    }

    /// The fill-reducing ordering (`perm[new] = old`).
    pub fn ordering(&self) -> &[usize] {
        &self.core.perm
    }

    /// Which fill-reducing ordering the per-pattern selection kept.
    pub fn ordering_kind(&self) -> OrderingKind {
        self.core.kind
    }

    /// `true` once a factorization has recorded the pivot sequence, i.e.
    /// subsequent [`SymbolicLu::factor`] calls take the numeric-only path.
    pub fn has_structure(&self) -> bool {
        self.structure.is_some()
    }

    /// `true` when `a` has exactly the analyzed sparsity pattern, i.e.
    /// [`SymbolicLu::factor`] would accept it.
    pub fn matches<T: Scalar>(&self, a: &CsrMatrix<T>) -> bool {
        self.core.pattern.matches(a)
    }

    /// How many times a cached pivot sequence went numerically stale for
    /// the handed-in values and [`SymbolicLu::factor`] fell back to a fresh
    /// pivoting factorization. Seeded handles start at zero, so for a
    /// per-sample seed this counts exactly the samples' re-pivots.
    pub fn stale_fallback_count(&self) -> u64 {
        self.stale_fallbacks
    }

    /// Factorizes a matrix with the analyzed pattern.
    ///
    /// The first call runs the full pivoting factorization and records the
    /// pivot sequence and factor structure; later calls redo only the
    /// (supernode-blocked) numeric phase against that structure, restarting
    /// with fresh pivoting when a cached pivot becomes numerically unusable
    /// for the new values. The numeric phase fans out across elimination
    /// levels on up to [`vaem_parallel::thread_count`] worker threads; the
    /// factors are bit-identical at any thread count.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when `a` does not have exactly
    ///   the analyzed pattern.
    /// * [`SparseError::ZeroPivot`] when the matrix is (numerically)
    ///   singular even under fresh pivoting.
    pub fn factor<T: Scalar>(&mut self, a: &CsrMatrix<T>) -> Result<SparseLu<T>, SparseError> {
        self.factor_with_threads(a, vaem_parallel::thread_count())
    }

    /// [`SymbolicLu::factor`] with an explicit worker-thread count for the
    /// parallel numeric phase (mainly for tests and callers that manage
    /// their own thread budget; `threads <= 1` runs serially). The factor
    /// bits do not depend on `threads`.
    ///
    /// # Errors
    /// Same conditions as [`SymbolicLu::factor`].
    pub fn factor_with_threads<T: Scalar>(
        &mut self,
        a: &CsrMatrix<T>,
        threads: usize,
    ) -> Result<SparseLu<T>, SparseError> {
        if !self.core.pattern.matches(a) {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) pattern-mismatch error message, failure path only
                detail: format!(
                    "matrix ({}x{}, {} nnz) does not share the analyzed sparsity pattern \
                     ({}x{}, {} nnz)",
                    a.rows(),
                    a.cols(),
                    a.nnz(),
                    self.core.pattern.rows(),
                    self.core.pattern.cols(),
                    self.core.pattern.nnz()
                ),
            });
        }
        // vaem-lint: allow(H2) Arc refcount bump sharing the symbolic structure with the refactor
        if let Some(structure) = self.structure.clone() {
            match self.refactor_numeric(a, &structure, threads) {
                Ok(lu) => return Ok(lu),
                // Stale pivot sequence — fall through to a fresh pivoting
                // factorization, which also refreshes (this handle's)
                // structure; shared donors keep theirs.
                Err(_) => {
                    self.structure = None;
                    self.stale_fallbacks += 1;
                }
            }
        }
        self.factor_full(a)
    }

    /// Full left-looking Gilbert–Peierls factorization with partial pivoting
    /// on the permuted matrix; records the (unpruned) structural reach of
    /// every column so the numeric refactorization stays exact even when
    /// entries that cancelled here become non-zero later.
    ///
    /// The numeric elimination runs in ascending pivot order (a valid
    /// topological order of the column dependencies) and applies every
    /// update unconditionally — the same operation sequence the blocked
    /// refactorization replays, so a replay with identical values
    /// reproduces identical factor bits.
    // vaem-lint: cold symbolic analysis + first factorization, once per pattern; the per-iteration path is refactor_numeric
    fn factor_full<T: Scalar>(&mut self, a: &CsrMatrix<T>) -> Result<SparseLu<T>, SparseError> {
        // Own a handle so the pattern data stays readable while
        // `self.structure` is replaced at the end.
        let core = Arc::clone(&self.core);
        let core = &*core;
        let n = core.n;
        let vals = a.values();

        let mut pinv = vec![usize::MAX; n];
        let mut prow = vec![usize::MAX; n];
        // L columns in *permuted* row indices during factorization.
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        // U columns in pivot coordinates.
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();

        let mut x = vec![T::zero(); n];
        let mut mark = vec![usize::MAX; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut pivotal: Vec<(usize, usize)> = Vec::new();
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            // ---- symbolic: reach of Ap[:, j] through the L columns ----
            topo.clear();
            for t in core.col_ptr[j]..core.col_ptr[j + 1] {
                let row = core.col_rows[t];
                if mark[row] == j {
                    continue;
                }
                dfs_stack.push((row, 0));
                mark[row] = j;
                while let Some(&mut (node, ref mut child_pos)) = dfs_stack.last_mut() {
                    let k = pinv[node];
                    let children: &[usize] = if k == usize::MAX {
                        &[]
                    } else {
                        &l_rows[l_colptr[k]..l_colptr[k + 1]]
                    };
                    if *child_pos < children.len() {
                        let child = children[*child_pos];
                        *child_pos += 1;
                        if mark[child] != j {
                            mark[child] = j;
                            dfs_stack.push((child, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }

            // ---- numeric: sparse triangular solve, eliminating in
            // ascending pivot order ----
            for &r in &topo {
                x[r] = T::zero();
            }
            for t in core.col_ptr[j]..core.col_ptr[j + 1] {
                x[core.col_rows[t]] = vals[core.col_src[t]];
            }
            pivotal.clear();
            pivotal.extend(topo.iter().filter_map(|&r| {
                let k = pinv[r];
                (k != usize::MAX).then_some((k, r))
            }));
            pivotal.sort_unstable_by_key(|&(k, _)| k);
            for &(k, r) in &pivotal {
                let xr = x[r];
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    x[l_rows[idx]] -= xr * l_vals[idx];
                }
            }

            // ---- pivot selection among non-pivotal rows ----
            let mut piv_row = usize::MAX;
            let mut piv_mag = 0.0_f64;
            for &r in &topo {
                if pinv[r] == usize::MAX {
                    let m = x[r].modulus();
                    if m > piv_mag {
                        piv_mag = m;
                        piv_row = r;
                    }
                }
            }
            if piv_row == usize::MAX || piv_mag == 0.0 {
                return Err(SparseError::ZeroPivot { index: j });
            }
            let piv_val = x[piv_row];

            // ---- store U[:, j] and L[:, j]; keep the whole reach, even
            // numerically zero entries, so the cached structure stays a
            // superset for any values on this pattern ----
            for &(k, r) in &pivotal {
                u_rows.push(k);
                u_vals.push(x[r]);
            }
            u_rows.push(j);
            u_vals.push(piv_val);
            u_colptr.push(u_rows.len());

            for &r in &topo {
                if pinv[r] == usize::MAX && r != piv_row {
                    l_rows.push(r);
                    l_vals.push(x[r] / piv_val);
                }
            }
            l_colptr.push(l_rows.len());

            pinv[piv_row] = j;
            prow[j] = piv_row;
        }

        // Remap L rows to pivot coordinates, then sort every factor column
        // ascending (the U diagonal lands last automatically) so the numeric
        // refactorization can zero/scatter in plain index order.
        for r in &mut l_rows {
            *r = pinv[*r];
        }
        for j in 0..n {
            sort_column(&mut l_rows, &mut l_vals, l_colptr[j], l_colptr[j + 1]);
            sort_column(&mut u_rows, &mut u_vals, u_colptr[j], u_colptr[j + 1]);
        }

        // ---- supernode partition: column j extends the supernode of
        // j−1 iff L(:, j−1) = {j} ∪ L(:, j) ----
        let mut sn_start = vec![0usize; n];
        for j in 1..n {
            let (plo, phi, chi) = (l_colptr[j - 1], l_colptr[j], l_colptr[j + 1]);
            let joins = phi > plo
                && phi - plo == chi - phi + 1
                && l_rows[plo] == j
                && l_rows[plo + 1..phi] == l_rows[phi..chi];
            sn_start[j] = if joins { sn_start[j - 1] } else { j };
        }

        // ---- level schedule: a column's dependencies are the pivots of
        // its off-diagonal U entries, so level(j) = 1 + max level over
        // them (0 for columns with no dependencies) ----
        let mut level = vec![0usize; n];
        let mut nlev = 0usize;
        for j in 0..n {
            let mut lv = 0usize;
            for idx in u_colptr[j]..u_colptr[j + 1] - 1 {
                lv = lv.max(level[u_rows[idx]] + 1);
            }
            level[j] = lv;
            nlev = nlev.max(lv + 1);
        }
        let mut level_ptr = vec![0usize; nlev + 1];
        for &lv in &level {
            level_ptr[lv + 1] += 1;
        }
        for l in 0..nlev {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut next = level_ptr.clone();
        let mut level_cols = vec![0usize; n];
        for j in 0..n {
            level_cols[next[level[j]]] = j;
            next[level[j]] += 1;
        }

        self.structure = Some(Arc::new(LuStructure {
            prow: prow.clone(),
            pinv,
            l_colptr: l_colptr.clone(),
            l_rows: l_rows.clone(),
            u_colptr: u_colptr.clone(),
            u_rows: u_rows.clone(),
            sn_start,
            level_ptr,
            level_cols,
        }));

        let prow_orig: Vec<usize> = prow.iter().map(|&r| core.perm[r]).collect();
        Ok(SparseLu::from_parts(
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            prow_orig,
            Some(core.perm.clone()),
        ))
    }

    /// Numeric-only refactorization against a cached pivot sequence and
    /// factor structure: per column, scatter, eliminate supernode runs in
    /// ascending pivot order through the fused panel kernels, divide — no
    /// reachability DFS, no sorting, no pivot search. With `threads > 1`
    /// the columns fan out level by level over worker threads; every
    /// column is a pure function of the matrix values and its finished
    /// dependencies, so the factor bits are independent of the thread
    /// count and — for identical values — identical to the recording
    /// factorization's.
    fn refactor_numeric<T: Scalar>(
        &self,
        a: &CsrMatrix<T>,
        st: &LuStructure,
        threads: usize,
    ) -> Result<SparseLu<T>, SparseError> {
        let core = &*self.core;
        let n = core.n;
        let vals = a.values();
        // vaem-lint: allow(H1) factor value buffers sized to the symbolic pattern, once per refactor
        let mut l_vals = vec![T::zero(); st.l_rows.len()];
        // vaem-lint: allow(H1) factor value buffers sized to the symbolic pattern, once per refactor
        let mut u_vals = vec![T::zero(); st.u_rows.len()];

        if threads <= 1 || n <= 1 {
            // Serial path: ascending column order is a valid topological
            // order of the dependency DAG.
            // vaem-lint: allow(H1) dense scatter column, once per refactor (serial path)
            let mut x = vec![T::zero(); n];
            let (lv, uv) = (l_vals.as_mut_ptr(), u_vals.as_mut_ptr());
            for j in 0..n {
                // SAFETY: single-threaded — this loop is the only accessor
                // of `l_vals`/`u_vals`, and dependencies of column j are
                // columns < j, already finished.
                unsafe { refactor_column(core, st, vals, &mut x, lv, uv, j) }
                    .map_err(|index| SparseError::ZeroPivot { index })?;
            }
        } else {
            // Level-parallel path. The first failing column (smallest
            // index) is reported; any later garbage it propagates only
            // reaches higher-indexed columns, so the minimum is the same
            // failure the serial walk would hit first.
            let failed = AtomicUsize::new(usize::MAX);
            let lptr = ValsPtr(l_vals.as_mut_ptr());
            let uptr = ValsPtr(u_vals.as_mut_ptr());
            // Capture the wrappers by reference — disjoint field captures
            // of the raw pointers would sidestep their Send/Sync impls.
            let (lptr, uptr, failed_ref) = (&lptr, &uptr, &failed);
            // vaem-lint: allow(H1) dense scatter column, once per refactor
            let mut serial_x = vec![T::zero(); n];
            for lev in 0..st.level_ptr.len().saturating_sub(1) {
                let cols = &st.level_cols[st.level_ptr[lev]..st.level_ptr[lev + 1]];
                if cols.len() < PAR_MIN_LEVEL_COLS.max(threads) {
                    for &j in cols {
                        if failed_ref.load(AtomicOrdering::Relaxed) != usize::MAX {
                            break;
                        }
                        // SAFETY: no workers are live (par_for_with joins
                        // before returning), this thread has exclusive
                        // access, and the column's dependencies finished in
                        // earlier levels.
                        if let Err(index) = unsafe {
                            refactor_column(core, st, vals, &mut serial_x, lptr.0, uptr.0, j)
                        } {
                            failed_ref.fetch_min(index, AtomicOrdering::Relaxed);
                        }
                    }
                } else {
                    let chunk = (cols.len() / (threads * 4)).max(1);
                    vaem_parallel::par_for_with(
                        threads,
                        chunk,
                        cols.len(),
                        // vaem-lint: allow(H1) per-thread scratch factory: one dense column per worker, the pattern H1 asks for
                        || vec![T::zero(); n],
                        |x, i| {
                            if failed_ref.load(AtomicOrdering::Relaxed) != usize::MAX {
                                return;
                            }
                            let j = cols[i];
                            let (lp, up) = (lptr.0, uptr.0);
                            // SAFETY: each column is claimed by exactly one
                            // worker and writes only its own (disjoint)
                            // `l_vals`/`u_vals` ranges; reads touch columns
                            // of earlier levels, finished before this
                            // level's fan-out began (the per-level join is
                            // the happens-before edge).
                            let outcome = unsafe { refactor_column(core, st, vals, x, lp, up, j) };
                            if let Err(index) = outcome {
                                failed_ref.fetch_min(index, AtomicOrdering::Relaxed);
                            }
                        },
                    );
                }
            }
            let first_failed = failed.load(AtomicOrdering::Relaxed);
            if first_failed != usize::MAX {
                return Err(SparseError::ZeroPivot {
                    index: first_failed,
                });
            }
        }

        // vaem-lint: allow(H1) row-permutation materialization, once per refactor
        let prow_orig: Vec<usize> = st.prow.iter().map(|&r| core.perm[r]).collect();
        Ok(SparseLu::from_parts(
            n,
            // vaem-lint: allow(H2) shares the symbolic skeleton into the returned factor, once per refactor
            st.l_colptr.clone(),
            // vaem-lint: allow(H2) shares the symbolic skeleton into the returned factor, once per refactor
            st.l_rows.clone(),
            l_vals,
            // vaem-lint: allow(H2) shares the symbolic skeleton into the returned factor, once per refactor
            st.u_colptr.clone(),
            // vaem-lint: allow(H2) shares the symbolic skeleton into the returned factor, once per refactor
            st.u_rows.clone(),
            u_vals,
            prow_orig,
            // vaem-lint: allow(H2) shares the symbolic skeleton into the returned factor, once per refactor
            Some(core.perm.clone()),
        ))
    }
}

/// Factorizes one column of the numeric refactorization: zero the column's
/// pattern in the scratch `x`, scatter `Ap[:, j]`, eliminate the
/// dependencies in ascending pivot order — supernode runs through the fused
/// panel kernels, their intra-run updates scalar — then check the pivot and
/// divide `L`.
///
/// Per scatter target the fused tail pass subtracts the run members'
/// products one at a time in member order, i.e. the exact floating-point
/// sequence of a scalar member-by-member elimination, so the blocked column
/// is bit-identical to the scalar one (see [`vaem_numeric::panel`]).
///
/// Returns `Err(j)` when the cached pivot is numerically unusable.
///
/// # Safety
/// `lv`/`uv` must point at the factor value buffers (lengths `st.l_rows
/// .len()`/`st.u_rows.len()`). The caller must guarantee exclusive access
/// to column `j`'s value ranges and that every dependency column (the
/// off-diagonal pivots of `U[:, j]`) has been fully written and is not
/// written concurrently.
unsafe fn refactor_column<T: Scalar>(
    core: &SymbolicCore,
    st: &LuStructure,
    avals: &[T],
    x: &mut [T],
    lv: *mut T,
    uv: *mut T,
    j: usize,
) -> Result<(), usize> {
    // The column pattern is exactly U[:, j] ∪ L[:, j] (the diagonal is the
    // last U entry); zero it, then scatter Ap[:, j]. Elimination only ever
    // writes inside the pattern (the recorded reach is closed), so stale
    // scratch entries outside it are never read.
    for idx in st.u_colptr[j]..st.u_colptr[j + 1] {
        x[st.u_rows[idx]] = T::zero();
    }
    for idx in st.l_colptr[j]..st.l_colptr[j + 1] {
        x[st.l_rows[idx]] = T::zero();
    }
    for t in core.col_ptr[j]..core.col_ptr[j + 1] {
        x[st.pinv[core.col_rows[t]]] = avals[core.col_src[t]];
    }

    // Eliminate the off-diagonal U entries (sorted ascending = elimination
    // order), grouped into maximal runs of consecutive columns within one
    // supernode.
    let off_lo = st.u_colptr[j];
    let off_hi = st.u_colptr[j + 1] - 1; // diagonal sits at off_hi
    let mut idx = off_lo;
    while idx < off_hi {
        let k0 = st.u_rows[idx];
        let mut run = 1usize;
        while idx + run < off_hi
            && st.u_rows[idx + run] == k0 + run
            && st.sn_start[k0 + run] == st.sn_start[k0]
        {
            run += 1;
        }
        let k1 = k0 + run - 1;
        // Inside the supernode, L(:, m) = {m+1, …, k1} ∪ L(:, k1): the
        // first (k1 − m) entries are the intra-run rows, the remaining
        // `tail_len` entries align element-for-element with L(:, k1).
        let tail_len = st.l_colptr[k1 + 1] - st.l_colptr[k1];
        for (off, m) in (k0..=k1).enumerate() {
            let xm = x[m];
            // SAFETY: idx + off indexes U[:, j], owned by this call.
            unsafe { *uv.add(idx + off) = xm };
            let lo = st.l_colptr[m];
            for li in lo..lo + (k1 - m) {
                // SAFETY: dependency column m finished earlier (caller
                // contract).
                let lval = unsafe { *lv.add(li) };
                x[st.l_rows[li]] -= xm * lval;
            }
        }
        if tail_len > 0 {
            let rows = &st.l_rows[st.l_colptr[k1]..st.l_colptr[k1 + 1]];
            let mut m = k0;
            while m <= k1 {
                let w = (k1 - m + 1).min(4);
                let mut coeffs = [T::zero(); 4];
                let mut cols: [&[T]; 4] = [&[]; 4];
                for i in 0..w {
                    // x[m + i] still holds the recorded U value: only
                    // intra-run updates touch it, and they all happened in
                    // the member loop above.
                    coeffs[i] = x[m + i];
                    let lo = st.l_colptr[m + i + 1] - tail_len;
                    // SAFETY: the dependency column's tail values are
                    // finished and not written concurrently (caller
                    // contract), so a shared slice over them is valid for
                    // the duration of the kernel call.
                    cols[i] = unsafe { std::slice::from_raw_parts(lv.add(lo), tail_len) };
                }
                panel::scatter_fused_sub(x, rows, &coeffs[..w], &cols[..w]);
                m += w;
            }
        }
        idx += run;
    }

    // Pivot check and division of L.
    let piv = x[j];
    let (l_lo, l_hi) = (st.l_colptr[j], st.l_colptr[j + 1]);
    let mut colmax = piv.modulus();
    for idx in l_lo..l_hi {
        colmax = colmax.max(x[st.l_rows[idx]].modulus());
    }
    if piv.modulus() == 0.0 || piv.modulus() < REFACTOR_PIVOT_TOL * colmax {
        return Err(j);
    }
    // SAFETY: the diagonal U slot and L[:, j] belong to column j.
    unsafe { *uv.add(st.u_colptr[j + 1] - 1) = piv };
    for idx in l_lo..l_hi {
        // SAFETY: every slot in L[:, j]'s value range belongs to column j,
        // which this call owns exclusively.
        unsafe { *lv.add(idx) = x[st.l_rows[idx]] / piv };
    }
    Ok(())
}

/// Sorts the `(row, value)` pairs of one factor column by row index.
fn sort_column<T: Scalar>(rows: &mut [usize], vals: &mut [T], lo: usize, hi: usize) {
    if hi - lo < 2 {
        return;
    }
    let mut pairs: Vec<(usize, T)> = (lo..hi).map(|i| (rows[i], vals[i])).collect();
    pairs.sort_unstable_by_key(|&(r, _)| r);
    for (off, (r, v)) in pairs.into_iter().enumerate() {
        rows[lo + off] = r;
        vals[lo + off] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::{vecops, Complex64};

    fn laplacian_2d(nx: usize) -> CsrMatrix<f64> {
        let n = nx * nx;
        let idx = |i: usize, j: usize| i * nx + j;
        let mut t = Vec::new();
        for i in 0..nx {
            for j in 0..nx {
                t.push((idx(i, j), idx(i, j), 4.0));
                if i > 0 {
                    t.push((idx(i, j), idx(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    t.push((idx(i, j), idx(i + 1, j), -1.0));
                }
                if j > 0 {
                    t.push((idx(i, j), idx(i, j - 1), -1.0));
                }
                if j + 1 < nx {
                    t.push((idx(i, j), idx(i, j + 1), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// Rebuilds the laplacian with shifted values on the identical pattern.
    fn shifted_laplacian(nx: usize, shift: f64) -> CsrMatrix<f64> {
        let mut a = laplacian_2d(nx);
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for r in 0..a.rows() {
            for (c, v) in a.row_entries(r) {
                let v = if r == c {
                    v + shift
                } else {
                    v * (1.0 + shift * 0.1)
                };
                triplets.push((r, c, v));
            }
        }
        a.assemble_into(&triplets).unwrap();
        a
    }

    #[test]
    fn first_factorization_matches_plain_sparse_lu() {
        let a = laplacian_2d(9);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.21).sin()).collect();
        let b = a.matvec(&x_true);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        assert!(!sym.has_structure());
        let lu = sym.factor(&a).unwrap();
        assert!(sym.has_structure());
        let x = lu.solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
        let reference = SparseLu::new(&a).unwrap().solve(&b).unwrap();
        assert!(vecops::relative_diff(&x, &reference, 1e-30) < 1e-10);
    }

    #[test]
    fn numeric_refactorization_matches_from_scratch_factorization() {
        let a = laplacian_2d(8);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        for shift in [0.5, -0.25, 3.0] {
            let b_mat = shifted_laplacian(8, shift);
            let lu = sym.factor(&b_mat).unwrap();
            assert!(sym.has_structure(), "shift {shift} fell back to full");
            let x_true: Vec<f64> = (0..b_mat.rows()).map(|i| (i as f64 * 0.4).cos()).collect();
            let rhs = b_mat.matvec(&x_true);
            let x = lu.solve(&rhs).unwrap();
            let fresh = SparseLu::new(&b_mat).unwrap().solve(&rhs).unwrap();
            assert!(
                vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10,
                "shift {shift}"
            );
            assert!(
                vecops::relative_diff(&x, &fresh, 1e-30) < 1e-10,
                "shift {shift}"
            );
        }
    }

    #[test]
    fn entries_cancelling_in_the_first_factorization_survive_refactor() {
        // In the first matrix the update 1·(1/2)·2 cancels A[2,1] exactly, so
        // a value-pruned structure would drop that factor position; the
        // second matrix needs it. The refactorization must stay exact.
        let t1 = [
            (0usize, 0usize, 2.0),
            (0, 1, 2.0),
            (1, 0, 1.0),
            (1, 1, 1.0),
            (1, 2, 1.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
        ];
        let a = CsrMatrix::from_triplets(3, 3, &t1);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        let t2 = [
            (0usize, 0usize, 2.0),
            (0, 1, 2.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 4.0),
            (2, 2, 5.0),
        ];
        let b_mat = CsrMatrix::from_triplets(3, 3, &t2);
        let lu = sym.factor(&b_mat).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let rhs = b_mat.matvec(&x_true);
        let x = lu.solve(&rhs).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
    }

    #[test]
    fn complex_refactorization_round_trips() {
        let n = 40;
        let build = |phase: f64| {
            let mut t: Vec<(usize, usize, Complex64)> = Vec::new();
            for i in 0..n {
                t.push((i, i, Complex64::new(3.0, phase)));
                if i > 0 {
                    t.push((i, i - 1, Complex64::new(-1.0, 0.3 * phase)));
                }
                if i + 1 < n {
                    t.push((i, i + 1, Complex64::new(-0.7, -0.2)));
                }
                if i + 6 < n {
                    t.push((i, i + 6, Complex64::new(0.2, 0.1 * phase)));
                }
            }
            CsrMatrix::from_triplets(n, n, &t)
        };
        let a = build(1.0);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        let b_mat = build(2.5);
        let x_true: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).cos(), (i as f64 * 0.15).sin()))
            .collect();
        let rhs = b_mat.matvec(&x_true);
        let x = sym.factor(&b_mat).unwrap().solve(&rhs).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-9);
    }

    #[test]
    fn stale_pivot_sequence_triggers_a_fresh_factorization() {
        // First factor a diagonally dominant matrix, then hand in values
        // that zero the previously chosen pivots; factor() must transparently
        // re-pivot and still produce an accurate factorization.
        let t1 = [
            (0usize, 0usize, 10.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 10.0),
        ];
        let a = CsrMatrix::from_triplets(2, 2, &t1);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        let t2 = [(0usize, 0usize, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)];
        let b_mat = CsrMatrix::from_triplets(2, 2, &t2);
        let lu = sym.factor(&b_mat).unwrap();
        let x = lu.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_pattern_is_rejected() {
        let a = laplacian_2d(4);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        let other = laplacian_2d(5);
        assert!(matches!(
            sym.factor(&other),
            Err(SparseError::DimensionMismatch { .. })
        ));
        // Same shape, different pattern.
        let dense_row = CsrMatrix::from_triplets(
            a.rows(),
            a.cols(),
            &(0..a.cols())
                .map(|c| (0usize, c, 1.0))
                .chain((1..a.rows()).map(|r| (r, r, 1.0)))
                .collect::<Vec<_>>(),
        );
        assert!(matches!(
            sym.factor(&dense_row),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn singular_matrix_reports_zero_pivot() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 0.0), (1, 1, 0.0)]);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        assert!(matches!(sym.factor(&a), Err(SparseError::ZeroPivot { .. })));
    }

    #[test]
    fn seeded_handle_is_numeric_only_and_bitwise_matches_the_donor() {
        let a = laplacian_2d(8);
        let mut donor = SymbolicLu::analyze(&a).unwrap();
        let donor_lu = donor.factor(&a).unwrap();
        // Seeding shares the recorded structure: the clone starts with the
        // numeric-only path available and a fresh fallback counter.
        let mut seeded = donor.seed_from();
        assert!(seeded.has_structure());
        assert_eq!(seeded.stale_fallback_count(), 0);
        assert!(seeded.matches(&a));
        assert_eq!(seeded.ordering_kind(), donor.ordering_kind());
        // Same values through the seeded handle reproduce the donor's
        // factorization bit for bit (the refactorization replays the
        // recorded elimination order).
        let rhs: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.31).sin()).collect();
        let x_donor = donor_lu.solve(&rhs).unwrap();
        let x_seeded = seeded.factor(&a).unwrap().solve(&rhs).unwrap();
        let donor_bits: Vec<u64> = x_donor.iter().map(|v| v.to_bits()).collect();
        let seeded_bits: Vec<u64> = x_seeded.iter().map(|v| v.to_bits()).collect();
        assert_eq!(donor_bits, seeded_bits);
        // Perturbed values still solve accurately through the seed.
        let b_mat = shifted_laplacian(8, 0.75);
        let x_true: Vec<f64> = (0..b_mat.rows()).map(|i| (i as f64 * 0.12).cos()).collect();
        let b_rhs = b_mat.matvec(&x_true);
        let x = seeded.factor(&b_mat).unwrap().solve(&b_rhs).unwrap();
        assert!(vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10);
        assert_eq!(seeded.stale_fallback_count(), 0);
    }

    #[test]
    fn numeric_refactorization_of_identical_values_is_bitwise_stable() {
        // factor() twice on the same matrix: the second call replays the
        // recorded elimination order (ascending pivots, supernode-blocked)
        // and must reproduce the first (full, pivoting) factorization's
        // solve bits exactly.
        let a = laplacian_2d(11);
        let rhs: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        let full = sym.factor(&a).unwrap().solve(&rhs).unwrap();
        let replay = sym.factor(&a).unwrap().solve(&rhs).unwrap();
        assert_eq!(
            full.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            replay.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn forced_orderings_both_factor_and_differ_in_fill() {
        let a = laplacian_2d(12);
        let pattern = SparsityPattern::of(&a);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| (i as f64 * 0.13).sin()).collect();
        let rhs = a.matvec(&x_true);
        let mut nnz = Vec::new();
        for kind in [OrderingKind::Rcm, OrderingKind::Amd] {
            let mut sym = SymbolicLu::new_with_ordering(&pattern, kind).unwrap();
            assert_eq!(sym.ordering_kind(), kind);
            let lu = sym.factor(&a).unwrap();
            let x = lu.solve(&rhs).unwrap();
            assert!(
                vecops::relative_diff(&x, &x_true, 1e-30) < 1e-10,
                "{kind:?}"
            );
            nnz.push(lu.factor_nnz());
            // The refactorization reproduces the recorded factorization
            // under either ordering.
            let again = sym.factor(&a).unwrap();
            assert_eq!(again.factor_nnz(), lu.factor_nnz());
        }
        assert_ne!(nnz[0], nnz[1], "orderings should produce different fill");
    }

    #[test]
    fn auto_selection_matches_the_predicted_fill_winner() {
        let a = laplacian_2d(10);
        let pattern = SparsityPattern::of(&a);
        let sym = SymbolicLu::new(&pattern).unwrap();
        let rcm_fill = ordering::predicted_fill(&a, &ordering::rcm(&a));
        let amd_fill = ordering::predicted_fill(&a, &ordering::amd(&a));
        let expect = if amd_fill < rcm_fill {
            OrderingKind::Amd
        } else {
            OrderingKind::Rcm
        };
        assert_eq!(sym.ordering_kind(), expect);
    }

    #[test]
    fn parallel_refactorization_is_bitwise_identical_to_serial() {
        // Large enough that several elimination levels clear the
        // PAR_MIN_LEVEL_COLS fan-out threshold.
        let a = laplacian_2d(16);
        let mut sym = SymbolicLu::analyze(&a).unwrap();
        sym.factor(&a).unwrap();
        let b_mat = shifted_laplacian(16, 0.4);
        let rhs: Vec<f64> = (0..b_mat.rows()).map(|i| (i as f64 * 0.9).cos()).collect();
        let serial_bits: Vec<u64> = sym
            .factor_with_threads(&b_mat, 1)
            .unwrap()
            .solve(&rhs)
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for threads in [2, 4, 8] {
            let bits: Vec<u64> = sym
                .factor_with_threads(&b_mat, threads)
                .unwrap()
                .solve(&rhs)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(serial_bits, bits, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_refactorization_reports_stale_pivots() {
        let a = laplacian_2d(16);
        let mut donor = SymbolicLu::analyze(&a).unwrap();
        donor.factor(&a).unwrap();
        // Zero out the matrix: every cached pivot is numerically unusable,
        // and the parallel path must fall back exactly like the serial one.
        let zeros: Vec<(usize, usize, f64)> = (0..a.rows())
            .flat_map(|r| {
                a.row_entries(r)
                    .map(move |(c, _)| (r, c, 0.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut z = laplacian_2d(16);
        z.assemble_into(&zeros).unwrap();
        for threads in [1, 4] {
            let mut seeded = donor.seed_from();
            assert!(matches!(
                seeded.factor_with_threads(&z, threads),
                Err(SparseError::ZeroPivot { .. })
            ));
            assert_eq!(seeded.stale_fallback_count(), 1, "threads = {threads}");
        }
    }

    #[test]
    fn stale_seed_falls_back_locally_and_counts_it() {
        let t1 = [
            (0usize, 0usize, 10.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 10.0),
        ];
        let a = CsrMatrix::from_triplets(2, 2, &t1);
        let mut donor = SymbolicLu::analyze(&a).unwrap();
        donor.factor(&a).unwrap();
        let mut seeded = donor.seed_from();
        // Values that zero the donor's pivots: the seeded handle re-pivots
        // locally (counted), the donor's structure is untouched.
        let t2 = [(0usize, 0usize, 0.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 0.0)];
        let b_mat = CsrMatrix::from_triplets(2, 2, &t2);
        let x = seeded.factor(&b_mat).unwrap().solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
        assert_eq!(seeded.stale_fallback_count(), 1);
        assert_eq!(donor.stale_fallback_count(), 0);
        // The donor still factors its own matrix numerically afterwards.
        donor.factor(&a).unwrap();
        assert_eq!(donor.stale_fallback_count(), 0);
    }

    #[test]
    fn selected_ordering_is_a_permutation() {
        let a = laplacian_2d(6);
        let sym = SymbolicLu::analyze(&a).unwrap();
        let mut sorted = sym.ordering().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
        assert_eq!(sym.dim(), a.rows());
    }
}
