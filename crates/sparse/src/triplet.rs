//! Coordinate-format (COO) assembly buffer.

use crate::{CsrMatrix, SparseError};
use vaem_numeric::Scalar;

/// A coordinate-format sparse matrix used during FVM assembly.
///
/// Entries may be pushed in any order and duplicates are summed when
/// converting to [`CsrMatrix`], which matches how finite-volume stencils are
/// accumulated edge by edge.
///
/// # Example
/// ```
/// use vaem_sparse::TripletMatrix;
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate gets summed
/// t.push(1, 1, 4.0);
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 3.0);
/// assert_eq!(a.get(1, 1), 4.0);
/// assert_eq!(a.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TripletMatrix<T: Scalar = f64> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> TripletMatrix<T> {
    /// Creates an empty buffer for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty buffer with pre-allocated capacity.
    // vaem-lint: cold assembly-buffer construction
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (possibly duplicated) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no entry has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`; duplicates are summed on conversion.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Adds `value` only if it is non-zero (keeps the pattern tight).
    #[inline]
    pub fn push_nonzero(&mut self, row: usize, col: usize, value: T) {
        if value != T::zero() {
            self.push(row, col, value);
        }
    }

    /// Converts to CSR, summing duplicate entries and sorting columns within
    /// each row.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }

    /// Re-assembles the buffered entries into an already-structured CSR
    /// matrix (see [`CsrMatrix::assemble_into`]); the per-iteration fast
    /// path when the pattern is known not to change.
    ///
    /// # Errors
    /// * [`SparseError::DimensionMismatch`] when the shapes differ or an
    ///   entry is out of bounds.
    /// * [`SparseError::PatternMismatch`] when an entry has no structural
    ///   slot in `target`.
    pub fn assemble_into(&self, target: &mut CsrMatrix<T>) -> Result<(), SparseError> {
        if target.rows() != self.rows || target.cols() != self.cols {
            return Err(SparseError::DimensionMismatch {
                // vaem-lint: allow(H1) assembly-error message, constructed only on dimension mismatch
                detail: format!(
                    "assembly buffer is {}x{} but the target matrix is {}x{}",
                    self.rows,
                    self.cols,
                    target.rows(),
                    target.cols()
                ),
            });
        }
        target.assemble_into(&self.entries)
    }

    /// Clears all entries but keeps the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 2, 1.5);
        t.push(1, 2, 0.5);
        t.push(0, 0, 1.0);
        let a = t.to_csr();
        assert_eq!(a.get(1, 2), 2.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn push_nonzero_skips_zeros() {
        let mut t = TripletMatrix::new(2, 2);
        t.push_nonzero(0, 0, 0.0);
        t.push_nonzero(0, 1, 3.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn assemble_into_reuses_a_previous_pattern() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 1, 3.0);
        let mut a = t.to_csr();
        // New values, same stencil.
        t.clear();
        t.push(0, 0, 10.0);
        t.push(1, 1, 30.0);
        t.assemble_into(&mut a).unwrap();
        assert_eq!(a.get(0, 0), 10.0);
        assert_eq!(a.get(0, 1), 0.0); // zeroed structural entry
        assert_eq!(a.get(1, 1), 30.0);
        assert_eq!(a.nnz(), 3);
        // A shape mismatch is rejected before touching the values.
        let wrong = TripletMatrix::<f64>::new(3, 3);
        assert!(matches!(
            wrong.assemble_into(&mut a),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn clear_retains_capacity_semantics() {
        let mut t = TripletMatrix::with_capacity(2, 2, 16);
        t.push(0, 0, 1.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
    }
}
