//! Free functions operating on `Vec`/slice representations of vectors.
//!
//! Vectors are plain `Vec<T>` throughout the workspace; these helpers keep
//! the call sites compact without introducing a wrapper type.
//!
//! The reduction kernels (`dot`, `dotu`, `norm2`) and `axpy` dominate the
//! Krylov inner loops now that their workspaces are allocation-free, so
//! under the (default-on) `fast-vecops` feature they run as 4-lane unrolled
//! loops: four independent accumulators break the sequential dependency
//! chain of the scalar loop and let the compiler keep four FMA pipelines
//! busy. `axpy` is element-wise, so its unrolled form is bit-identical to
//! the scalar one; the reductions re-associate the sum, which changes
//! results only within the usual accumulation-order tolerance (the
//! property tests in this module bound the difference against the scalar
//! reference).

use crate::Scalar;

/// Inner product `⟨x, y⟩ = Σ conj(xᵢ)·yᵢ` (conjugate-linear in the first slot).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    #[cfg(feature = "fast-vecops")]
    {
        kernels::dot_unrolled(x, y)
    }
    #[cfg(not(feature = "fast-vecops"))]
    {
        kernels::dot_scalar(x, y)
    }
}

/// Unconjugated dot product `Σ xᵢ·yᵢ` (used by some Krylov recurrences).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dotu<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dotu: length mismatch");
    #[cfg(feature = "fast-vecops")]
    {
        kernels::dotu_unrolled(x, y)
    }
    #[cfg(not(feature = "fast-vecops"))]
    {
        kernels::dotu_scalar(x, y)
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2<T: Scalar>(x: &[T]) -> f64 {
    #[cfg(feature = "fast-vecops")]
    {
        kernels::sumsq_unrolled(x).sqrt()
    }
    #[cfg(not(feature = "fast-vecops"))]
    {
        kernels::sumsq_scalar(x).sqrt()
    }
}

/// Maximum modulus entry `‖x‖∞`.
pub fn norm_inf<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.modulus()).fold(0.0, f64::max)
}

/// `y ← y + a·x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    #[cfg(feature = "fast-vecops")]
    {
        kernels::axpy_unrolled(a, x, y)
    }
    #[cfg(not(feature = "fast-vecops"))]
    {
        kernels::axpy_scalar(a, x, y)
    }
}

/// The scalar and 4-lane-unrolled implementations behind the public
/// entry points. Both variants are always compiled (the property tests
/// compare them directly); the feature flag only selects which one the
/// public functions dispatch to, hence the `dead_code` allowance on the
/// de-selected half.
#[allow(dead_code)]
mod kernels {
    use crate::Scalar;

    pub fn dot_scalar<T: Scalar>(x: &[T], y: &[T]) -> T {
        let mut acc = T::zero();
        for (a, b) in x.iter().zip(y.iter()) {
            acc += a.conj() * *b;
        }
        acc
    }

    pub fn dot_unrolled<T: Scalar>(x: &[T], y: &[T]) -> T {
        let mut acc = [T::zero(); 4];
        let (xc, xr) = x.split_at(x.len() - x.len() % 4);
        let (yc, yr) = y.split_at(x.len() - x.len() % 4);
        for (a, b) in xc.chunks_exact(4).zip(yc.chunks_exact(4)) {
            acc[0] += a[0].conj() * b[0];
            acc[1] += a[1].conj() * b[1];
            acc[2] += a[2].conj() * b[2];
            acc[3] += a[3].conj() * b[3];
        }
        let mut tail = T::zero();
        for (a, b) in xr.iter().zip(yr.iter()) {
            tail += a.conj() * *b;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    pub fn dotu_scalar<T: Scalar>(x: &[T], y: &[T]) -> T {
        let mut acc = T::zero();
        for (a, b) in x.iter().zip(y.iter()) {
            acc += *a * *b;
        }
        acc
    }

    pub fn dotu_unrolled<T: Scalar>(x: &[T], y: &[T]) -> T {
        let mut acc = [T::zero(); 4];
        let (xc, xr) = x.split_at(x.len() - x.len() % 4);
        let (yc, yr) = y.split_at(x.len() - x.len() % 4);
        for (a, b) in xc.chunks_exact(4).zip(yc.chunks_exact(4)) {
            acc[0] += a[0] * b[0];
            acc[1] += a[1] * b[1];
            acc[2] += a[2] * b[2];
            acc[3] += a[3] * b[3];
        }
        let mut tail = T::zero();
        for (a, b) in xr.iter().zip(yr.iter()) {
            tail += *a * *b;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    pub fn sumsq_scalar<T: Scalar>(x: &[T]) -> f64 {
        x.iter().map(|v| v.modulus_sqr()).sum::<f64>()
    }

    pub fn sumsq_unrolled<T: Scalar>(x: &[T]) -> f64 {
        let mut acc = [0.0_f64; 4];
        let (xc, xr) = x.split_at(x.len() - x.len() % 4);
        for a in xc.chunks_exact(4) {
            acc[0] += a[0].modulus_sqr();
            acc[1] += a[1].modulus_sqr();
            acc[2] += a[2].modulus_sqr();
            acc[3] += a[3].modulus_sqr();
        }
        let tail: f64 = xr.iter().map(|v| v.modulus_sqr()).sum();
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    pub fn axpy_scalar<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += a * *xi;
        }
    }

    pub fn axpy_unrolled<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
        let split = x.len() - x.len() % 4;
        let (xc, xr) = x.split_at(split);
        let (yc, yr) = y.split_at_mut(split);
        for (b, v) in yc.chunks_exact_mut(4).zip(xc.chunks_exact(4)) {
            b[0] += a * v[0];
            b[1] += a * v[1];
            b[2] += a * v[2];
            b[3] += a * v[3];
        }
        for (yi, xi) in yr.iter_mut().zip(xr.iter()) {
            *yi += a * *xi;
        }
    }
}

/// `x ← a·x`.
pub fn scale_in_place<T: Scalar>(a: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise difference `x - y` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
// vaem-lint: cold allocating convenience wrapper; hot kernels take out-params
pub fn sub<T: Scalar>(x: &[T], y: &[T]) -> Vec<T> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| *a - *b).collect()
}

/// Element-wise sum `x + y` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
// vaem-lint: cold allocating convenience wrapper; hot kernels take out-params
pub fn add<T: Scalar>(x: &[T], y: &[T]) -> Vec<T> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| *a + *b).collect()
}

/// Converts a real vector into a vector of scalars of type `T`.
// vaem-lint: cold allocating convenience wrapper; hot kernels take out-params
pub fn from_real<T: Scalar>(x: &[f64]) -> Vec<T> {
    x.iter().map(|&v| T::from_f64(v)).collect()
}

/// Extracts the real parts of a vector of scalars.
// vaem-lint: cold allocating convenience wrapper; hot kernels take out-params
pub fn to_real<T: Scalar>(x: &[T]) -> Vec<f64> {
    x.iter().map(|v| v.real()).collect()
}

/// Relative difference `‖x - y‖₂ / max(‖y‖₂, floor)`.
///
/// `floor` guards against division by (near-)zero reference norms.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn relative_diff<T: Scalar>(x: &[T], y: &[T], floor: f64) -> f64 {
    let d = sub(x, y);
    norm2(&d) / norm2(y).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn dot_conjugates_first_argument() {
        let x = vec![Complex64::new(0.0, 1.0)];
        let y = vec![Complex64::new(0.0, 1.0)];
        // conj(i) * i = -i * i = 1
        assert_eq!(dot(&x, &y), Complex64::ONE);
        // unconjugated: i * i = -1
        assert_eq!(dotu(&x, &y), Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn norms() {
        let x = vec![3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn axpy_and_scale() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
        scale_in_place(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.5, 0.5, 0.5];
        assert_eq!(add(&sub(&x, &y), &y), x);
    }

    #[test]
    fn relative_diff_of_identical_vectors_is_zero() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(relative_diff(&x, &x, 1e-30), 0.0);
    }

    #[test]
    fn real_conversions() {
        let r = vec![1.0, 2.0];
        let c: Vec<Complex64> = from_real(&r);
        assert_eq!(c[1], Complex64::new(2.0, 0.0));
        assert_eq!(to_real(&c), r);
    }

    mod fast_kernels {
        //! Property tests pinning the unrolled kernels to the scalar
        //! reference: `axpy` bit-identical (element-wise, no
        //! re-association), the reductions within an accumulation-order
        //! error bound of `Σ|xᵢ||yᵢ|`.
        use super::super::kernels;
        use crate::{Complex64, Scalar};
        use proptest::prelude::*;

        /// Deterministic pseudo-random test vector (length varies per case).
        fn vector(seed: u64, len: usize, spread: f64) -> Vec<f64> {
            (0..len)
                .map(|i| {
                    let t = (seed as f64 * 0.61 + i as f64 * 1.37).sin();
                    let m = (spread * (seed as f64 * 0.29 + i as f64 * 0.83).cos()).exp();
                    t * m
                })
                .collect()
        }

        fn complex_vector(seed: u64, len: usize, spread: f64) -> Vec<Complex64> {
            let re = vector(seed, len, spread);
            let im = vector(seed.wrapping_add(101), len, spread);
            re.into_iter()
                .zip(im)
                .map(|(r, i)| Complex64::new(r, i))
                .collect()
        }

        /// Accumulation-order error bound: `cases × ε × Σ|xᵢ|·|yᵢ|`.
        fn bound<T: Scalar>(x: &[T], y: &[T]) -> f64 {
            let magnitude: f64 = x
                .iter()
                .zip(y.iter())
                .map(|(a, b)| a.modulus() * b.modulus())
                .sum();
            (x.len() as f64 + 4.0) * f64::EPSILON * magnitude + 1e-300
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn real_reductions_match_the_scalar_reference(
                seed in 0u64..10_000,
                len in 0usize..67,
                spread in 0.0f64..6.0,
            ) {
                let x = vector(seed, len, spread);
                let y = vector(seed.wrapping_add(7), len, spread);
                let err = (kernels::dot_unrolled(&x, &y) - kernels::dot_scalar(&x, &y)).abs();
                prop_assert!(err <= bound(&x, &y), "dot err {err}");
                let erru = (kernels::dotu_unrolled(&x, &y) - kernels::dotu_scalar(&x, &y)).abs();
                prop_assert!(erru <= bound(&x, &y), "dotu err {erru}");
                let errn = (kernels::sumsq_unrolled(&x) - kernels::sumsq_scalar(&x)).abs();
                prop_assert!(errn <= bound(&x, &x), "sumsq err {errn}");
            }

            #[test]
            fn complex_reductions_match_the_scalar_reference(
                seed in 0u64..10_000,
                len in 0usize..67,
                spread in 0.0f64..6.0,
            ) {
                let x = complex_vector(seed, len, spread);
                let y = complex_vector(seed.wrapping_add(13), len, spread);
                let err = (kernels::dot_unrolled(&x, &y) - kernels::dot_scalar(&x, &y)).abs();
                prop_assert!(err <= 2.0 * bound(&x, &y), "dot err {err}");
                let erru = (kernels::dotu_unrolled(&x, &y) - kernels::dotu_scalar(&x, &y)).abs();
                prop_assert!(erru <= 2.0 * bound(&x, &y), "dotu err {erru}");
                let errn = (kernels::sumsq_unrolled(&x) - kernels::sumsq_scalar(&x)).abs();
                prop_assert!(errn <= 2.0 * bound(&x, &x), "sumsq err {errn}");
            }

            #[test]
            fn axpy_is_bitwise_identical_to_the_scalar_loop(
                seed in 0u64..10_000,
                len in 0usize..67,
                a in -3.0f64..3.0,
            ) {
                let x = vector(seed, len, 2.0);
                let base = vector(seed.wrapping_add(3), len, 2.0);
                let mut fast = base.clone();
                let mut slow = base;
                kernels::axpy_unrolled(a, &x, &mut fast);
                kernels::axpy_scalar(a, &x, &mut slow);
                let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
                let slow_bits: Vec<u64> = slow.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(fast_bits, slow_bits);

                let cx = complex_vector(seed, len, 2.0);
                let cbase = complex_vector(seed.wrapping_add(3), len, 2.0);
                let ca = Complex64::new(a, -0.5 * a);
                let mut cfast = cbase.clone();
                let mut cslow = cbase;
                kernels::axpy_unrolled(ca, &cx, &mut cfast);
                kernels::axpy_scalar(ca, &cx, &mut cslow);
                let cfast_bits: Vec<u64> = cfast
                    .iter()
                    .flat_map(|v| [v.re.to_bits(), v.im.to_bits()])
                    .collect();
                let cslow_bits: Vec<u64> = cslow
                    .iter()
                    .flat_map(|v| [v.re.to_bits(), v.im.to_bits()])
                    .collect();
                prop_assert_eq!(cfast_bits, cslow_bits);
            }
        }
    }
}
