//! Free functions operating on `Vec`/slice representations of vectors.
//!
//! Vectors are plain `Vec<T>` throughout the workspace; these helpers keep
//! the call sites compact without introducing a wrapper type.

use crate::Scalar;

/// Inner product `⟨x, y⟩ = Σ conj(xᵢ)·yᵢ` (conjugate-linear in the first slot).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = T::zero();
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a.conj() * *b;
    }
    acc
}

/// Unconjugated dot product `Σ xᵢ·yᵢ` (used by some Krylov recurrences).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dotu<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dotu: length mismatch");
    let mut acc = T::zero();
    for (a, b) in x.iter().zip(y.iter()) {
        acc += *a * *b;
    }
    acc
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.modulus_sqr()).sum::<f64>().sqrt()
}

/// Maximum modulus entry `‖x‖∞`.
pub fn norm_inf<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.modulus()).fold(0.0, f64::max)
}

/// `y ← y + a·x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * *xi;
    }
}

/// `x ← a·x`.
pub fn scale_in_place<T: Scalar>(a: T, x: &mut [T]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Element-wise difference `x - y` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sub<T: Scalar>(x: &[T], y: &[T]) -> Vec<T> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| *a - *b).collect()
}

/// Element-wise sum `x + y` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add<T: Scalar>(x: &[T], y: &[T]) -> Vec<T> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| *a + *b).collect()
}

/// Converts a real vector into a vector of scalars of type `T`.
pub fn from_real<T: Scalar>(x: &[f64]) -> Vec<T> {
    x.iter().map(|&v| T::from_f64(v)).collect()
}

/// Extracts the real parts of a vector of scalars.
pub fn to_real<T: Scalar>(x: &[T]) -> Vec<f64> {
    x.iter().map(|v| v.real()).collect()
}

/// Relative difference `‖x - y‖₂ / max(‖y‖₂, floor)`.
///
/// `floor` guards against division by (near-)zero reference norms.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn relative_diff<T: Scalar>(x: &[T], y: &[T], floor: f64) -> f64 {
    let d = sub(x, y);
    norm2(&d) / norm2(y).max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn dot_conjugates_first_argument() {
        let x = vec![Complex64::new(0.0, 1.0)];
        let y = vec![Complex64::new(0.0, 1.0)];
        // conj(i) * i = -i * i = 1
        assert_eq!(dot(&x, &y), Complex64::ONE);
        // unconjugated: i * i = -1
        assert_eq!(dotu(&x, &y), Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn norms() {
        let x = vec![3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn axpy_and_scale() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
        scale_in_place(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.5, 0.5, 0.5];
        assert_eq!(add(&sub(&x, &y), &y), x);
    }

    #[test]
    fn relative_diff_of_identical_vectors_is_zero() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(relative_diff(&x, &x, 1e-30), 0.0);
    }

    #[test]
    fn real_conversions() {
        let r = vec![1.0, 2.0];
        let c: Vec<Complex64> = from_real(&r);
        assert_eq!(c[1], Complex64::new(2.0, 0.0));
        assert_eq!(to_real(&c), r);
    }
}
