//! Dense matrices and factorizations.
//!
//! The dense kernels are used for:
//! * covariance matrices of the correlated process variations
//!   (Cholesky sampling, eigendecomposition for PFA),
//! * the weighted-covariance SVD of the wPFA reduction,
//! * Gauss–Hermite rule construction (symmetric tridiagonal eigenproblem),
//! * small dense fallback solves in the FVM layer.

mod cholesky;
mod eigen;
mod lu;
mod matrix;
mod qr;
mod svd;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use lu::Lu;
pub use matrix::DMatrix;
pub use qr::Qr;
pub use svd::Svd;
