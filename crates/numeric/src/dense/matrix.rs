//! Row-major dense matrix generic over [`Scalar`].

use crate::{NumericError, Scalar};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix over a [`Scalar`] type.
///
/// # Example
/// ```
/// use vaem_numeric::dense::DMatrix;
/// let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = a.matmul(&DMatrix::<f64>::identity(2));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, PartialEq)]
pub struct DMatrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DMatrix<T> {
    /// Creates a matrix filled with zeros.
    // vaem-lint: cold dense-matrix construction
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: empty input");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "from_rows: ragged rows"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[T]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of a full row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of a full row as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn column(&self, j: usize) -> Vec<T> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Underlying data in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate-transposed (Hermitian) copy.
    pub fn conj_transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    // vaem-lint: cold allocating convenience wrapper; dense panels are setup-side
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![T::zero(); self.rows];
        for i in 0..self.rows {
            let mut acc = T::zero();
            let row = self.row(i);
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// Runs an `i`–`k`–`j` loop on contiguous row slices, with `k` blocked so
    /// the rows of `B` touched by a block stay cache-resident while every row
    /// of `A` streams through — the PFA/wPFA covariance products are the hot
    /// consumers.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Self::zeros(self.rows, other.cols);
        let nc = other.cols;
        const K_BLOCK: usize = 64;
        for k0 in (0..self.cols).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(self.cols);
            for i in 0..self.rows {
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let out_row = &mut out.data[i * nc..(i + 1) * nc];
                for k in k0..k1 {
                    let aik = a_row[k];
                    if aik == T::zero() {
                        continue;
                    }
                    let b_row = &other.data[k * nc..(k + 1) * nc];
                    for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * b;
                    }
                }
            }
        }
        out
    }

    /// Transpose-aware product `A·Bᵀ` (no conjugation) without materializing
    /// the transpose: entry `(i, j)` is the plain dot product of row `i` of
    /// `A` with row `j` of `B`, so both operands stream contiguously.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn matmul_transpose(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose: dimension mismatch"
        );
        let mut out = Self::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = T::zero();
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    // vaem-lint: cold allocating convenience wrapper; dense panels are setup-side
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Self::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + other[(i, j)])
    }

    /// Element-wise difference.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    // vaem-lint: cold allocating convenience wrapper; dense panels are setup-side
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Self::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - other[(i, j)])
    }

    /// Scales every entry by a real factor.
    pub fn scale(&self, s: f64) -> Self {
        Self::from_fn(self.rows, self.cols, |i, j| self[(i, j)].scale(s))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.modulus_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum modulus entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.modulus()).fold(0.0, f64::max)
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    /// Returns [`NumericError::Singular`] when a pivot is exactly zero and
    /// [`NumericError::DimensionMismatch`] for non-square matrices.
    pub fn lu(&self) -> Result<super::Lu<T>, NumericError> {
        super::Lu::new(self)
    }

    /// Solves `A·x = b` through an LU factorization.
    ///
    /// # Errors
    /// See [`DMatrix::lu`].
    // vaem-lint: cold allocates the solution it returns; once per dense solve
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumericError> {
        self.lu()?.solve(b)
    }
}

impl DMatrix<f64> {
    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl<T: Scalar> Index<(usize, usize)> for DMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for DMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for DMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn identity_matvec_is_identity() {
        let eye = DMatrix::<f64>::identity(3);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(eye.matvec(&x), x);
    }

    #[test]
    fn matmul_matches_manual_result() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_transpose_matches_explicit_transpose() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-0.5, 0.25, 4.0]]);
        let b = DMatrix::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![1.5, 3.0, -2.0],
            vec![0.0, 1.0, 1.0],
            vec![-1.0, 0.0, 2.5],
        ]);
        let fast = a.matmul_transpose(&b);
        let reference = a.matmul(&b.transpose());
        assert_eq!(fast.rows(), 2);
        assert_eq!(fast.cols(), 4);
        assert!(fast.sub(&reference).frobenius_norm() < 1e-14);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_larger_sizes() {
        // Exercise the k-blocking path (cols > block size).
        let a = DMatrix::from_fn(7, 150, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = DMatrix::from_fn(150, 5, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        let fast = a.matmul(&b);
        let mut naive = DMatrix::<f64>::zeros(7, 5);
        for i in 0..7 {
            for j in 0..5 {
                for k in 0..150 {
                    naive[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        assert!(fast.sub(&naive).frobenius_norm() < 1e-10);
    }

    #[test]
    fn transpose_and_conj_transpose() {
        let a = DMatrix::from_rows(&[vec![Complex64::new(1.0, 2.0), Complex64::new(3.0, 4.0)]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 2);
        assert_eq!(t[(1, 0)], Complex64::new(3.0, 4.0));
        let h = a.conj_transpose();
        assert_eq!(h[(1, 0)], Complex64::new(3.0, -4.0));
    }

    #[test]
    fn diagonal_constructor() {
        let d = DMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert!((d.frobenius_norm() - 14.0_f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn symmetric_check() {
        let s = DMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = DMatrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]);
        assert!(!ns.is_symmetric(1e-12));
    }

    #[test]
    fn add_sub_scale() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0]]);
        let b = DMatrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.add(&b)[(0, 1)], 6.0);
        assert_eq!(b.sub(&a)[(0, 0)], 2.0);
        assert_eq!(a.scale(2.0)[(0, 1)], 4.0);
        assert_eq!(b.max_abs(), 4.0);
    }

    #[test]
    fn row_and_column_access() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.column(0), vec![1.0, 3.0]);
    }
}
