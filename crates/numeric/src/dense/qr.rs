//! Householder QR factorization and least-squares solves.
//!
//! The SSCM layer offers a regression (least-squares) alternative to the
//! projection quadrature when fitting the quadratic Hermite chaos to the
//! collocation samples; that path relies on this QR.

use super::DMatrix;
use crate::NumericError;

/// Householder QR factorization of an `m×n` real matrix with `m ≥ n`.
///
/// # Example
/// ```
/// use vaem_numeric::dense::{DMatrix, Qr};
/// // Fit y = a + b·x to three points in the least-squares sense.
/// let a = DMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
/// let y = vec![1.0, 3.0, 5.0];
/// let qr = Qr::new(&a)?;
/// let coeff = qr.solve_least_squares(&y)?;
/// assert!((coeff[0] - 1.0).abs() < 1e-12 && (coeff[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal, R on/above.
    qr: DMatrix<f64>,
    /// Scaling factors of the Householder reflectors.
    betas: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` (requires at least as many rows as columns).
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] if `rows < cols`.
    /// * [`NumericError::Singular`] if a column is (numerically) dependent.
    pub fn new(a: &DMatrix<f64>) -> Result<Self, NumericError> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(NumericError::DimensionMismatch {
                detail: format!("QR requires rows >= cols, got {m}x{n}"),
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                return Err(NumericError::Singular { pivot: k });
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, qr[k+1.., k]], beta = 2 / ||v||^2
            let mut vnorm2 = v0 * v0;
            for i in (k + 1)..m {
                vnorm2 += qr[(i, k)] * qr[(i, k)];
            }
            if vnorm2 == 0.0 {
                betas[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vnorm2;
            betas[k] = beta;

            // Apply the reflector to the trailing columns.
            for j in (k + 1)..n {
                let mut dot = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let dot = dot * beta;
                qr[(k, j)] -= dot * v0;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= dot * vik;
                }
            }
            // Store: R diagonal value and the reflector vector (v0 implicit).
            qr[(k, k)] = alpha;
            // Normalize stored sub-diagonal entries by v0 so that v = [1, stored...].
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            betas[k] *= v0 * v0;
        }

        Ok(Self { qr, betas })
    }

    /// Number of columns (unknowns) of the factorized matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Number of rows (equations) of the factorized matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] if `b.len() != rows`.
    /// * [`NumericError::Singular`] if `R` has a zero diagonal entry.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let m = self.rows();
        let n = self.cols();
        if b.len() != m {
            return Err(NumericError::DimensionMismatch {
                detail: format!("rhs length {} does not match rows {}", b.len(), m),
            });
        }
        // Apply Qᵀ to b.
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let dot = dot * beta;
            y[k] -= dot;
            for i in (k + 1)..m {
                y[i] -= dot * self.qr[(i, k)];
            }
        }
        // Back substitution with R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            let r_ii = self.qr[(i, i)];
            if r_ii == 0.0 {
                return Err(NumericError::Singular { pivot: i });
            }
            x[i] = acc / r_ii;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_system_solution_matches_lu() {
        let a = DMatrix::from_rows(&[
            vec![2.0, 1.0, 0.3],
            vec![-1.0, 3.0, 1.0],
            vec![0.5, 0.2, 4.0],
        ]);
        let b = vec![1.0, 2.0, 3.0];
        let qr = Qr::new(&a).unwrap();
        let x_qr = qr.solve_least_squares(&b).unwrap();
        let x_lu = a.solve(&b).unwrap();
        for (p, q) in x_qr.iter().zip(x_lu.iter()) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn overdetermined_regression_recovers_exact_model() {
        // y = 2 + 3x - x^2 sampled without noise: LS must recover exactly.
        let xs: [f64; 6] = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0];
        let a = DMatrix::from_fn(xs.len(), 3, |i, j| xs[i].powi(j as i32));
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x - x * x).collect();
        let qr = Qr::new(&a).unwrap();
        let c = qr.solve_least_squares(&y).unwrap();
        assert!((c[0] - 2.0).abs() < 1e-10);
        assert!((c[1] - 3.0).abs() < 1e-10);
        assert!((c[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        let a = DMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ]);
        let b = vec![0.0, 1.0, 1.0, 3.0];
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect();
        // A^T r should be ~0.
        for j in 0..a.cols() {
            let col = a.column(j);
            let dot: f64 = col.iter().zip(r.iter()).map(|(c, ri)| c * ri).sum();
            assert!(dot.abs() < 1e-10);
        }
    }

    #[test]
    fn underdetermined_is_rejected() {
        let a = DMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            Qr::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_column_is_detected() {
        let a = DMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]]);
        assert!(matches!(Qr::new(&a), Err(NumericError::Singular { .. })));
    }
}
