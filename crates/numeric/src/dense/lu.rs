//! LU factorization with partial pivoting, generic over [`Scalar`].

use super::DMatrix;
use crate::{NumericError, Scalar};

/// LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// Used as a dense fallback solver and for small coupling blocks in the FVM
/// layer; works for real and complex matrices.
///
/// # Example
/// ```
/// use vaem_numeric::dense::DMatrix;
/// let a = DMatrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]]);
/// let lu = a.lu()?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lu<T: Scalar> {
    factors: DMatrix<T>,
    pivots: Vec<usize>,
    sign_flips: usize,
}

impl<T: Scalar> Lu<T> {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] if the matrix is not square.
    /// * [`NumericError::Singular`] if a zero pivot is encountered.
    // vaem-lint: cold dense factorization, once per panel
    pub fn new(a: &DMatrix<T>) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                detail: format!("LU requires a square matrix, got {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots = Vec::with_capacity(n);
        let mut sign_flips = 0usize;

        for k in 0..n {
            // Find pivot row by maximum modulus in column k.
            let mut p = k;
            let mut pmax = lu[(k, k)].modulus();
            for i in (k + 1)..n {
                let v = lu[(i, k)].modulus();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return Err(NumericError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                sign_flips += 1;
            }
            pivots.push(p);

            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let update = factor * lu[(k, j)];
                    lu[(i, j)] -= update;
                }
            }
        }

        Ok(Self {
            factors: lu,
            pivots,
            sign_flips,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] if `b.len()` differs from
    /// the factorized dimension.
    // vaem-lint: cold allocates the solution it returns; once per dense solve, not per element
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumericError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                detail: format!("rhs length {} does not match dimension {}", b.len(), n),
            });
        }
        let mut x = b.to_vec();
        // Apply row permutation.
        for (k, &p) in self.pivots.iter().enumerate() {
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward substitution with unit lower-triangular L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.factors[(i, j)] * x[j];
            }
            x[i] = acc / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// Solves for multiple right-hand sides (columns of `B`).
    ///
    /// # Errors
    /// Same conditions as [`Lu::solve`].
    pub fn solve_matrix(&self, b: &DMatrix<T>) -> Result<DMatrix<T>, NumericError> {
        let mut out = DMatrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.column(j);
            let x = self.solve(&col)?;
            for i in 0..b.rows() {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> T {
        let n = self.dim();
        let mut d = if self.sign_flips.is_multiple_of(2) {
            T::one()
        } else {
            -T::one()
        };
        for i in 0..n {
            d *= self.factors[(i, i)];
        }
        d
    }

    /// Inverse of the factorized matrix.
    ///
    /// # Errors
    /// Same conditions as [`Lu::solve`].
    pub fn inverse(&self) -> Result<DMatrix<T>, NumericError> {
        let n = self.dim();
        self.solve_matrix(&DMatrix::identity(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn solves_real_3x3() {
        let a = DMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ]);
        let b = vec![5.0, -2.0, 9.0];
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn determinant_and_inverse() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let lu = a.lu().unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-13);
        let inv = lu.inverse().unwrap();
        let eye = a.matmul(&inv);
        assert!((eye[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(eye[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(NumericError::Singular { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solves_complex_system() {
        let a = DMatrix::from_rows(&[
            vec![Complex64::new(2.0, 1.0), Complex64::new(0.0, -1.0)],
            vec![Complex64::new(1.0, 0.0), Complex64::new(3.0, 2.0)],
        ]);
        let x_true = vec![Complex64::new(1.0, -1.0), Complex64::new(0.5, 2.0)];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (l, r) in x.iter().zip(x_true.iter()) {
            assert!((*l - *r).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn rhs_length_mismatch_is_an_error() {
        let a = DMatrix::<f64>::identity(3);
        let lu = a.lu().unwrap();
        assert!(matches!(
            lu.solve(&[1.0, 2.0]),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }
}
