//! Symmetric eigendecomposition via cyclic Jacobi rotations.
//!
//! Used for the classical PFA (principal factor analysis) reduction of the
//! variation covariance matrix and for the Golub–Welsch construction of
//! Gauss–Hermite quadrature rules.

use super::DMatrix;
use crate::NumericError;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a real symmetric matrix.
///
/// Eigenpairs are sorted by decreasing eigenvalue.
///
/// # Example
/// ```
/// use vaem_numeric::dense::{DMatrix, SymmetricEigen};
/// let a = DMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = SymmetricEigen::new(&a)?;
/// assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-12);
/// assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DMatrix<f64>,
}

impl SymmetricEigen {
    /// Maximum number of Jacobi sweeps before giving up.
    const MAX_SWEEPS: usize = 100;

    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// The strictly upper triangle is assumed to mirror the lower triangle;
    /// small asymmetries (below 1e-9 relative) are tolerated and symmetrized.
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] for non-square input.
    /// * [`NumericError::NoConvergence`] if the Jacobi sweeps do not converge.
    pub fn new(a: &DMatrix<f64>) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                detail: format!(
                    "eigendecomposition requires a square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        let n = a.rows();
        // Work on the symmetrized copy to be robust to round-off asymmetry.
        let mut m = DMatrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut v = DMatrix::<f64>::identity(n);

        let off = |m: &DMatrix<f64>| -> f64 {
            let mut s = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        s += m[(i, j)] * m[(i, j)];
                    }
                }
            }
            s.sqrt()
        };

        let scale = m.frobenius_norm().max(1e-300);
        let tol = 1e-14 * scale;
        let mut sweeps = 0;
        while off(&m) > tol {
            sweeps += 1;
            if sweeps > Self::MAX_SWEEPS {
                return Err(NumericError::NoConvergence {
                    iterations: Self::MAX_SWEEPS,
                });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply rotation on rows/columns p and q.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Extract and sort by decreasing eigenvalue.
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let eigenvalues: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        let eigenvectors = DMatrix::from_fn(n, n, |i, j| v[(i, pairs[j].1)]);

        Ok(Self {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues sorted in decreasing order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose columns are the eigenvectors (same order as the values).
    pub fn eigenvectors(&self) -> &DMatrix<f64> {
        &self.eigenvectors
    }

    /// Number of eigenvalues needed to capture `fraction` of the total
    /// (absolute) spectral energy.
    ///
    /// This mirrors the truncation criterion of the PFA/wPFA reduction: keep
    /// the leading factors until the captured variance exceeds the threshold.
    pub fn count_for_energy(&self, fraction: f64) -> usize {
        let total: f64 = self.eigenvalues.iter().map(|l| l.abs()).sum();
        if total == 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, l) in self.eigenvalues.iter().enumerate() {
            acc += l.abs();
            if acc >= fraction * total {
                return i + 1;
            }
        }
        self.eigenvalues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted() {
        let a = DMatrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[5.0, 3.0, 1.0]);
    }

    #[test]
    fn reconstructs_matrix_from_eigenpairs() {
        let a = DMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        let v = e.eigenvectors();
        let lam = DMatrix::from_diagonal(e.eigenvalues());
        let recon = v.matmul(&lam).matmul(&v.transpose());
        assert!(recon.sub(&a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DMatrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        let v = e.eigenvectors();
        let vtv = v.transpose().matmul(v);
        assert!(vtv.sub(&DMatrix::identity(3)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        let a = DMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_truncation_counts() {
        let a = DMatrix::from_diagonal(&[8.0, 1.0, 0.5, 0.5]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.count_for_energy(0.75), 1);
        assert_eq!(e.count_for_energy(0.95), 3);
        assert_eq!(e.count_for_energy(1.0), 4);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }
}
