//! Symmetric eigendecomposition via cyclic Jacobi rotations.
//!
//! Used for the classical PFA (principal factor analysis) reduction of the
//! variation covariance matrix and for the Golub–Welsch construction of
//! Gauss–Hermite quadrature rules.

use super::DMatrix;
use crate::NumericError;

/// Eigendecomposition `A = V·diag(λ)·Vᵀ` of a real symmetric matrix.
///
/// Eigenpairs are sorted by decreasing eigenvalue.
///
/// # Example
/// ```
/// use vaem_numeric::dense::{DMatrix, SymmetricEigen};
/// let a = DMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = SymmetricEigen::new(&a)?;
/// assert!((eig.eigenvalues()[0] - 3.0).abs() < 1e-12);
/// assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DMatrix<f64>,
}

impl SymmetricEigen {
    /// Maximum number of Jacobi sweeps before giving up.
    const MAX_SWEEPS: usize = 100;

    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// The strictly upper triangle is assumed to mirror the lower triangle;
    /// small asymmetries (below 1e-9 relative) are tolerated and symmetrized.
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] for non-square input.
    /// * [`NumericError::NoConvergence`] if the Jacobi sweeps do not converge.
    pub fn new(a: &DMatrix<f64>) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                detail: format!(
                    "eigendecomposition requires a square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        let n = a.rows();
        // Work on the symmetrized copy to be robust to round-off asymmetry.
        // Rows (and the columns of V) are held as separate contiguous
        // buffers so each plane rotation streams linearly; the strided
        // column updates of the similarity transform are replaced by a
        // symmetry mirror (M' stays symmetric, so its columns p and q equal
        // its rows p and q).
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| 0.5 * (a[(i, j)] + a[(j, i)])).collect())
            .collect();
        let mut v_cols: Vec<Vec<f64>> = (0..n)
            .map(|j| {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                e
            })
            .collect();

        let off = |rows: &[Vec<f64>]| -> f64 {
            let mut s = 0.0;
            for (i, row) in rows.iter().enumerate() {
                for (j, &x) in row.iter().enumerate() {
                    if i != j {
                        s += x * x;
                    }
                }
            }
            s.sqrt()
        };

        let scale = rows
            .iter()
            .map(|r| r.iter().map(|x| x * x).sum::<f64>())
            .sum::<f64>()
            .sqrt()
            .max(1e-300);
        let tol = 1e-14 * scale;
        let mut sweeps = 0;
        while off(&rows) > tol {
            sweeps += 1;
            if sweeps > Self::MAX_SWEEPS {
                return Err(NumericError::NoConvergence {
                    iterations: Self::MAX_SWEEPS,
                });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = rows[p][q];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = rows[p][p];
                    let aqq = rows[q][q];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // R = Jᵀ·M: combine rows p and q (contiguous).
                    let (head, tail) = rows.split_at_mut(q);
                    let rp = &mut head[p];
                    let rq = &mut tail[0];
                    for (x, y) in rp.iter_mut().zip(rq.iter_mut()) {
                        let mpk = *x;
                        let mqk = *y;
                        *x = c * mpk - s * mqk;
                        *y = s * mpk + c * mqk;
                    }
                    // The 2x2 pivot block of M' = R·J; the off-diagonal pair
                    // is annihilated by construction.
                    let rpp = rp[p];
                    let rpq = rp[q];
                    let rqp = rq[p];
                    let rqq = rq[q];
                    rp[p] = c * rpp - s * rpq;
                    rq[q] = s * rqp + c * rqq;
                    rp[q] = 0.0;
                    rq[p] = 0.0;
                    // Mirror rows p and q onto columns p and q: for k ∉ {p, q}
                    // symmetry gives M'[k][p] = R[p][k] and M'[k][q] = R[q][k].
                    for k in 0..n {
                        if k == p || k == q {
                            continue;
                        }
                        rows[k][p] = rows[p][k];
                        rows[k][q] = rows[q][k];
                    }
                    // Accumulate V·J on contiguous eigenvector columns.
                    let (vhead, vtail) = v_cols.split_at_mut(q);
                    let vp = &mut vhead[p];
                    let vq = &mut vtail[0];
                    for (x, y) in vp.iter_mut().zip(vq.iter_mut()) {
                        let vkp = *x;
                        let vkq = *y;
                        *x = c * vkp - s * vkq;
                        *y = s * vkp + c * vkq;
                    }
                }
            }
        }

        // Extract and sort by decreasing eigenvalue.
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (rows[i][i], i)).collect();
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let eigenvalues: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        let eigenvectors = DMatrix::from_fn(n, n, |i, j| v_cols[pairs[j].1][i]);

        Ok(Self {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Eigenvalues sorted in decreasing order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose columns are the eigenvectors (same order as the values).
    pub fn eigenvectors(&self) -> &DMatrix<f64> {
        &self.eigenvectors
    }

    /// Number of eigenvalues needed to capture `fraction` of the total
    /// (absolute) spectral energy.
    ///
    /// This mirrors the truncation criterion of the PFA/wPFA reduction: keep
    /// the leading factors until the captured variance exceeds the threshold.
    pub fn count_for_energy(&self, fraction: f64) -> usize {
        let total: f64 = self.eigenvalues.iter().map(|l| l.abs()).sum();
        if total == 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, l) in self.eigenvalues.iter().enumerate() {
            acc += l.abs();
            if acc >= fraction * total {
                return i + 1;
            }
        }
        self.eigenvalues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted() {
        let a = DMatrix::from_diagonal(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[5.0, 3.0, 1.0]);
    }

    #[test]
    fn reconstructs_matrix_from_eigenpairs() {
        let a = DMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        let v = e.eigenvectors();
        let lam = DMatrix::from_diagonal(e.eigenvalues());
        let recon = v.matmul(&lam).matmul(&v.transpose());
        assert!(recon.sub(&a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = DMatrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        let v = e.eigenvectors();
        let vtv = v.transpose().matmul(v);
        assert!(vtv.sub(&DMatrix::identity(3)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        let a = DMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues()[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_truncation_counts() {
        let a = DMatrix::from_diagonal(&[8.0, 1.0, 0.5, 0.5]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.count_for_energy(0.75), 1);
        assert_eq!(e.count_for_energy(0.95), 3);
        assert_eq!(e.count_for_energy(1.0), 4);
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DMatrix::<f64>::zeros(2, 3);
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }
}
