//! One-sided Jacobi singular value decomposition.
//!
//! The weighted PFA (wPFA) reduction of the paper multiplies the variation
//! covariance by a diagonal weight matrix derived from the nominal solution
//! and decomposes the product with an SVD (Section III.C); this module
//! provides that decomposition.

use super::DMatrix;
use crate::NumericError;

/// Thin SVD `A = U·diag(σ)·Vᵀ` of an `m×n` real matrix (`m ≥ n` is handled
/// directly; `m < n` is handled by decomposing the transpose).
///
/// Singular values are sorted in decreasing order; `U` is `m×n`, `V` is `n×n`.
///
/// # Example
/// ```
/// use vaem_numeric::dense::{DMatrix, Svd};
/// let a = DMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]);
/// let svd = Svd::new(&a)?;
/// assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
/// assert!((svd.singular_values()[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Svd {
    u: DMatrix<f64>,
    singular_values: Vec<f64>,
    v: DMatrix<f64>,
}

impl Svd {
    /// Maximum number of one-sided Jacobi sweeps.
    const MAX_SWEEPS: usize = 60;

    /// Computes the thin SVD of `a`.
    ///
    /// # Errors
    /// Returns [`NumericError::NoConvergence`] if the Jacobi sweeps fail to
    /// orthogonalize the columns.
    pub fn new(a: &DMatrix<f64>) -> Result<Self, NumericError> {
        if a.rows() >= a.cols() {
            Self::tall(a)
        } else {
            // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ
            let t = Self::tall(&a.transpose())?;
            Ok(Self {
                u: t.v,
                singular_values: t.singular_values,
                v: t.u,
            })
        }
    }

    fn tall(a: &DMatrix<f64>) -> Result<Self, NumericError> {
        let m = a.rows();
        let n = a.cols();
        // One-sided Jacobi works column-by-column, so hold each column of A
        // (and of V) as a contiguous buffer: the Gram dot products and the
        // plane rotations then stream linearly instead of striding through a
        // row-major matrix, which dominates the runtime at wPFA sizes
        // (n = 128 ⇒ 1 KiB stride per element with row-major storage).
        let mut u_cols: Vec<Vec<f64>> = (0..n).map(|j| a.column(j)).collect();
        let mut v_cols: Vec<Vec<f64>> = (0..n)
            .map(|j| {
                let mut e = vec![0.0; n];
                e[j] = 1.0;
                e
            })
            .collect();

        let tol = 1e-14;
        let mut converged = false;
        for _sweep in 0..Self::MAX_SWEEPS {
            let mut rotated = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    let (head, tail) = u_cols.split_at_mut(q);
                    let up = &mut head[p];
                    let uq = &mut tail[0];
                    // 2x2 Gram entries for columns p and q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for (&x, &y) in up.iter().zip(uq.iter()) {
                        app += x * x;
                        aqq += y * y;
                        apq += x * y;
                    }
                    // Columns are "orthogonal enough" relative to their norms.
                    if apq.abs() <= tol * (app * aqq).sqrt().max(1e-300) {
                        continue;
                    }
                    rotated = true;
                    // Jacobi rotation that annihilates the (p, q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for (x, y) in up.iter_mut().zip(uq.iter_mut()) {
                        let uip = *x;
                        let uiq = *y;
                        *x = c * uip - s * uiq;
                        *y = s * uip + c * uiq;
                    }
                    let (vhead, vtail) = v_cols.split_at_mut(q);
                    let vp = &mut vhead[p];
                    let vq = &mut vtail[0];
                    for (x, y) in vp.iter_mut().zip(vq.iter_mut()) {
                        let vip = *x;
                        let viq = *y;
                        *x = c * vip - s * viq;
                        *y = s * vip + c * viq;
                    }
                }
            }
            if !rotated {
                converged = true;
                break;
            }
        }
        if !converged {
            // One last check: columns may already be orthogonal enough.
            // (Jacobi typically converges; report failure otherwise.)
            return Err(NumericError::NoConvergence {
                iterations: Self::MAX_SWEEPS,
            });
        }

        // Column norms are the singular values; normalize U.
        let mut sv: Vec<(f64, usize)> = u_cols
            .iter()
            .enumerate()
            .map(|(j, col)| {
                let norm: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
                (norm, j)
            })
            .collect();
        sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

        let singular_values: Vec<f64> = sv.iter().map(|(s, _)| *s).collect();
        let mut u_sorted = DMatrix::<f64>::zeros(m, n);
        let mut v_sorted = DMatrix::<f64>::zeros(n, n);
        for (new_j, (sigma, old_j)) in sv.iter().enumerate() {
            let denom = if *sigma > 0.0 { *sigma } else { 1.0 };
            for i in 0..m {
                u_sorted[(i, new_j)] = u_cols[*old_j][i] / denom;
            }
            for i in 0..n {
                v_sorted[(i, new_j)] = v_cols[*old_j][i];
            }
        }

        Ok(Self {
            u: u_sorted,
            singular_values,
            v: v_sorted,
        })
    }

    /// Left singular vectors (`m×n`, orthonormal columns).
    pub fn u(&self) -> &DMatrix<f64> {
        &self.u
    }

    /// Singular values in decreasing order.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Right singular vectors (`n×n`, orthonormal columns).
    pub fn v(&self) -> &DMatrix<f64> {
        &self.v
    }

    /// Number of singular values needed to capture `fraction` of the total
    /// energy `Σσᵢ` (the wPFA truncation criterion).
    pub fn count_for_energy(&self, fraction: f64) -> usize {
        let total: f64 = self.singular_values.iter().sum();
        if total == 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, s) in self.singular_values.iter().enumerate() {
            acc += s;
            if acc >= fraction * total {
                return i + 1;
            }
        }
        self.singular_values.len()
    }

    /// Reconstructs the (thin) matrix `U·diag(σ)·Vᵀ`, mainly for testing.
    pub fn reconstruct(&self) -> DMatrix<f64> {
        let sigma = DMatrix::from_diagonal(&self.singular_values);
        self.u.matmul(&sigma).matmul(&self.v.transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = DMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -2.0], vec![0.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.singular_values()[0] - 3.0).abs() < 1e-12);
        assert!((svd.singular_values()[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = DMatrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![-1.0, 0.3, 2.0],
            vec![0.7, 1.1, -0.2],
            vec![2.0, -0.4, 0.9],
        ]);
        let svd = Svd::new(&a).unwrap();
        assert!(svd.reconstruct().sub(&a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn u_and_v_columns_are_orthonormal() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u().transpose().matmul(svd.u());
        let vtv = svd.v().transpose().matmul(svd.v());
        assert!(utu.sub(&DMatrix::identity(2)).frobenius_norm() < 1e-10);
        assert!(vtv.sub(&DMatrix::identity(2)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn wide_matrix_is_handled_via_transpose() {
        let a = DMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.u().rows(), 2);
        assert_eq!(svd.v().rows(), 3);
        assert!(svd.reconstruct().sub(&a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn energy_truncation() {
        let a = DMatrix::from_diagonal(&[10.0, 1.0, 0.1]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.count_for_energy(0.85), 1);
        assert_eq!(svd.count_for_energy(0.999), 3);
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram_matrix() {
        let a = DMatrix::from_rows(&[
            vec![0.5, 1.5, -0.3],
            vec![1.1, 0.2, 0.8],
            vec![-0.9, 0.4, 1.2],
            vec![0.3, -0.7, 0.6],
        ]);
        let svd = Svd::new(&a).unwrap();
        let gram = a.transpose().matmul(&a);
        let eig = super::super::SymmetricEigen::new(&gram).unwrap();
        for (s, l) in svd.singular_values().iter().zip(eig.eigenvalues().iter()) {
            assert!((s * s - l).abs() < 1e-9);
        }
    }
}
