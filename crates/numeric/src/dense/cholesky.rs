//! Cholesky factorization of real symmetric positive-definite matrices.
//!
//! Used to sample correlated Gaussian variation fields: if `Σ = L·Lᵀ` then
//! `ξ = L·z` has covariance `Σ` for `z ~ N(0, I)`.

use super::DMatrix;
use crate::NumericError;

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Example
/// ```
/// use vaem_numeric::dense::{Cholesky, DMatrix};
/// let a = DMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let chol = Cholesky::new(&a)?;
/// let l = chol.factor();
/// let recon = l.matmul(&l.transpose());
/// assert!((recon[(0, 1)] - 2.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMatrix<f64>,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] for non-square input.
    /// * [`NumericError::NotPositiveDefinite`] when a pivot is not positive.
    pub fn new(a: &DMatrix<f64>) -> Result<Self, NumericError> {
        Self::with_jitter(a, 0.0)
    }

    /// Factorizes `A + jitter·I`.
    ///
    /// Covariance matrices assembled from smooth correlation kernels are often
    /// numerically semi-definite; a tiny diagonal `jitter` (relative to the
    /// mean diagonal) restores definiteness without visibly changing samples.
    ///
    /// # Errors
    /// Same conditions as [`Cholesky::new`].
    pub fn with_jitter(a: &DMatrix<f64>, jitter: f64) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                detail: format!(
                    "Cholesky requires a square matrix, got {}x{}",
                    a.rows(),
                    a.cols()
                ),
            });
        }
        let n = a.rows();
        let mut l = DMatrix::<f64>::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                let mut sum = a[(i, j)];
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NumericError::NotPositiveDefinite { column: j });
                    }
                    l[(j, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Factorizes with an automatically chosen jitter: retries with a jitter
    /// growing from `1e-12·trace/n` by factors of 10 until the factorization
    /// succeeds (at most 8 attempts).
    ///
    /// # Errors
    /// Returns the last failure if all attempts fail.
    pub fn new_regularized(a: &DMatrix<f64>) -> Result<Self, NumericError> {
        match Self::new(a) {
            Ok(c) => return Ok(c),
            Err(NumericError::DimensionMismatch { detail }) => {
                return Err(NumericError::DimensionMismatch { detail })
            }
            // vaem-lint: allow(E2) intentional fall-through to the jittered retry ladder; the final attempt propagates the error
            Err(_) => {}
        }
        let n = a.rows().max(1);
        let mean_diag = (0..a.rows()).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64;
        let mut jitter = (mean_diag.max(1e-300)) * 1e-12;
        let mut last = NumericError::NotPositiveDefinite { column: 0 };
        for _ in 0..8 {
            match Self::with_jitter(a, jitter) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            jitter *= 10.0;
        }
        Err(last)
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &DMatrix<f64> {
        &self.l
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Applies the factor to a standard-normal vector: returns `L·z`.
    ///
    /// # Panics
    /// Panics if `z.len()` differs from the factor dimension.
    pub fn correlate(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.dim(), "correlate: dimension mismatch");
        let n = self.dim();
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..=i {
                acc += self.l[(i, j)] * z[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Solves `A·x = b` using the factorization.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when `b.len()` is wrong.
    // vaem-lint: cold allocates the solution it returns; once per dense solve, not per element
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                detail: format!("rhs length {} does not match dimension {}", b.len(), n),
            });
        }
        // Forward solve L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Backward solve Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (`2·Σ log L_ii`).
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DMatrix<f64> {
        DMatrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
    }

    #[test]
    fn reconstructs_original_matrix() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let recon = l.matmul(&l.transpose());
        assert!(recon.sub(&a).frobenius_norm() < 1e-12);
    }

    #[test]
    fn solve_is_consistent_with_matvec() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = c.solve(&b).unwrap();
        for (l, r) in x.iter().zip(x_true.iter()) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = DMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::new(&a),
            Err(NumericError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn regularized_accepts_semi_definite() {
        // Rank-1 covariance (semi-definite).
        let a = DMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let c = Cholesky::new_regularized(&a).unwrap();
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn correlate_reproduces_factor_columns() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let e0 = c.correlate(&[1.0, 0.0, 0.0]);
        assert!((e0[0] - c.factor()[(0, 0)]).abs() < 1e-15);
        assert!((e0[2] - c.factor()[(2, 0)]).abs() < 1e-15);
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let det = a.lu().unwrap().det();
        assert!((c.log_det() - det.ln()).abs() < 1e-10);
    }
}
