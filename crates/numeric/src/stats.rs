//! Sample statistics used when comparing the SSCM model against Monte Carlo.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
/// ```
/// use vaem_numeric::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n − 1 denominator).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Population variance (n denominator).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sample mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance of a slice (0 for fewer than two samples).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0)
}

/// Unbiased sample standard deviation of a slice.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Sample covariance between two equally long slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sample_covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "sample_covariance: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys.iter())
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() as f64 - 1.0)
}

/// Relative error `|a − b| / max(|b|, floor)`, the metric used for the
/// "error < 1 %" comparisons in the paper's tables.
pub fn relative_error(a: f64, b: f64, floor: f64) -> f64 {
    (a - b).abs() / b.abs().max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_slice_stats() {
        let data = [1.3, -0.7, 2.9, 0.0, 4.2, -1.1];
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&data)).abs() < 1e-12);
        assert!((rs.sample_variance() - sample_variance(&data)).abs() < 1e-12);
        assert_eq!(rs.count(), data.len());
        assert_eq!(rs.min(), -1.1);
        assert_eq!(rs.max(), 4.2);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in data.iter().enumerate() {
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_identical_series_is_variance() {
        let data = [0.4, 1.7, -2.2, 3.1];
        assert!((sample_covariance(&data, &data) - sample_variance(&data)).abs() < 1e-12);
    }

    #[test]
    fn relative_error_uses_floor_for_tiny_reference() {
        assert_eq!(relative_error(1e-12, 0.0, 1e-6), 1e-6);
        assert!((relative_error(1.01, 1.0, 1e-30) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
        let rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.sample_variance(), 0.0);
    }
}
