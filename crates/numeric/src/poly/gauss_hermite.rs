//! Gauss–Hermite quadrature for the standard normal weight.
//!
//! Rules are built with the Golub–Welsch algorithm: the nodes are the
//! eigenvalues of the symmetric tridiagonal Jacobi matrix of the Hermite
//! recurrence, and the weights follow from the first components of the
//! eigenvectors. The rules integrate `E[f(ζ)]` for `ζ ~ N(0, 1)` exactly for
//! polynomials of degree `≤ 2n − 1`.

use crate::dense::{DMatrix, SymmetricEigen};
use crate::NumericError;

/// An `n`-point Gauss–Hermite rule in the probabilists' convention
/// (weight function = standard normal PDF, weights sum to one).
///
/// # Example
/// ```
/// use vaem_numeric::poly::GaussHermite;
/// let rule = GaussHermite::new(5)?;
/// // E[ζ²] = 1 for ζ ~ N(0,1)
/// let second_moment: f64 = rule
///     .nodes()
///     .iter()
///     .zip(rule.weights())
///     .map(|(&x, &w)| w * x * x)
///     .sum();
/// assert!((second_moment - 1.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussHermite {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussHermite {
    /// Builds the `n`-point rule.
    ///
    /// # Errors
    /// * [`NumericError::InvalidArgument`] if `n == 0`.
    /// * [`NumericError::NoConvergence`] if the eigen-solve fails (not
    ///   expected for the small orders used here).
    pub fn new(n: usize) -> Result<Self, NumericError> {
        if n == 0 {
            return Err(NumericError::InvalidArgument {
                detail: "Gauss-Hermite rule needs at least one point".to_string(),
            });
        }
        if n == 1 {
            return Ok(Self {
                nodes: vec![0.0],
                weights: vec![1.0],
            });
        }
        // Jacobi matrix of the probabilists' Hermite recurrence:
        // alpha_k = 0, beta_k = k  =>  off-diagonal entries sqrt(k).
        let jacobi = DMatrix::from_fn(n, n, |i, j| {
            if i + 1 == j {
                ((j) as f64).sqrt()
            } else if j + 1 == i {
                ((i) as f64).sqrt()
            } else {
                0.0
            }
        });
        let eig = SymmetricEigen::new(&jacobi)?;
        // Eigenvalues are sorted decreasing; re-sort nodes increasing for a
        // conventional presentation.
        let mut pairs: Vec<(f64, f64)> = eig
            .eigenvalues()
            .iter()
            .enumerate()
            .map(|(j, &node)| {
                let v0 = eig.eigenvectors()[(0, j)];
                (node, v0 * v0) // mu_0 = 1 for the normal weight
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // Symmetrize: the exact nodes are symmetric about zero.
        let nodes: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
        let mut weights: Vec<f64> = pairs.iter().map(|(_, w)| *w).collect();
        // Normalize weights to sum exactly to one (they already do up to
        // round-off; this keeps downstream statistics exactly unbiased for
        // constants).
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }

        Ok(Self { nodes, weights })
    }

    /// Number of quadrature points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for the (impossible) empty rule; provided for API
    /// completeness alongside [`GaussHermite::len`].
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Quadrature nodes in increasing order.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Quadrature weights (sum to one).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates `f` against the standard normal density.
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(self.weights.iter())
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_point_rule_is_the_mean() {
        let r = GaussHermite::new(1).unwrap();
        assert_eq!(r.nodes(), &[0.0]);
        assert_eq!(r.weights(), &[1.0]);
    }

    #[test]
    fn three_point_rule_matches_known_values() {
        let r = GaussHermite::new(3).unwrap();
        // Probabilists' 3-point rule: nodes -sqrt(3), 0, sqrt(3); weights 1/6, 2/3, 1/6.
        let s3 = 3.0_f64.sqrt();
        assert!((r.nodes()[0] + s3).abs() < 1e-10);
        assert!(r.nodes()[1].abs() < 1e-10);
        assert!((r.nodes()[2] - s3).abs() < 1e-10);
        assert!((r.weights()[0] - 1.0 / 6.0).abs() < 1e-10);
        assert!((r.weights()[1] - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn integrates_moments_of_standard_normal() {
        let r = GaussHermite::new(6).unwrap();
        // Odd moments vanish, E[x^2]=1, E[x^4]=3, E[x^6]=15.
        assert!(r.integrate(|x| x).abs() < 1e-12);
        assert!((r.integrate(|x| x * x) - 1.0).abs() < 1e-12);
        assert!(r.integrate(|x| x * x * x).abs() < 1e-11);
        assert!((r.integrate(|x| x.powi(4)) - 3.0).abs() < 1e-10);
        assert!((r.integrate(|x| x.powi(6)) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn degree_of_exactness_is_2n_minus_1() {
        let r = GaussHermite::new(3).unwrap();
        // Degree 5 is exact: E[x^4] = 3.
        assert!((r.integrate(|x| x.powi(4)) - 3.0).abs() < 1e-10);
        // Degree 6 is NOT exact for a 3-point rule: E[x^6] = 15, rule gives 9... != 15.
        assert!((r.integrate(|x| x.powi(6)) - 15.0).abs() > 1.0);
    }

    #[test]
    fn weights_sum_to_one_and_nodes_are_symmetric() {
        for n in 2..=9 {
            let r = GaussHermite::new(n).unwrap();
            let sum: f64 = r.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-13);
            for k in 0..n {
                assert!(
                    (r.nodes()[k] + r.nodes()[n - 1 - k]).abs() < 1e-8,
                    "nodes not symmetric for n={n}"
                );
            }
        }
    }

    #[test]
    fn zero_points_is_an_error() {
        assert!(GaussHermite::new(0).is_err());
    }
}
