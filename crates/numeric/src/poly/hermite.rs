//! Probabilists' Hermite polynomials `He_n`.
//!
//! These satisfy the three-term recurrence
//! `He_{n+1}(x) = x·He_n(x) − n·He_{n−1}(x)` with `He_0 = 1`, `He_1 = x`, and
//! are orthogonal with respect to the standard normal density:
//! `E[He_m(ζ)·He_n(ζ)] = n!·δ_{mn}` for `ζ ~ N(0, 1)`.
//!
//! The paper's PCE (eq. 4) uses products of these 1-D polynomials up to total
//! order 2; the normalization `⟨He_n²⟩ = n!` enters the variance formula
//! (eq. 5).

/// Evaluates the probabilists' Hermite polynomial `He_n(x)`.
///
/// # Example
/// ```
/// use vaem_numeric::poly::hermite_value;
/// assert_eq!(hermite_value(0, 1.5), 1.0);
/// assert_eq!(hermite_value(1, 1.5), 1.5);
/// assert_eq!(hermite_value(2, 1.5), 1.5_f64 * 1.5 - 1.0);
/// ```
pub fn hermite_value(n: usize, x: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => x,
        _ => {
            let mut prev = 1.0; // He_0
            let mut curr = x; // He_1
            for k in 1..n {
                let next = x * curr - (k as f64) * prev;
                prev = curr;
                curr = next;
            }
            curr
        }
    }
}

/// Evaluates `He_0(x), …, He_max_order(x)` in one pass.
///
/// Returns a vector of length `max_order + 1`.
pub fn hermite_values_upto(max_order: usize, x: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(max_order + 1);
    out.push(1.0);
    if max_order == 0 {
        return out;
    }
    out.push(x);
    for k in 1..max_order {
        let next = x * out[k] - (k as f64) * out[k - 1];
        out.push(next);
    }
    out
}

/// Squared norm `⟨He_n, He_n⟩ = n!` under the standard normal weight.
///
/// # Panics
/// Panics if `n > 170` (the factorial overflows `f64`), far beyond the
/// second-order chaos used here.
pub fn hermite_norm_sqr(n: usize) -> f64 {
    assert!(n <= 170, "hermite_norm_sqr: order {n} too large");
    let mut f = 1.0;
    for k in 2..=n {
        f *= k as f64;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_order_closed_forms() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
            assert_eq!(hermite_value(0, x), 1.0);
            assert_eq!(hermite_value(1, x), x);
            assert!((hermite_value(2, x) - (x * x - 1.0)).abs() < 1e-14);
            assert!((hermite_value(3, x) - (x * x * x - 3.0 * x)).abs() < 1e-13);
            assert!((hermite_value(4, x) - (x.powi(4) - 6.0 * x * x + 3.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn batch_evaluation_matches_single() {
        let x = 0.83;
        let vals = hermite_values_upto(6, x);
        for (n, v) in vals.iter().enumerate() {
            assert!((v - hermite_value(n, x)).abs() < 1e-12);
        }
        assert_eq!(hermite_values_upto(0, x), vec![1.0]);
    }

    #[test]
    fn norms_are_factorials() {
        assert_eq!(hermite_norm_sqr(0), 1.0);
        assert_eq!(hermite_norm_sqr(1), 1.0);
        assert_eq!(hermite_norm_sqr(2), 2.0);
        assert_eq!(hermite_norm_sqr(3), 6.0);
        assert_eq!(hermite_norm_sqr(5), 120.0);
    }

    #[test]
    fn recurrence_holds() {
        let x = 1.234;
        for n in 1..8 {
            let lhs = hermite_value(n + 1, x);
            let rhs = x * hermite_value(n, x) - (n as f64) * hermite_value(n - 1, x);
            assert!((lhs - rhs).abs() < 1e-10);
        }
    }

    #[test]
    fn orthogonality_under_gauss_hermite_quadrature() {
        // Verified through the quadrature module: E[He_m He_n] = n! δ_mn.
        let rule = crate::poly::GaussHermite::new(8).unwrap();
        for m in 0..4 {
            for n in 0..4 {
                let integral: f64 = rule
                    .nodes()
                    .iter()
                    .zip(rule.weights().iter())
                    .map(|(&x, &w)| w * hermite_value(m, x) * hermite_value(n, x))
                    .sum();
                let expected = if m == n { hermite_norm_sqr(n) } else { 0.0 };
                assert!(
                    (integral - expected).abs() < 1e-9,
                    "m={m} n={n} got {integral} expected {expected}"
                );
            }
        }
    }
}
