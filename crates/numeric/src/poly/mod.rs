//! Orthogonal polynomials and quadrature rules.
//!
//! The spectral stochastic collocation method expands the solver outputs in
//! probabilists' Hermite polynomials (orthogonal under the standard normal
//! weight) and integrates with Gauss–Hermite quadrature; both live here.

mod gauss_hermite;
mod hermite;

pub use gauss_hermite::GaussHermite;
pub use hermite::{hermite_norm_sqr, hermite_value, hermite_values_upto};
