//! Error type shared by the dense numerical kernels.

use std::fmt;

/// Errors produced by the dense factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A factorization encountered an (numerically) singular matrix.
    Singular {
        /// Pivot index at which the breakdown was detected.
        pivot: usize,
    },
    /// A matrix that must be positive definite failed the Cholesky test.
    NotPositiveDefinite {
        /// Column at which a non-positive pivot appeared.
        column: usize,
    },
    /// Dimensions of the operands do not match.
    DimensionMismatch {
        /// Human-readable description of the expected/actual shapes.
        detail: String,
    },
    /// An iterative kernel (Jacobi eigen/SVD) failed to converge.
    NoConvergence {
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside the domain of the routine.
    InvalidArgument {
        /// Human-readable description of the offending argument.
        detail: String,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumericError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            NumericError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            NumericError::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} sweeps")
            }
            NumericError::InvalidArgument { detail } => {
                write!(f, "invalid argument: {detail}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NumericError::Singular { pivot: 3 };
        assert_eq!(e.to_string(), "matrix is singular at pivot 3");
        let e = NumericError::DimensionMismatch {
            detail: "expected 3x3, got 2x3".to_string(),
        };
        assert!(e.to_string().contains("expected 3x3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NumericError>();
    }
}
