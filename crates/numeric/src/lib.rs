//! Dense numerical kernels for the variation-aware EM–semiconductor solver.
//!
//! This crate is the lowest layer of the VAEM workspace. It provides, from
//! scratch (no external linear-algebra dependencies):
//!
//! * [`Complex64`] — double-precision complex arithmetic used by the
//!   frequency-domain coupled solver.
//! * [`Scalar`] — a small trait abstracting over `f64` and [`Complex64`] so
//!   that matrix assembly and linear solvers can be written once.
//! * [`dense`] — dense matrices plus LU, Cholesky, QR, symmetric Jacobi
//!   eigendecomposition and one-sided Jacobi SVD (used by the PFA/wPFA
//!   variable-reduction step and the Gauss–Hermite rule construction).
//! * [`poly`] — probabilists' Hermite polynomials and Gauss–Hermite
//!   quadrature rules (the backbone of the spectral stochastic collocation
//!   method).
//! * [`stats`] — running statistics (Welford), sample moments and comparison
//!   helpers used when comparing SSCM against Monte Carlo.
//!
//! # Example
//!
//! ```
//! use vaem_numeric::{Complex64, dense::DMatrix};
//!
//! let a = DMatrix::from_rows(&[
//!     vec![Complex64::new(2.0, 0.0), Complex64::new(0.0, 1.0)],
//!     vec![Complex64::new(0.0, -1.0), Complex64::new(3.0, 0.0)],
//! ]);
//! let b = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 0.0)];
//! let lu = a.lu().expect("non-singular");
//! let x = lu.solve(&b).expect("solve");
//! assert!((a.matvec(&x)[0] - b[0]).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod complex;
pub mod dense;
pub mod error;
pub mod panel;
pub mod poly;
pub mod scalar;
pub mod stats;
pub mod vecops;

pub use complex::Complex64;
pub use error::NumericError;
pub use scalar::Scalar;
