//! Dense panel micro-kernels for the supernode-blocked sparse factorization.
//!
//! A supernodal numeric LU phase eliminates a *run* of consecutive pivot
//! columns with identical sub-diagonal structure against one target column:
//! per tail row `t` the scatter target `x[rows[t]]` receives one subtracted
//! product per run member. The hot loop is therefore a fused multi-column
//! scatter `x[rows[t]] -= Σᵢ coeffs[i]·cols[i][t]`, which this module
//! provides for panel widths 1–4.
//!
//! Bitwise contract (what the factorization's determinism rests on): for
//! every target element the products are subtracted **one at a time, in
//! member order** — `((x − c₀·v₀) − c₁·v₁) − …` — exactly the operation
//! sequence a scalar member-by-member elimination performs on that element.
//! Fusing only changes *when* the intermediate value sits in a register
//! instead of memory, never the sequence of floating-point operations, so
//! the fused kernel is bit-identical to the scalar one. The (default-on)
//! `fast-vecops` feature selects a variant that additionally unrolls four
//! independent *rows* per iteration; distinct rows are independent scatter
//! targets, so that reordering is bitwise-neutral too (the property tests
//! below pin both claims).

use crate::Scalar;

/// Fused multi-column scatter-subtract `x[rows[t]] -= Σᵢ coeffs[i]·cols[i][t]`
/// for a panel of 1–4 coefficient/column pairs.
///
/// Per target element the member products are subtracted sequentially in
/// slice order, which keeps the result bit-identical to applying the
/// members one column at a time (see the module docs).
///
/// `rows` must not contain duplicate indices: the row-unrolled variant
/// keeps four targets in registers at once, so aliased targets would drop
/// updates. Factor-column structures (sorted, strictly increasing rows)
/// satisfy this by construction.
///
/// # Panics
/// Panics when `coeffs` and `cols` differ in length, when the panel width
/// is outside `1..=4`, when any column's length differs from `rows`, or
/// when a row index is out of bounds for `x`.
pub fn scatter_fused_sub<T: Scalar>(x: &mut [T], rows: &[usize], coeffs: &[T], cols: &[&[T]]) {
    assert_eq!(
        coeffs.len(),
        cols.len(),
        "scatter_fused_sub: one coefficient per column"
    );
    assert!(
        (1..=4).contains(&coeffs.len()),
        "scatter_fused_sub: panel width {} outside 1..=4",
        coeffs.len()
    );
    for col in cols {
        assert_eq!(
            col.len(),
            rows.len(),
            "scatter_fused_sub: column/row length mismatch"
        );
    }
    #[cfg(feature = "fast-vecops")]
    {
        match coeffs.len() {
            1 => kernels::fused_unrolled::<T, 1>(x, rows, coeffs, cols),
            2 => kernels::fused_unrolled::<T, 2>(x, rows, coeffs, cols),
            3 => kernels::fused_unrolled::<T, 3>(x, rows, coeffs, cols),
            _ => kernels::fused_unrolled::<T, 4>(x, rows, coeffs, cols),
        }
    }
    #[cfg(not(feature = "fast-vecops"))]
    {
        kernels::fused_scalar(x, rows, coeffs, cols);
    }
}

/// The scalar and row-unrolled implementations behind [`scatter_fused_sub`].
/// Both variants are always compiled (the property tests compare them
/// directly); the feature flag only selects which one the public function
/// dispatches to, hence the `dead_code` allowance on the de-selected half.
#[allow(dead_code)]
mod kernels {
    use crate::Scalar;

    pub fn fused_scalar<T: Scalar>(x: &mut [T], rows: &[usize], coeffs: &[T], cols: &[&[T]]) {
        for (t, &r) in rows.iter().enumerate() {
            let mut acc = x[r];
            for (c, col) in coeffs.iter().zip(cols.iter()) {
                acc -= *c * col[t];
            }
            x[r] = acc;
        }
    }

    /// Four independent row targets per iteration; per target the member
    /// subtractions stay in slice order, so each element sees the same
    /// floating-point sequence as [`fused_scalar`].
    pub fn fused_unrolled<T: Scalar, const W: usize>(
        x: &mut [T],
        rows: &[usize],
        coeffs: &[T],
        cols: &[&[T]],
    ) {
        let c: [T; W] = std::array::from_fn(|i| coeffs[i]);
        let n = rows.len();
        let main = n - n % 4;
        let mut t = 0;
        while t < main {
            let (r0, r1, r2, r3) = (rows[t], rows[t + 1], rows[t + 2], rows[t + 3]);
            let mut a0 = x[r0];
            let mut a1 = x[r1];
            let mut a2 = x[r2];
            let mut a3 = x[r3];
            for (i, &ci) in c.iter().enumerate() {
                let col = cols[i];
                a0 -= ci * col[t];
                a1 -= ci * col[t + 1];
                a2 -= ci * col[t + 2];
                a3 -= ci * col[t + 3];
            }
            x[r0] = a0;
            x[r1] = a1;
            x[r2] = a2;
            x[r3] = a3;
            t += 4;
        }
        for t in main..n {
            let mut acc = x[rows[t]];
            for (i, &ci) in c.iter().enumerate() {
                acc -= ci * cols[i][t];
            }
            x[rows[t]] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;
    use proptest::prelude::*;

    /// Reference: apply the members one column at a time, the way a scalar
    /// column-by-column elimination would.
    fn member_major<T: Scalar>(x: &mut [T], rows: &[usize], coeffs: &[T], cols: &[&[T]]) {
        for (c, col) in coeffs.iter().zip(cols.iter()) {
            for (t, &r) in rows.iter().enumerate() {
                x[r] -= *c * col[t];
            }
        }
    }

    fn vector(seed: u64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (seed as f64 * 0.61 + i as f64 * 1.37).sin() * 3.0)
            .collect()
    }

    #[test]
    fn width_one_matches_a_plain_scatter_axpy() {
        let rows = [4usize, 1, 7, 2, 9, 0];
        let col: Vec<f64> = (0..6).map(|i| i as f64 + 0.5).collect();
        let mut x = vec![1.0f64; 10];
        let mut expect = x.clone();
        scatter_fused_sub(&mut x, &rows, &[2.0], &[&col]);
        for (t, &r) in rows.iter().enumerate() {
            expect[r] -= 2.0 * col[t];
        }
        assert_eq!(x, expect);
    }

    #[test]
    #[should_panic(expected = "panel width")]
    fn zero_width_panics() {
        let mut x = vec![0.0f64; 2];
        scatter_fused_sub::<f64>(&mut x, &[], &[], &[]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Both kernel variants, at every width, are bit-identical to the
        /// member-major scalar elimination they replace.
        #[test]
        fn fused_variants_are_bitwise_identical_to_member_major(
            seed in 0u64..10_000,
            len in 0usize..33,
            width in 1usize..5,
        ) {
            // Distinct target rows in scattered order.
            let n_x = 4 * len.max(1) + 1;
            let rows: Vec<usize> = (0..len).map(|t| (t * 7 + seed as usize) % n_x).collect::<std::collections::BTreeSet<_>>().into_iter().collect();
            let len = rows.len();
            let coeffs: Vec<f64> = (0..width).map(|i| vector(seed.wrapping_add(i as u64), 1)[0]).collect();
            let col_data: Vec<Vec<f64>> =
                (0..width).map(|i| vector(seed.wrapping_mul(3).wrapping_add(i as u64), len)).collect();
            let cols: Vec<&[f64]> = col_data.iter().map(|c| c.as_slice()).collect();
            let base = vector(seed.wrapping_add(99), n_x);

            let mut reference = base.clone();
            member_major(&mut reference, &rows, &coeffs, &cols);
            let mut scalar = base.clone();
            kernels::fused_scalar(&mut scalar, &rows, &coeffs, &cols);
            let mut unrolled = base.clone();
            match width {
                1 => kernels::fused_unrolled::<f64, 1>(&mut unrolled, &rows, &coeffs, &cols),
                2 => kernels::fused_unrolled::<f64, 2>(&mut unrolled, &rows, &coeffs, &cols),
                3 => kernels::fused_unrolled::<f64, 3>(&mut unrolled, &rows, &coeffs, &cols),
                _ => kernels::fused_unrolled::<f64, 4>(&mut unrolled, &rows, &coeffs, &cols),
            }
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&scalar), bits(&reference));
            prop_assert_eq!(bits(&unrolled), bits(&reference));
        }

        /// Same pinning for complex panels (the AC-path scalar type).
        #[test]
        fn complex_fused_variants_match_member_major(
            seed in 0u64..10_000,
            len in 0usize..21,
            width in 1usize..5,
        ) {
            let rows: Vec<usize> = (0..len).collect();
            let cvec = |s: u64| -> Vec<Complex64> {
                vector(s, len).into_iter().zip(vector(s.wrapping_add(5), len)).map(|(a, b)| Complex64::new(a, b)).collect()
            };
            let coeffs: Vec<Complex64> = (0..width).map(|i| Complex64::new(
                (seed as f64 + i as f64).sin(), (seed as f64 - i as f64).cos())).collect();
            let col_data: Vec<Vec<Complex64>> = (0..width).map(|i| cvec(seed.wrapping_add(31 * i as u64))).collect();
            let cols: Vec<&[Complex64]> = col_data.iter().map(|c| c.as_slice()).collect();
            let base = cvec(seed.wrapping_add(77));

            let mut reference = base.clone();
            member_major(&mut reference, &rows, &coeffs, &cols);
            let mut fused = base.clone();
            scatter_fused_sub(&mut fused, &rows, &coeffs, &cols);
            let bits = |v: &[Complex64]| v.iter().flat_map(|x| [x.re.to_bits(), x.im.to_bits()]).collect::<Vec<_>>();
            prop_assert_eq!(bits(&fused), bits(&reference));
        }
    }
}
