//! Double-precision complex arithmetic.
//!
//! The frequency-domain coupled A–V system (paper eqs. (1)–(3)) is
//! complex-valued because of the `jω` terms. We implement a small,
//! self-contained complex type rather than pulling in an external crate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
/// ```
/// use vaem_numeric::Complex64;
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn from_imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Creates a complex number from polar coordinates `(r, θ)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Does not panic; returns infinities/NaNs for a zero argument exactly
    /// like `1.0 / 0.0` would.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return Self::ZERO;
        }
        let re = ((r + self.re) * 0.5).max(0.0).sqrt();
        let im_mag = ((r - self.re) * 0.5).max(0.0).sqrt();
        Self::new(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `true` when the modulus is below `tol`.
    #[inline]
    pub fn is_zero_within(self, tol: f64) -> bool {
        self.abs() <= tol
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        Self::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        Self::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self + rhs.re, rhs.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
        let q = a / b;
        assert!(close(q * b, a, 1e-14));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert!(close(z * z.recip(), Complex64::ONE, 1e-14));
    }

    #[test]
    fn sqrt_and_exp() {
        let z = Complex64::new(-1.0, 0.0);
        let s = z.sqrt();
        assert!(close(s, Complex64::I, 1e-14));
        // Euler identity: e^{i pi} = -1
        let e = Complex64::from_imag(std::f64::consts::PI).exp();
        assert!(close(e, Complex64::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_negative_imag_branch() {
        let z = Complex64::new(0.0, -2.0);
        let s = z.sqrt();
        assert!(close(s * s, z, 1e-12));
        assert!(s.im < 0.0);
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex64::new(1.0, 1.0);
        assert_eq!(z * 2.0, Complex64::new(2.0, 2.0));
        assert_eq!(2.0 * z, Complex64::new(2.0, 2.0));
        assert_eq!(z + 1.0, Complex64::new(2.0, 1.0));
        assert_eq!(z / 2.0, Complex64::new(0.5, 0.5));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(4.0, 4.0));
    }
}
