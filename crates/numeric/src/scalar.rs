//! A small scalar abstraction over `f64` and [`Complex64`].
//!
//! The FVM assembly and the sparse solvers are written once and instantiated
//! for real matrices (electrostatic / covariance problems) and complex
//! matrices (frequency-domain coupled solves).

use crate::Complex64;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Field-like scalar used by the generic dense and sparse kernels.
///
/// Implemented for `f64` and [`Complex64`]. The trait is sealed in spirit —
/// downstream crates are not expected to add implementations.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + Default
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a real number.
    fn from_f64(v: f64) -> Self;
    /// Complex conjugate (identity for real scalars).
    fn conj(self) -> Self;
    /// Modulus (absolute value) as a real number.
    fn modulus(self) -> f64;
    /// Squared modulus as a real number.
    fn modulus_sqr(self) -> f64;
    /// Real part.
    fn real(self) -> f64;
    /// Scales by a real factor.
    fn scale(self, s: f64) -> Self;
    /// Returns `true` when the value is finite.
    fn is_finite_scalar(self) -> bool;
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn conj(self) -> Self {
        self
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn modulus_sqr(self) -> f64 {
        self * self
    }
    #[inline]
    fn real(self) -> f64 {
        self
    }
    #[inline]
    fn scale(self, s: f64) -> Self {
        self * s
    }
    #[inline]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for Complex64 {
    #[inline]
    fn zero() -> Self {
        Complex64::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex64::ONE
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        Complex64::from_real(v)
    }
    #[inline]
    fn conj(self) -> Self {
        Complex64::conj(self)
    }
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn modulus_sqr(self) -> f64 {
        self.norm_sqr()
    }
    #[inline]
    fn real(self) -> f64 {
        self.re
    }
    #[inline]
    fn scale(self, s: f64) -> Self {
        Complex64::scale(self, s)
    }
    #[inline]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_quadratic<T: Scalar>(x: T) -> T {
        x * x + T::from_f64(2.0) * x + T::one()
    }

    #[test]
    fn works_for_f64() {
        assert_eq!(generic_quadratic(2.0_f64), 9.0);
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(2.0_f64.conj(), 2.0);
        assert_eq!((-3.0_f64).modulus(), 3.0);
    }

    #[test]
    fn works_for_complex() {
        let x = Complex64::new(0.0, 1.0);
        // (x+1)^2 = x^2 + 2x + 1 = 2i for x = i
        assert_eq!(generic_quadratic(x), Complex64::new(0.0, 2.0));
        assert_eq!(x.modulus(), 1.0);
        assert_eq!(x.real(), 0.0);
    }

    #[test]
    fn scalar_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<f64>();
        assert_send_sync::<Complex64>();
    }
}
