//! Parser round-trip property: for EVERY source file in the workspace,
//! the item tree's spans must slice the original source back together
//! byte-identically (siblings ordered and disjoint, children nested,
//! gaps preserved). A dependency-free xorshift fuzzer then drives the
//! same property over adversarial pseudo-random inputs — the parser's
//! contract is that it never fails, never panics, and never loses bytes,
//! no matter how mangled the input.

use std::path::Path;
use vaem_lint::{lexer, parse};

fn roundtrip(name: &str, source: &str) {
    let lexed = lexer::lex(source);
    let items = parse::parse(&lexed.toks);
    if let Err(e) = parse::check_roundtrip(source, &items) {
        panic!("span round-trip failed for {name}: {e}");
    }
}

#[test]
fn every_workspace_file_round_trips() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = vaem_lint::collect_files(&root).expect("collect workspace files");
    assert!(
        files.len() > 50,
        "workspace walk looks wrong: only {} files",
        files.len()
    );
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel)).expect("read source");
        roundtrip(rel, &source);
    }
}

#[test]
fn fixtures_round_trip_too() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("fixture dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let source = std::fs::read_to_string(&path).expect("read fixture");
            roundtrip(&path.display().to_string(), &source);
            seen += 1;
        }
    }
    assert!(seen >= 10, "expected the seeded fixtures, saw {seen}");
}

/// Deterministic xorshift64* stream — the property-test shim (the
/// workspace is offline, so no proptest crate; the generator is seeded
/// and fully reproducible).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn random_token_soup_never_breaks_the_span_contract() {
    // Fragments chosen to hit every parser path: item keywords, orphan
    // closers, unterminated strings, attribute/visibility prefixes,
    // lifetimes vs char literals, nested groups and raw idents.
    const FRAGMENTS: &[&str] = &[
        "fn ",
        "impl ",
        "mod ",
        "use ",
        "pub ",
        "pub(crate) ",
        "#[inline] ",
        "#![allow(x)] ",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        "<",
        ">",
        "->",
        "=>",
        "::",
        ";",
        ",",
        "where ",
        "for ",
        "const ",
        "unsafe ",
        "extern \"C\" ",
        "async ",
        "trait ",
        "struct ",
        "a",
        "Result<T, E>",
        "'a",
        "'x'",
        "\"str\"",
        "r#\"raw\"#",
        "// line\n",
        "/* block */",
        "b'\\n'",
        "1.5e-3",
        "0xfe",
        "let _ = f();",
        ".ok();",
        "Err(_) => {}",
        "|x| x + 1",
        "r#fn",
        "\u{1F980}",
        "\\",
        "\"unterminated",
    ];
    let mut rng = XorShift(0x5eed_cafe_d00d_f00d);
    for case in 0..500 {
        let len = (rng.next() % 40) as usize;
        let mut src = String::new();
        for _ in 0..len {
            src.push_str(FRAGMENTS[(rng.next() as usize) % FRAGMENTS.len()]);
        }
        roundtrip(&format!("random case {case}"), &src);
    }
}
