//! Fixture: waiver hygiene. A reason-less waiver is W0, a waiver naming an
//! unknown rule is W1, and a waiver that suppresses nothing is W1.

use std::collections::HashMap;

fn reasonless() -> bool {
    let m: HashMap<u8, u8> = HashMap::new(); // vaem-lint: allow(D1)
    m.is_empty()
}

fn unknown_rule() -> usize {
    // vaem-lint: allow(D9) no such rule exists
    42
}

fn unused_waiver() -> usize {
    // vaem-lint: allow(D6) nothing on the next line reads a clock
    7
}
