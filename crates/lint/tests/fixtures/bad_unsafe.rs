//! Fixture: D4 violations. Linted under an allowlisted fake path the file
//! has one commented (clean) unsafe block and one bare (violating) one;
//! under its real path every `unsafe` token violates the allowlist.

fn commented(values: &[f64]) -> f64 {
    // SAFETY: index 0 exists — the caller guarantees a non-empty slice.
    unsafe { *values.get_unchecked(0) }
}

fn bare(values: &[f64]) -> f64 {
    unsafe { *values.get_unchecked(1) }
}

struct Wrapper(*mut f64);
// SAFETY: fixture impl; the pointee is never shared across threads here.
unsafe impl Send for Wrapper {}
unsafe impl Sync for Wrapper {}
