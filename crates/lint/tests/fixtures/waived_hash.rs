//! Fixture: one waived and one unwaived D1 finding. The waiver must
//! suppress exactly the finding on its own line, nothing else.

use std::collections::HashMap;

fn lookup_only() -> Option<usize> {
    let table: HashMap<usize, usize> = HashMap::new(); // vaem-lint: allow(D1) lookup-only map, never iterated
    table.get(&3).copied()
}

fn unwaived() -> bool {
    let other: HashMap<usize, usize> = HashMap::new();
    other.is_empty()
}
