//! Fixture: adversarial lexing. Everything that *looks* like a violation
//! below lives inside strings, comments, raw strings or char literals, so
//! a correct lexer reports zero findings.

/* std::env::var("IN_A_BLOCK_COMMENT")
   /* nested: HashMap::new() and thread::spawn(|| ()) */
   Instant::now() */

// std::env::var("IN_A_LINE_COMMENT"); HashMap::new();

fn strings() -> Vec<String> {
    let cooked = "std::env::var(\"X\") and HashMap::new()".to_string();
    let raw = r#"thread::spawn(|| Instant::now()) and "quoted" text"#.to_string();
    let fenced = r##"a raw string with r#"an inner fence"# inside"##.to_string();
    let bytes = b"HashMap::iter()".to_vec();
    let escaped = "backslash \\ then \"quote\" then HashSet".to_string();
    vec![
        cooked,
        raw,
        fenced,
        String::from_utf8_lossy(&bytes).into_owned(),
        escaped,
    ]
}

fn chars_and_lifetimes<'a>(input: &'a [char]) -> (&'a [char], usize) {
    let quote = '"';
    let escaped_quote = '\'';
    let newline = '\n';
    let count = input
        .iter()
        .filter(|&&c| c == quote || c == escaped_quote || c == newline)
        .count();
    (input, count)
}

fn raw_identifiers() -> usize {
    let r#match = 3usize;
    r#match
}
