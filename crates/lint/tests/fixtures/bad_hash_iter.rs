//! Fixture: D1 violations — hash collections and iteration over them.
//! CI runs the lint binary on this path and expects a nonzero exit.

use std::collections::HashMap;

fn build() -> usize {
    let table: HashMap<String, usize> = HashMap::new();
    let mut total = 0;
    for key in table.keys() {
        total += key.len();
    }
    for (_k, v) in &table {
        total += v;
    }
    total
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_in_tests_is_fine() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.is_empty());
    }
}
