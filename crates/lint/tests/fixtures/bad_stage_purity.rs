//! Seeded P-rule fixture: a cache-keyed stage reaching nondeterminism,
//! interior mutability and I/O through a helper.

// vaem-lint: stage pure digest of the sample inputs (it deliberately is not)
pub fn digest(xs: &[f64]) -> u64 {
    impure(xs.len() as u64)
}

fn impure(seed: u64) -> u64 {
    let rng = SmallRng::seed_from_u64(seed);
    let home = std::env::var("VAEM_HOME").unwrap_or_default();
    let cell = RefCell::new(seed);
    let opened = File::open(&home);
    drop((rng, cell, opened));
    seed + home.len() as u64
}
