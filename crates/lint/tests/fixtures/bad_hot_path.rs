//! Seeded H-rule fixture: a parallel worker reaches allocation, clone
//! and lock sites through one level of calls.

pub fn drive(xs: &mut [f64]) {
    par_map(xs, |x| helper(*x));
}

fn helper(x: f64) -> f64 {
    let mut out = Vec::new();
    out.push(scale(x).clone());
    let label = format!("x = {x}");
    let guard = REGISTRY.lock();
    println!("{label} {guard}");
    out[0] + label.len() as f64
}

fn scale(x: f64) -> f64 {
    let doubled = vec![x; 2]; // vaem-lint: allow(H1) fixture waiver: pins the semantic-merge waiver flow
    doubled[0] * 2.0
}
