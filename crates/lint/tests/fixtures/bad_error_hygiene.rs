//! Seeded E-rule fixture: discarded `Result`s and a swallowed error arm.

fn refresh() -> Result<(), String> {
    Err("stale".to_string())
}

pub fn run() {
    let _ = refresh();
    refresh().ok();
    match refresh() {
        Ok(()) => {}
        Err(_) => {}
    }
    let kept = refresh().ok();
    drop(kept);
}
