//! Fixture: D2 (env read), D3 (thread creation) and D6 (wall clock)
//! violations, one each, plus a standalone-comment waiver for a second
//! env read.

use std::time::Instant;

fn misconfigured() -> Option<String> {
    std::env::var("VAEM_ROGUE_KNOB").ok()
}

fn waived_env() -> Option<String> {
    // vaem-lint: allow(D2) fixture exercising the standalone waiver form
    std::env::var("VAEM_WAIVED_KNOB").ok()
}

fn rogue_thread() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}

fn timed() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
