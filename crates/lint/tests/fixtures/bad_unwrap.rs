//! Fixture: D5 panic-path sites. Linted under a fake solver-library path
//! the three non-test sites count against the per-file budget; the test
//! module's unwrap does not.

fn three_sites(input: Option<usize>, text: &str) -> usize {
    let a = input.unwrap();
    let b: usize = text.parse().expect("fixture parse");
    if a + b == 0 {
        panic!("fixture panic");
    }
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_free() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
