//! Fixture self-tests for the semantic rule families (H/P/E): each seeded
//! fixture pins the exact `(rule, line)` pairs the whole-set pipeline
//! (`lint_sources`) must produce, plus the shape of the call-graph trace
//! in the diagnostic text. The fixtures are fed under library-looking
//! virtual paths because the E rules (and nothing else) are path-scoped.

use std::collections::BTreeMap;
use vaem_lint::{lint_sources, WorkspaceReport};

fn run_fixture(virtual_path: &str, source: &str) -> WorkspaceReport {
    let sources = vec![(virtual_path.to_string(), source.to_string())];
    lint_sources(&sources, &BTreeMap::new(), false)
}

/// The `(rule id, line)` pairs of the unwaived violations, sorted.
fn violation_pairs(report: &WorkspaceReport) -> Vec<(&str, usize)> {
    let mut pairs: Vec<(&str, usize)> = report
        .violations
        .iter()
        .map(|(_, f)| (f.rule.id(), f.line))
        .collect();
    pairs.sort();
    pairs
}

#[test]
fn hot_path_fixture_yields_exact_triples_with_traces() {
    let report = run_fixture(
        "crates/sparse/src/bad_hot_path.rs",
        include_str!("fixtures/bad_hot_path.rs"),
    );
    // The closure on line 5 roots the graph; `helper` (reached directly)
    // allocates on 9 and 11, clones on 10 and hits H3 twice (lock 12,
    // print macro 13). `scale` (reached through `helper`) allocates on 18
    // but carries a trailing waiver.
    assert_eq!(
        violation_pairs(&report),
        vec![("H1", 9), ("H1", 11), ("H2", 10), ("H3", 12), ("H3", 13)]
    );
    // Every H diagnostic must print the path from the parallel root.
    for (_, f) in &report.violations {
        assert!(
            f.message
                .contains("hot path: par_map closure (crates/sparse/src/bad_hot_path.rs:5"),
            "missing root in trace: {}",
            f.message
        );
        assert!(
            f.message.contains("in drive)"),
            "missing enclosing fn in trace: {}",
            f.message
        );
    }
    // The finding in `scale` sits two hops from the root, so its trace
    // names the intermediate callee; waiving works across the semantic
    // merge exactly like for token rules.
    assert_eq!(report.waived.len(), 1);
    let (_, waived, reason) = &report.waived[0];
    assert_eq!((waived.rule.id(), waived.line), ("H1", 18));
    assert!(
        waived.message.contains("→ helper → scale]"),
        "{}",
        waived.message
    );
    assert_eq!(
        reason,
        "fixture waiver: pins the semantic-merge waiver flow"
    );
}

#[test]
fn stage_purity_fixture_yields_exact_triples() {
    let report = run_fixture(
        "crates/core/src/bad_stage_purity.rs",
        include_str!("fixtures/bad_stage_purity.rs"),
    );
    // The stage annotation on line 4 covers `digest`; `impure` (reached
    // from it) constructs an RNG (10), reads the environment (11, which
    // the D2 token rule also flags), builds interior mutability (12) and
    // opens a file (13).
    assert_eq!(
        violation_pairs(&report),
        vec![("D2", 11), ("P1", 10), ("P1", 11), ("P1", 12), ("P1", 13)]
    );
    for (_, f) in &report.violations {
        if f.rule.id() == "P1" {
            assert!(
                f.message.contains("stage path: digest → impure"),
                "missing stage trace: {}",
                f.message
            );
        }
    }
}

#[test]
fn error_hygiene_fixture_yields_exact_triples() {
    let report = run_fixture(
        "crates/core/src/bad_error_hygiene.rs",
        include_str!("fixtures/bad_error_hygiene.rs"),
    );
    // Line 8 discards a Result with `let _ =`, line 9 drops the `.ok()`
    // value, line 12 swallows the error arm. Line 14 BINDS the `.ok()`
    // value, so it must not fire.
    assert_eq!(
        violation_pairs(&report),
        vec![("E1", 8), ("E1", 9), ("E2", 12)]
    );
}

#[test]
fn error_rules_stay_out_of_non_library_paths() {
    // The same error-hygiene source under a bench path produces nothing:
    // E rules audit the solver library crates only.
    let report = run_fixture(
        "crates/bench/src/bad_error_hygiene.rs",
        include_str!("fixtures/bad_error_hygiene.rs"),
    );
    assert_eq!(violation_pairs(&report), vec![]);
}
