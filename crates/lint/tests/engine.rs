//! Fixture self-tests for the vaem-lint rule engine: every fixture under
//! `tests/fixtures/` pins the exact `(rule, line)` pairs it must produce,
//! so a lexer or rule regression shows up as a changed triple, not just a
//! changed count.

use vaem_lint::rules::{lint_source, FileReport};

/// The `(rule id, line)` pairs of a report's unwaived violations, sorted.
fn violation_pairs(report: &FileReport) -> Vec<(&str, usize)> {
    let mut pairs: Vec<(&str, usize)> = report
        .violations
        .iter()
        .map(|f| (f.rule.id(), f.line))
        .collect();
    pairs.sort();
    pairs
}

fn d5_lines(report: &FileReport) -> Vec<usize> {
    report.d5_sites.iter().map(|f| f.line).collect()
}

#[test]
fn hash_iteration_fixture_yields_exact_triples() {
    let report = lint_source(
        "crates/lint/tests/fixtures/bad_hash_iter.rs",
        include_str!("fixtures/bad_hash_iter.rs"),
    );
    // Line 7 declares the map, line 9 both iterates (`.keys()`) and loops
    // (`for … in`) over it, line 12 loops over a reference to it. The
    // `use` on line 4 and the `#[cfg(test)]` module are exempt.
    assert_eq!(
        violation_pairs(&report),
        vec![("D1", 7), ("D1", 9), ("D1", 9), ("D1", 12)]
    );
    assert!(report.waived.is_empty());
}

#[test]
fn waiver_suppresses_exactly_one_finding() {
    let report = lint_source(
        "crates/lint/tests/fixtures/waived_hash.rs",
        include_str!("fixtures/waived_hash.rs"),
    );
    // The trailing waiver on line 7 removes that line's finding and ONLY
    // that finding; the identical pattern on line 12 still violates.
    assert_eq!(violation_pairs(&report), vec![("D1", 12)]);
    assert_eq!(report.waived.len(), 1);
    let (finding, reason) = &report.waived[0];
    assert_eq!((finding.rule.id(), finding.line), ("D1", 7));
    assert_eq!(reason, "lookup-only map, never iterated");
}

#[test]
fn env_thread_time_fixture_yields_exact_triples() {
    let report = lint_source(
        "crates/lint/tests/fixtures/bad_env_thread_time.rs",
        include_str!("fixtures/bad_env_thread_time.rs"),
    );
    assert_eq!(
        violation_pairs(&report),
        vec![("D2", 8), ("D3", 17), ("D6", 22)]
    );
    // The standalone waiver on line 12 targets the next code line (13).
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].0.line, 13);
}

#[test]
fn unsafe_fixture_flags_missing_safety_comments() {
    // Under an allowlisted path only the two uncommented `unsafe` tokens
    // violate: the bare block (line 11) and the Sync impl whose comment
    // is separated by the Send impl (line 17).
    let report = lint_source(
        "crates/numeric/src/panel.rs",
        include_str!("fixtures/bad_unsafe.rs"),
    );
    assert_eq!(violation_pairs(&report), vec![("D4", 11), ("D4", 17)]);
}

#[test]
fn unsafe_fixture_outside_allowlist_flags_every_token() {
    let report = lint_source(
        "crates/lint/tests/fixtures/bad_unsafe.rs",
        include_str!("fixtures/bad_unsafe.rs"),
    );
    assert_eq!(
        violation_pairs(&report),
        vec![("D4", 7), ("D4", 11), ("D4", 16), ("D4", 17)]
    );
}

#[test]
fn panic_sites_count_only_outside_tests() {
    // Under a solver-library path the three non-test panic paths are
    // recorded as budget sites, not direct violations.
    let report = lint_source(
        "crates/fvm/src/fixture.rs",
        include_str!("fixtures/bad_unwrap.rs"),
    );
    assert!(report.violations.is_empty());
    assert_eq!(d5_lines(&report), vec![6, 7, 9]);

    // Under a non-library path (the fixture's real one) D5 is out of scope.
    let tooling = lint_source(
        "crates/lint/tests/fixtures/bad_unwrap.rs",
        include_str!("fixtures/bad_unwrap.rs"),
    );
    assert!(tooling.d5_sites.is_empty());
}

#[test]
fn waiver_hygiene_fixture_yields_w0_and_w1() {
    let report = lint_source(
        "crates/lint/tests/fixtures/waiver_no_reason.rs",
        include_str!("fixtures/waiver_no_reason.rs"),
    );
    // A reason-less waiver is W0 and suppresses nothing (the D1 on its
    // line survives); an unknown rule id and an unused waiver are W1.
    assert_eq!(
        violation_pairs(&report),
        vec![("D1", 7), ("W0", 7), ("W1", 12), ("W1", 17)]
    );
    assert!(report.waived.is_empty());
}

#[test]
fn adversarial_lexing_produces_no_findings() {
    // Everything violation-shaped in this fixture hides inside comments,
    // strings, raw strings or char literals; flag nothing — under the
    // fixture's own path and under a solver-library path (D5 scope).
    for path in [
        "crates/lint/tests/fixtures/lexer_tricky.rs",
        "crates/mesh/src/fixture.rs",
    ] {
        let report = lint_source(path, include_str!("fixtures/lexer_tricky.rs"));
        assert!(report.violations.is_empty(), "violations under {path}");
        assert!(report.d5_sites.is_empty(), "d5 sites under {path}");
        assert!(report.waived.is_empty(), "waived under {path}");
    }
}
