//! The D5 panic-path budget ratchet (`lint_budget.toml`).
//!
//! Rule D5 does not demand zero `unwrap()`/`expect()`/`panic!` sites in the
//! solver library crates — the tree has hundreds of justified ones (pivot
//! invariants, slice-length contracts). Instead each file's count is
//! recorded here and may **only ratchet down**: a PR that adds a panic path
//! to a library file fails the gate until the site is removed or waived,
//! and a PR that removes panic paths updates the recording via
//! `vaem-lint --update-budget` (which refuses to raise any entry).
//!
//! The file is a deliberately tiny TOML subset — one `[d5]` table of
//! `"path" = count` pairs — parsed by hand because the workspace has no
//! crates.io access and no TOML dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-file D5 budgets, keyed by workspace-relative path.
pub type Budget = BTreeMap<String, usize>;

/// Parses the budget file contents.
///
/// # Errors
/// Returns a message naming the offending line for anything that is not a
/// comment, a blank line, the `[d5]` header, or a `"path" = count` pair.
pub fn parse(text: &str) -> Result<Budget, String> {
    let mut budget = Budget::new();
    let mut in_d5 = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_d5 = line == "[d5]";
            if !in_d5 {
                return Err(format!(
                    "lint_budget.toml:{}: unknown section {line}",
                    idx + 1
                ));
            }
            continue;
        }
        if !in_d5 {
            return Err(format!(
                "lint_budget.toml:{}: entry outside the [d5] section",
                idx + 1
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint_budget.toml:{}: expected `\"path\" = count`",
                idx + 1
            ));
        };
        let key = key.trim();
        let Some(path) = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .filter(|p| !p.is_empty())
        else {
            return Err(format!(
                "lint_budget.toml:{}: path must be double-quoted",
                idx + 1
            ));
        };
        let count: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("lint_budget.toml:{}: count must be an integer", idx + 1))?;
        if budget.insert(path.to_string(), count).is_some() {
            return Err(format!(
                "lint_budget.toml:{}: duplicate entry for {path}",
                idx + 1
            ));
        }
    }
    Ok(budget)
}

/// Renders a budget back to the canonical file format (sorted, zero-count
/// entries dropped).
pub fn render(budget: &Budget) -> String {
    let mut out = String::from(
        "# vaem-lint rule D5 budget: unwrap()/expect()/panic! sites per solver-library\n\
         # file. Counts may only ratchet DOWN. Regenerate with `vaem-lint\n\
         # --update-budget` after removing panic paths; adding one requires an inline\n\
         # `vaem-lint: allow(D5) <reason>` waiver instead.\n\n[d5]\n",
    );
    for (path, count) in budget {
        if *count > 0 {
            let _ = writeln!(out, "\"{path}\" = {count}");
        }
    }
    out
}

/// Computes the ratcheted-down successor of `old` given the observed
/// `counts`.
///
/// # Errors
/// Refuses (naming the files) when any observed count exceeds its recorded
/// budget — the ratchet only ever lowers recorded counts; new debt must be
/// removed or waived, not recorded.
pub fn ratchet(old: &Budget, counts: &Budget) -> Result<Budget, String> {
    let raised: Vec<String> = counts
        .iter()
        .filter(|(path, &count)| count > old.get(*path).copied().unwrap_or(0))
        .map(|(path, &count)| format!("{path}: {count} > {}", old.get(path).copied().unwrap_or(0)))
        .collect();
    if !raised.is_empty() {
        return Err(format!(
            "refusing to raise D5 budgets (the ratchet only goes down):\n  {}",
            raised.join("\n  ")
        ));
    }
    Ok(counts
        .iter()
        .filter(|(_, &c)| c > 0)
        .map(|(p, &c)| (p.clone(), c))
        .collect())
}

/// Budget entries whose file is not in `existing` (workspace-relative
/// paths) — stale recordings left behind by a file deletion or rename.
/// Strict runs report these; `--update-budget` prunes them.
pub fn stale_entries(budget: &Budget, existing: &[String]) -> Vec<String> {
    budget
        .keys()
        .filter(|path| !existing.iter().any(|f| f == *path))
        .cloned()
        .collect()
}

/// Drops the entries named by [`stale_entries`]; returns the pruned paths
/// so the caller can report what was removed.
pub fn prune(budget: &mut Budget, existing: &[String]) -> Vec<String> {
    let stale = stale_entries(budget, existing);
    for path in &stale {
        budget.remove(path);
    }
    stale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Budget::new();
        b.insert("crates/core/src/analysis.rs".into(), 7);
        b.insert("crates/fvm/src/solver.rs".into(), 2);
        let text = render(&b);
        assert_eq!(parse(&text).unwrap(), b);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("[d5]\nnot a pair\n").is_err());
        assert!(parse("[other]\n").is_err());
        assert!(parse("\"a.rs\" = 3\n").is_err(), "entry before section");
        assert!(parse("[d5]\n\"a.rs\" = x\n").is_err());
        assert!(parse("[d5]\n\"a.rs\" = 1\n\"a.rs\" = 2\n").is_err());
        assert!(parse("[d5]\na.rs = 1\n").is_err(), "unquoted path");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let b = parse("# header\n\n[d5]\n# entry comment\n\"a.rs\" = 3\n").unwrap();
        assert_eq!(b.get("a.rs"), Some(&3));
    }

    #[test]
    fn ratchet_lowers_and_drops_but_never_raises() {
        let old = parse("[d5]\n\"a.rs\" = 5\n\"b.rs\" = 2\n").unwrap();
        // Lower + drop-to-zero are fine.
        let counts: Budget = [("a.rs".to_string(), 3usize)].into_iter().collect();
        let next = ratchet(&old, &counts).unwrap();
        assert_eq!(next.get("a.rs"), Some(&3));
        assert!(!next.contains_key("b.rs"));
        // Raising an entry is refused.
        let worse: Budget = [("a.rs".to_string(), 6usize)].into_iter().collect();
        assert!(ratchet(&old, &worse).is_err());
        // A new file with sites is also a raise (implicit budget 0).
        let fresh: Budget = [("c.rs".to_string(), 1usize)].into_iter().collect();
        assert!(ratchet(&old, &fresh).is_err());
    }

    #[test]
    fn prune_drops_exactly_the_deleted_files() {
        let mut b = parse("[d5]\n\"a.rs\" = 5\n\"gone.rs\" = 2\n").unwrap();
        let existing = vec!["a.rs".to_string(), "new.rs".to_string()];
        assert_eq!(stale_entries(&b, &existing), vec!["gone.rs".to_string()]);
        let pruned = prune(&mut b, &existing);
        assert_eq!(pruned, vec!["gone.rs".to_string()]);
        assert_eq!(b.get("a.rs"), Some(&5));
        assert!(!b.contains_key("gone.rs"));
        // Idempotent on a clean budget.
        assert!(prune(&mut b, &existing).is_empty());
    }
}
