//! `vaem-lint` — a workspace-aware determinism & safety static-analysis
//! pass for the VAEM reproduction.
//!
//! The repository's headline guarantee (bit-identical results at any thread
//! count) is enforced dynamically by digest diffs and determinism tests; the
//! hazards that would break it are textual and auditable. This crate ships a
//! small self-contained Rust lexer ([`lexer`]), a brace-matched item
//! parser ([`parse`]), a whole-workspace symbol table + call graph
//! ([`model`]), a line/token-level rule engine ([`rules`], rules D1–D6
//! plus the waiver rules W0/W1), the call-graph-aware rule families
//! ([`semantic`], rules H1–H3/P1/E1–E2), and a panic-path budget ratchet
//! ([`budget`]). The `vaem-lint` binary walks `crates/*/src` and the root
//! facade `src/`, reports span-accurate findings (`--format json` or
//! `--format sarif` for machines), and exits nonzero on any unwaived
//! violation — see the README "Correctness tooling" section and
//! `crates/lint/RULES.md` for the rule catalog and waiver syntax.

#![warn(missing_docs)]

pub mod budget;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod rules;
pub mod semantic;

use budget::Budget;
use rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Name of the budget file at the workspace root.
pub const BUDGET_FILE: &str = "lint_budget.toml";

/// The lint outcome across a set of files.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Unwaived violations as `(workspace-relative path, finding)`, sorted.
    pub violations: Vec<(String, Finding)>,
    /// Waived findings as `(path, finding, reason)`.
    pub waived: Vec<(String, Finding, String)>,
    /// Observed per-file D5 site counts (after waivers, zero counts kept).
    pub d5_counts: Budget,
    /// Number of files linted.
    pub files_checked: usize,
}

impl WorkspaceReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An I/O or configuration error from the workspace driver.
#[derive(Debug)]
pub struct LintError(pub String);

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LintError {}

/// Collects the workspace-relative source files the gate lints: everything
/// under `crates/*/src` plus the root facade `src/`, sorted for
/// deterministic reports. Fixtures, `tests/`, `benches/`, `examples/` and
/// the vendored `shims/` are intentionally out of scope — the rules guard
/// *library* code.
///
/// # Errors
/// Fails when a directory cannot be read.
pub fn collect_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| LintError(format!("cannot read {}: {e}", crates_dir.display())))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(root, &src, &mut files)?;
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        walk(root, &facade, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError(format!("cannot read {}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| LintError(format!("{} escapes the root", path.display())))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

/// Lints the given workspace-relative files against `budget_map` and folds
/// the per-file reports into one [`WorkspaceReport`]. With `strict_budget`,
/// a recorded budget above the observed count is itself a violation (the
/// recording is stale and must ratchet down).
///
/// # Errors
/// Fails when a file cannot be read.
pub fn lint_files(
    root: &Path,
    rel_paths: &[String],
    budget_map: &Budget,
    strict_budget: bool,
) -> Result<WorkspaceReport, LintError> {
    let mut sources = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let abs = root.join(rel);
        let source = std::fs::read_to_string(&abs)
            .map_err(|e| LintError(format!("cannot read {}: {e}", abs.display())))?;
        sources.push((rel.clone(), source));
    }
    Ok(lint_sources(&sources, budget_map, strict_budget))
}

/// Lints in-memory `(workspace-relative path, source)` pairs: builds the
/// whole-set semantic model (call graph + H/P/E findings), then runs the
/// per-file token rules, merges, and applies waivers. This is the full
/// pipeline behind [`lint_files`], exposed so fixture tests can exercise
/// the semantic families without touching disk.
pub fn lint_sources(
    sources: &[(String, String)],
    budget_map: &Budget,
    strict_budget: bool,
) -> WorkspaceReport {
    let ws = model::Workspace::build(sources);
    let mut semantic_findings = semantic::analyze(&ws);
    let mut report = WorkspaceReport::default();
    for (rel, source) in sources {
        let extra = semantic_findings.remove(rel).unwrap_or_default();
        let file = rules::lint_source_with(rel, source, extra);
        report.files_checked += 1;
        for f in file.violations {
            report.violations.push((rel.clone(), f));
        }
        for (f, reason) in file.waived {
            report.waived.push((rel.clone(), f, reason));
        }
        let count = file.d5_sites.len();
        let allowed = budget_map.get(rel).copied().unwrap_or(0);
        if count > allowed {
            // Anchor the violation at the first site past the budget so the
            // report points at the newest debt.
            let site = &file.d5_sites[allowed.min(count - 1)];
            report.violations.push((
                rel.clone(),
                Finding {
                    rule: Rule::D5,
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "{count} panic-path sites exceed the file's budget of \
                         {allowed} ({BUDGET_FILE} only ratchets down; remove \
                         the new site or waive it with a reason)"
                    ),
                },
            ));
        } else if strict_budget && count < allowed {
            report.violations.push((
                rel.clone(),
                Finding {
                    rule: Rule::D5,
                    line: 1,
                    col: 1,
                    message: format!(
                        "stale budget: {allowed} recorded but only {count} \
                         panic-path sites remain; run `vaem-lint \
                         --update-budget` to ratchet down"
                    ),
                },
            ));
        }
        if rules::D5_LIBRARY_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p))
        {
            report.d5_counts.insert(rel.clone(), count);
        }
    }
    report
        .violations
        .sort_by(|a, b| (a.0.as_str(), a.1.line, a.1.col).cmp(&(b.0.as_str(), b.1.line, b.1.col)));
    report
}

/// Convenience entry point: collect the default file set, load the budget
/// file (missing file = empty budget), lint everything. On strict runs the
/// full file set is known, so a budget entry for a file that no longer
/// exists is reported as a stale-budget violation (anchored at the budget
/// file itself) instead of lingering silently.
///
/// # Errors
/// Propagates I/O and budget-parse failures.
pub fn lint_workspace(root: &Path, strict_budget: bool) -> Result<WorkspaceReport, LintError> {
    let files = collect_files(root)?;
    let budget_map = load_budget(root)?;
    let mut report = lint_files(root, &files, &budget_map, strict_budget)?;
    if strict_budget {
        for rel in budget::stale_entries(&budget_map, &files) {
            report.violations.push((
                BUDGET_FILE.to_string(),
                Finding {
                    rule: Rule::D5,
                    line: 1,
                    col: 1,
                    message: format!(
                        "budget entry for deleted file `{rel}`: run \
                         `vaem-lint --update-budget` to prune it"
                    ),
                },
            ));
        }
    }
    Ok(report)
}

/// Loads `lint_budget.toml` from the workspace root (missing = empty).
///
/// # Errors
/// Fails on unreadable or malformed budget files.
pub fn load_budget(root: &Path) -> Result<Budget, LintError> {
    let path = root.join(BUDGET_FILE);
    if !path.exists() {
        return Ok(Budget::new());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| LintError(format!("cannot read {}: {e}", path.display())))?;
    budget::parse(&text).map_err(LintError)
}

/// Renders a report as human-readable text.
pub fn render_text(report: &WorkspaceReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (path, f) in &report.violations {
        let _ = writeln!(
            out,
            "{path}:{}:{}: {} {}",
            f.line,
            f.col,
            f.rule.id(),
            f.message
        );
    }
    let _ = writeln!(
        out,
        "vaem-lint: {} file(s), {} violation(s), {} waived",
        report.files_checked,
        report.violations.len(),
        report.waived.len()
    );
    out
}

/// Renders a report as a single JSON object (hand-serialized — the
/// workspace has no serde_json).
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\"violations\":[");
    for (i, (path, f)) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.rule.id(),
            json_escape(path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!(
        "],\"files_checked\":{},\"waived\":{},\"d5_counts\":{{",
        report.files_checked,
        report.waived.len()
    ));
    let nonzero: Vec<(&String, &usize)> = report.d5_counts.iter().filter(|(_, &c)| c > 0).collect();
    for (i, (path, count)) in nonzero.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", json_escape(path), count));
    }
    out.push_str("}}");
    out
}

/// Renders a report as a minimal SARIF 2.1.0 log (one run, one result per
/// unwaived violation) for code-scanning upload and CI artifacts.
pub fn render_sarif(report: &WorkspaceReport) -> String {
    let mut rules_seen: Vec<&str> = report.violations.iter().map(|(_, f)| f.rule.id()).collect();
    rules_seen.sort_unstable();
    rules_seen.dedup();
    let mut out = String::from(
        "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"vaem-lint\",\"informationUri\":\"crates/lint/RULES.md\",\"rules\":[",
    );
    for (i, id) in rules_seen.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":\"{id}\"}}"));
    }
    out.push_str("]}},\"results\":[");
    for (i, (path, f)) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            f.rule.id(),
            json_escape(&f.message),
            json_escape(path),
            f.line,
            f.col
        ));
    }
    out.push_str("]}]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The observed D5 counts as a budget map (used by `--update-budget`).
pub fn observed_counts(report: &WorkspaceReport) -> BTreeMap<String, usize> {
    report.d5_counts.clone()
}
