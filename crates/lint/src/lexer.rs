//! A small self-contained Rust lexer — just enough fidelity for line/token
//! level lint rules.
//!
//! The rules in [`crate::rules`] only need to know *which identifiers and
//! punctuation appear outside of comments and literals*, with accurate
//! line/column spans. The tricky part of that job is not the token grammar,
//! it is not desynchronizing on the literal forms that embed quote or slash
//! characters:
//!
//! * nested block comments (`/* outer /* inner */ still a comment */`),
//! * raw strings with arbitrary hash fences (`r#"contains " quote"#`),
//! * byte/raw-byte/C strings (`b"…"`, `br#"…"#`, `c"…"`),
//! * char literals versus lifetimes (`'u'` is a char, `<'u>` is a
//!   lifetime, `'\''` is an escaped quote),
//! * raw identifiers (`r#match` is an identifier, `r#"…"#` is a string).
//!
//! Everything else (numbers, multi-character operators) is lexed loosely:
//! `::` comes out as two `:` punctuation tokens, `1e-3` as a number, a
//! punctuation and a number. The rule engine matches on those sequences.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// Single punctuation character.
    Punct,
    /// String literal of any flavour (cooked, raw, byte, C).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Numeric literal (loosely delimited).
    Num,
    /// Lifetime (`'a`, `'static`) — distinct from [`TokKind::Char`].
    Lifetime,
}

/// One significant (non-comment, non-whitespace) token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// The lexeme text. For [`TokKind::Str`] this is a placeholder, not the
    /// literal contents — rules never look inside string literals.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 1-based source column of the token's first character.
    pub col: usize,
    /// Byte offset of the token's first character in the source.
    pub start: usize,
    /// Byte offset one past the token's last character (so
    /// `&src[tok.start..tok.end]` is exactly the consumed lexeme).
    pub end: usize,
}

/// One comment (line or block, doc or plain), with its full text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//`/`/*` markers.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// 1-based column of the comment's first character.
    pub col: usize,
    /// 1-based line of the comment's last character (equals `line` for
    /// line comments, may be larger for block comments).
    pub end_line: usize,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: &'a [char],
    i: usize,
    line: usize,
    col: usize,
    byte: usize,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.i).copied()?;
        self.i += 1;
        self.byte += ch.len_utf8();
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }
}

fn is_ident_start(ch: char) -> bool {
    ch == '_' || ch.is_alphabetic()
}

fn is_ident_continue(ch: char) -> bool {
    ch == '_' || ch.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Never fails: unterminated literals
/// or comments simply run to the end of the file (the lint rules prefer a
/// degraded-but-positioned token stream over a hard error on odd input).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut cur = Cursor {
        chars: &chars,
        i: 0,
        line: 1,
        col: 1,
        byte: 0,
    };
    let mut out = Lexed::default();

    while let Some(ch) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let start_byte = cur.byte;
        let tok_count = out.toks.len();
        if ch.is_whitespace() {
            cur.bump();
        } else if ch == '/' && cur.peek(1) == Some('/') {
            lex_line_comment(&mut cur, &mut out, line, col);
        } else if ch == '/' && cur.peek(1) == Some('*') {
            lex_block_comment(&mut cur, &mut out, line, col);
        } else if ch == '"' {
            lex_cooked_string(&mut cur);
            push_tok(&mut out, TokKind::Str, "\"…\"", line, col);
        } else if ch == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
        } else if ch.is_ascii_digit() {
            lex_number(&mut cur, &mut out, line, col);
        } else if is_ident_start(ch) {
            lex_ident_or_prefixed(&mut cur, &mut out, line, col);
        } else {
            cur.bump();
            push_tok(&mut out, TokKind::Punct, &ch.to_string(), line, col);
        }
        // Every dispatch above pushes at most one token; stamp its byte
        // span here so the helpers stay span-agnostic.
        if out.toks.len() > tok_count {
            if let Some(last) = out.toks.last_mut() {
                last.start = start_byte;
                last.end = cur.byte;
            }
        }
    }
    out
}

fn push_tok(out: &mut Lexed, kind: TokKind, text: &str, line: usize, col: usize) {
    out.toks.push(Tok {
        kind,
        text: text.to_string(),
        line,
        col,
        start: 0,
        end: 0,
    });
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '\n' {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        col,
        end_line: line,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(ch) = cur.peek(0) {
        if ch == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if ch == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(ch);
            cur.bump();
        }
    }
    out.comments.push(Comment {
        text,
        line,
        col,
        end_line: cur.line,
    });
}

/// Consumes a cooked (escapable, `"`-delimited) string body, including the
/// opening and closing quotes.
fn lex_cooked_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string body `r##"…"##` given that the cursor sits on the
/// first `#` or `"` after the `r`/`br`/`cr` prefix. Returns `true` if a raw
/// string was actually consumed (`false` means the `#`s belong to a raw
/// identifier or stray punctuation and nothing was consumed).
fn try_lex_raw_string(cur: &mut Cursor) -> bool {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return false;
    }
    for _ in 0..=hashes {
        cur.bump(); // the hashes and the opening quote
    }
    'body: while let Some(ch) = cur.bump() {
        if ch == '"' {
            for k in 0..hashes {
                if cur.peek(k) != Some('#') {
                    continue 'body;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
    true
}

/// Disambiguates `'`: lifetime, char literal, or escaped char literal.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape then scan to closing '.
            cur.bump();
            cur.bump();
            while let Some(ch) = cur.bump() {
                if ch == '\'' {
                    break;
                }
            }
            push_tok(out, TokKind::Char, "'…'", line, col);
        }
        Some(ch) if is_ident_start(ch) => {
            // Identifier run: `'a'` (char) vs `'a` / `'static` (lifetime).
            let mut len = 0usize;
            while cur.peek(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if cur.peek(len) == Some('\'') {
                for _ in 0..=len {
                    cur.bump();
                }
                push_tok(out, TokKind::Char, "'…'", line, col);
            } else {
                let mut name = String::from("'");
                for _ in 0..len {
                    name.push(cur.bump().unwrap_or('_'));
                }
                push_tok(out, TokKind::Lifetime, &name, line, col);
            }
        }
        Some(_) => {
            // Non-identifier char literal such as '(' or '"'.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            push_tok(out, TokKind::Char, "'…'", line, col);
        }
        None => {}
    }
}

fn lex_number(cur: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    while let Some(ch) = cur.peek(0) {
        // A digit run plus `.` only when a digit follows (so `1.max(2)` ends
        // the number at the method call, matching rustc's loose float rule).
        let continues =
            is_ident_continue(ch) || (ch == '.' && cur.peek(1).is_some_and(|c| c.is_ascii_digit()));
        if !continues {
            break;
        }
        cur.bump();
    }
    push_tok(out, TokKind::Num, "0", line, col);
}

fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut Lexed, line: usize, col: usize) {
    let mut name = String::new();
    while let Some(ch) = cur.peek(0) {
        if is_ident_continue(ch) {
            name.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    match (name.as_str(), cur.peek(0)) {
        // Raw strings: r"…", r#"…"#, br"…", cr#"…"#.
        ("r" | "br" | "cr", Some('"' | '#')) => {
            if try_lex_raw_string(cur) {
                push_tok(out, TokKind::Str, "r\"…\"", line, col);
                return;
            }
            // `r#ident`: raw identifier — consume the hash and the name.
            if name == "r" && cur.peek(0) == Some('#') {
                cur.bump();
                let mut raw = String::new();
                while let Some(ch) = cur.peek(0) {
                    if is_ident_continue(ch) {
                        raw.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                push_tok(out, TokKind::Ident, &raw, line, col);
                return;
            }
            push_tok(out, TokKind::Ident, &name, line, col);
        }
        // Cooked byte / C strings: b"…", c"…".
        ("b" | "c", Some('"')) => {
            lex_cooked_string(cur);
            push_tok(out, TokKind::Str, "b\"…\"", line, col);
        }
        // Byte char literal: b'x'.
        ("b", Some('\'')) => {
            lex_quote(cur, out, line, col);
            if let Some(last) = out.toks.last_mut() {
                last.kind = TokKind::Char;
                last.line = line;
                last.col = col;
            }
        }
        _ => push_tok(out, TokKind::Ident, &name, line, col),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn plain_tokens_carry_positions() {
        let lexed = lex("let x = foo();\nlet y = 2;");
        let foo = lexed.toks.iter().find(|t| t.text == "foo").unwrap();
        assert_eq!((foo.line, foo.col), (1, 9));
        let y = lexed.toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!((y.line, y.col), (2, 5));
    }

    #[test]
    fn nested_block_comments_hide_their_contents() {
        let lexed = lex("a /* x /* unsafe */ HashMap */ b");
        assert_eq!(idents("a /* x /* unsafe */ HashMap */ b"), ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_with_hash_fences_hide_their_contents() {
        let src = "let s = r#\"env::var(\"X\") unsafe\"#; done();";
        assert_eq!(idents(src), ["let", "s", "done"]);
        let src2 = "let s = r##\"quote \"# inside\"##; tail";
        assert_eq!(idents(src2), ["let", "s", "tail"]);
        let src3 = "let b = br#\"bytes\"#; let c = c\"cstr\"; tail";
        assert_eq!(idents(src3), ["let", "b", "let", "c", "tail"]);
    }

    #[test]
    fn raw_identifiers_are_identifiers_not_strings() {
        assert_eq!(
            idents("let r#match = 1; use r#match;"),
            ["let", "match", "use", "match"]
        );
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        // 'u' is a char literal; 'a in a generic position is a lifetime.
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'u'; let q = '\\''; }");
        let lifetimes: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn char_literal_containing_quote_does_not_desync() {
        // The '"' char literal must not open a string.
        assert_eq!(idents("let q = '\"'; env_read()"), ["let", "q", "env_read"]);
    }

    #[test]
    fn strings_with_escapes_do_not_desync() {
        assert_eq!(
            idents(r#"let s = "a \" b \\"; after()"#),
            ["let", "s", "after"]
        );
    }

    #[test]
    fn byte_spans_slice_back_to_the_lexeme() {
        let src = "let x = r#\"raw…\"#; foo();";
        let lexed = lex(src);
        for t in &lexed.toks {
            assert!(
                t.start < t.end && t.end <= src.len(),
                "span of {:?}",
                t.text
            );
        }
        let x = lexed.toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(&src[x.start..x.end], "x");
        let raw = lexed.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(&src[raw.start..raw.end], "r#\"raw…\"#");
        // Multi-byte characters keep offsets on char boundaries.
        let uni = "let é = 'λ';";
        for t in lex(uni).toks {
            assert!(uni.is_char_boundary(t.start) && uni.is_char_boundary(t.end));
        }
    }

    #[test]
    fn line_and_block_comments_record_spans() {
        let lexed = lex("// one\ncode();\n/* two\nlines */ more();");
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 3);
        assert_eq!(lexed.comments[1].end_line, 4);
    }
}
