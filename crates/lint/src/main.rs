//! The `vaem-lint` command-line gate.
//!
//! ```text
//! vaem-lint [--root DIR] [--format text|json|sarif] [--strict-budget]
//!           [--update-budget] [PATH…]
//! ```
//!
//! With no `PATH` arguments the whole workspace file set is linted
//! (`crates/*/src/**` plus the root `src/`) — including the semantic
//! call-graph families and, under `--strict-budget`, stale-budget-entry
//! detection; explicit workspace-relative paths lint just those files
//! (used by the CI seeded-fixture check; the call graph then spans only
//! the listed files). Exits 0 on a clean tree, 1 on violations, 2 on
//! usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    strict_budget: bool,
    update_budget: bool,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Text,
        strict_budget: false,
        update_budget: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("sarif") => args.format = Format::Sarif,
                Some("text") => args.format = Format::Text,
                other => return Err(format!("--format expects text|json|sarif, got {other:?}")),
            },
            "--strict-budget" => args.strict_budget = true,
            "--update-budget" => args.update_budget = true,
            "--help" | "-h" => {
                return Err("usage: vaem-lint [--root DIR] [--format text|json|sarif] \
                     [--strict-budget] [--update-budget] [PATH…]"
                    .to_string())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => args.paths.push(path.replace('\\', "/")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot resolve cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir);
                }
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => find_root()?,
    };
    let report = if args.paths.is_empty() {
        // Whole-workspace runs go through the driver that also knows how
        // to flag stale budget entries on strict runs.
        vaem_lint::lint_workspace(&root, args.strict_budget).map_err(|e| e.to_string())?
    } else {
        let budget_map = vaem_lint::load_budget(&root).map_err(|e| e.to_string())?;
        vaem_lint::lint_files(&root, &args.paths, &budget_map, args.strict_budget)
            .map_err(|e| e.to_string())?
    };

    if args.update_budget {
        if !args.paths.is_empty() {
            return Err("--update-budget requires a whole-workspace run".to_string());
        }
        let files = vaem_lint::collect_files(&root).map_err(|e| e.to_string())?;
        let mut budget_map = vaem_lint::load_budget(&root).map_err(|e| e.to_string())?;
        let path = root.join(vaem_lint::BUDGET_FILE);
        // Entries for deleted files are pruned (and reported) before the
        // ratchet, so a rename or removal never leaves a stale recording
        // behind to trip a later `--strict-budget` run.
        let pruned = vaem_lint::budget::prune(&mut budget_map, &files);
        for stale in &pruned {
            eprintln!("vaem-lint: pruned budget entry for deleted file {stale}");
        }
        let observed = vaem_lint::observed_counts(&report);
        // First run (no budget file yet): seed from the observed counts.
        // Afterwards the ratchet applies — counts may only go down.
        let next = if path.is_file() {
            vaem_lint::budget::ratchet(&budget_map, &observed)?
        } else {
            observed
        };
        std::fs::write(&path, vaem_lint::budget::render(&next))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let nonzero = next.values().filter(|&&n| n > 0).count();
        eprintln!("vaem-lint: wrote {} ({nonzero} entries)", path.display());
    }

    match args.format {
        Format::Json => println!("{}", vaem_lint::render_json(&report)),
        Format::Sarif => println!("{}", vaem_lint::render_sarif(&report)),
        Format::Text => print!("{}", vaem_lint::render_text(&report)),
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("vaem-lint: {message}");
            ExitCode::from(2)
        }
    }
}
