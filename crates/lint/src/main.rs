//! The `vaem-lint` command-line gate.
//!
//! ```text
//! vaem-lint [--root DIR] [--format text|json] [--strict-budget]
//!           [--update-budget] [PATH…]
//! ```
//!
//! With no `PATH` arguments the whole workspace file set is linted
//! (`crates/*/src/**` plus the root `src/`); explicit workspace-relative
//! paths lint just those files (used by the CI seeded-fixture check).
//! Exits 0 on a clean tree, 1 on violations, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    format_json: bool,
    strict_budget: bool,
    update_budget: bool,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format_json: false,
        strict_budget: false,
        update_budget: false,
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(dir));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format_json = true,
                Some("text") => args.format_json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--strict-budget" => args.strict_budget = true,
            "--update-budget" => args.update_budget = true,
            "--help" | "-h" => {
                return Err("usage: vaem-lint [--root DIR] [--format text|json] \
                     [--strict-budget] [--update-budget] [PATH…]"
                    .to_string())
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => args.paths.push(path.replace('\\', "/")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot resolve cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Ok(dir);
                }
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => find_root()?,
    };
    let budget_map = vaem_lint::load_budget(&root).map_err(|e| e.to_string())?;
    let files = if args.paths.is_empty() {
        vaem_lint::collect_files(&root).map_err(|e| e.to_string())?
    } else {
        args.paths.clone()
    };
    let report = vaem_lint::lint_files(&root, &files, &budget_map, args.strict_budget)
        .map_err(|e| e.to_string())?;

    if args.update_budget {
        if !args.paths.is_empty() {
            return Err("--update-budget requires a whole-workspace run".to_string());
        }
        let path = root.join(vaem_lint::BUDGET_FILE);
        let observed = vaem_lint::observed_counts(&report);
        // First run (no budget file yet): seed from the observed counts.
        // Afterwards the ratchet applies — counts may only go down.
        let next = if path.is_file() {
            vaem_lint::budget::ratchet(&budget_map, &observed)?
        } else {
            observed
        };
        std::fs::write(&path, vaem_lint::budget::render(&next))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let nonzero = next.values().filter(|&&n| n > 0).count();
        eprintln!("vaem-lint: wrote {} ({nonzero} entries)", path.display());
    }

    if args.format_json {
        println!("{}", vaem_lint::render_json(&report));
    } else {
        print!("{}", vaem_lint::render_text(&report));
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("vaem-lint: {message}");
            ExitCode::from(2)
        }
    }
}
