//! Workspace model for the semantic rule families: per-file item trees, a
//! symbol table of every non-test function, `use`-aware name resolution,
//! and an inter-procedural call graph whose roots are the closures handed
//! to the `vaem_parallel` fan-out primitives plus the annotated/allowlisted
//! hot kernels.
//!
//! Resolution is deliberately an over-approximation: a method call on an
//! unknown receiver links to *every* workspace method of that name, and a
//! bare call falls back from same-file to same-crate to `use`-aliased
//! candidates. For H/P-style "must not reach" rules, over-linking errs on
//! the side of reporting — the waiver machinery absorbs the rare false
//! positive, while under-linking would silently miss real hazards.
//!
//! Three annotation comments steer the graph (written like waivers, e.g.
//! `// vaem-lint: hot inner Krylov loop`):
//!
//! * `hot <why>` — the next function is a hot-path root even though it is
//!   not reachable from a parallel closure.
//! * `cold <why>` — the next function is amortized setup: traversal stops
//!   at it and its body is not scanned (it is also never a hot-file root).
//! * `stage <why>` — the next function is a cacheable stage: rule P1
//!   audits everything it transitively reaches for purity.

use crate::lexer::{self, Comment, Tok, TokKind};
use crate::parse::{self, Item, ItemKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Fan-out primitives whose closure arguments become hot-path roots.
pub const PAR_FAMILY: &[&str] = &[
    "par_map",
    "par_map_with",
    "par_map_with_chunk",
    "par_map_mut",
    "par_map_mut_with_chunk",
    "par_map_indices",
    "par_for_with",
    "steal_indices",
];

/// Files whose every non-`cold` function is a hot-path root (the SIMD/
/// panel kernels sit in the innermost numeric loops by construction).
pub const HOT_FILES: &[&str] = &[
    "crates/numeric/src/vecops.rs",
    "crates/numeric/src/panel.rs",
];

/// The env chokepoint: stage purity traversal does not descend into it
/// (reads through it are clamped, documented, and cache-keyed upstream).
pub const ENV_CHOKEPOINT: &str = "crates/parallel/src/env.rs";

/// What a trigger token does (decides which rule fires and its message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Heap allocation or collection materialization (H1).
    Alloc,
    /// `.clone()` call (H2).
    Clone,
    /// Lock acquisition or stdout/stderr serialization (H3).
    Lock,
    /// Environment read outside the chokepoint (P1).
    EnvRead,
    /// Interior-mutability construction (P1).
    InteriorMut,
    /// RNG construction or seeding (P1).
    Rng,
    /// Filesystem or console I/O (P1).
    Io,
}

/// One trigger site inside a function or root closure.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// What fired.
    pub kind: TriggerKind,
    /// The offending lexeme, e.g. `Vec::new` or `format!`.
    pub what: String,
    /// File index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// One function in the workspace symbol table.
#[derive(Debug)]
pub struct FnInfo {
    /// File index into [`Workspace::files`].
    pub file: usize,
    /// `impl` self type for methods, `None` for free functions.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Inclusive token range of the body (absent for bodyless signatures).
    pub body: Option<(usize, usize)>,
    /// The textual return type mentions `Result`.
    pub returns_result: bool,
    /// Annotated `// vaem-lint: hot`.
    pub is_hot: bool,
    /// Annotated `// vaem-lint: cold`.
    pub is_cold: bool,
    /// Annotated `// vaem-lint: stage`.
    pub is_stage: bool,
}

impl FnInfo {
    /// `Type::name` or `name`, for diagnostics.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A hot-path root: a closure handed to a fan-out primitive.
#[derive(Debug)]
pub struct ParRoot {
    /// File index into [`Workspace::files`].
    pub file: usize,
    /// Name of the primitive (`par_map`, …).
    pub primitive: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Inclusive token range of the call's argument list.
    pub args: (usize, usize),
    /// Qualified name of the enclosing function, if any.
    pub enclosing: Option<String>,
}

/// One lexed + parsed source file.
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Comments (for annotations; waivers are handled by [`crate::rules`]).
    pub comments: Vec<Comment>,
    /// Tokens belonging to `#[…test…]` items.
    pub test_mask: Vec<bool>,
    /// Top-level item tree.
    pub items: Vec<Item>,
    /// `use` alias → full path segments, file-wide.
    pub uses: BTreeMap<String, Vec<String>>,
}

/// A graph node: either a parallel-closure root or a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Node {
    /// Index into [`Workspace::par_roots`].
    Root(usize),
    /// Index into [`Workspace::fns`].
    Fn(usize),
}

/// The whole-workspace semantic model.
pub struct Workspace {
    /// All analyzed files, in input order.
    pub files: Vec<FileModel>,
    /// Symbol table of non-test functions.
    pub fns: Vec<FnInfo>,
    /// Closures handed to fan-out primitives.
    pub par_roots: Vec<ParRoot>,
    /// Call edges per node (roots first, then functions), deduplicated.
    edges: BTreeMap<Node, Vec<usize>>,
    /// Trigger sites per node.
    triggers: BTreeMap<Node, Vec<Trigger>>,
    /// Free-function name → candidate fn ids.
    by_free: BTreeMap<String, Vec<usize>>,
    /// `(self type, method)` → candidate fn ids.
    by_method: BTreeMap<(String, String), Vec<usize>>,
    /// Method name → candidate fn ids (unknown-receiver fallback).
    by_method_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Builds the model from `(rel_path, source)` pairs.
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let mut files = Vec::with_capacity(sources.len());
        for (rel, src) in sources {
            let lexed = lexer::lex(src);
            let test_mask = crate::rules::test_token_mask(&lexed.toks);
            let items = parse::parse(&lexed.toks);
            let mut uses = BTreeMap::new();
            collect_uses(&items, &mut uses);
            files.push(FileModel {
                rel: rel.clone(),
                toks: lexed.toks,
                comments: lexed.comments,
                test_mask,
                items,
                uses,
            });
        }

        let mut ws = Workspace {
            files,
            fns: Vec::new(),
            par_roots: Vec::new(),
            edges: BTreeMap::new(),
            triggers: BTreeMap::new(),
            by_free: BTreeMap::new(),
            by_method: BTreeMap::new(),
            by_method_name: BTreeMap::new(),
        };
        ws.build_symbols();
        ws.build_roots();
        ws.build_edges_and_triggers();
        ws
    }

    /// The function annotated `stage`, in table order.
    pub fn stage_fns(&self) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.fns[i].is_stage)
            .collect()
    }

    /// The hot-path roots: every parallel closure, every `hot`-annotated
    /// function, and every non-`cold` function in [`HOT_FILES`].
    pub fn hot_roots(&self) -> Vec<Node> {
        let mut roots: Vec<Node> = (0..self.par_roots.len()).map(Node::Root).collect();
        for (i, f) in self.fns.iter().enumerate() {
            let hot_file = HOT_FILES.contains(&self.files[f.file].rel.as_str());
            if f.is_hot || (hot_file && !f.is_cold) {
                roots.push(Node::Fn(i));
            }
        }
        roots
    }

    /// Outgoing call edges of a node.
    pub fn callees(&self, n: Node) -> &[usize] {
        self.edges.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Trigger sites recorded in a node's body.
    pub fn node_triggers(&self, n: Node) -> &[Trigger] {
        self.triggers.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A short human-readable label for a node, with file:line for roots.
    pub fn label(&self, n: Node) -> String {
        match n {
            Node::Root(r) => {
                let root = &self.par_roots[r];
                let at = format!("{}:{}", self.files[root.file].rel, root.line);
                match &root.enclosing {
                    Some(f) => format!("{} closure ({at} in {f})", root.primitive),
                    None => format!("{} closure ({at})", root.primitive),
                }
            }
            Node::Fn(i) => self.fns[i].qualified(),
        }
    }

    /// Multi-source BFS from `starts`. Returns, for every reached node, the
    /// chain of nodes from its start (inclusive) to it (inclusive). When
    /// `prune` returns true for a function, traversal does not enter it.
    pub fn reach(
        &self,
        starts: &[Node],
        prune: &dyn Fn(&FnInfo) -> bool,
    ) -> BTreeMap<Node, Vec<Node>> {
        let mut parent: BTreeMap<Node, Option<Node>> = BTreeMap::new();
        let mut queue = VecDeque::new();
        for &s in starts {
            if let Node::Fn(i) = s {
                if prune(&self.fns[i]) {
                    continue;
                }
            }
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s) {
                e.insert(None);
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &callee in self.callees(n) {
                let c = Node::Fn(callee);
                if parent.contains_key(&c) || prune(&self.fns[callee]) {
                    continue;
                }
                parent.insert(c, Some(n));
                queue.push_back(c);
            }
        }
        parent
            .keys()
            .map(|&n| {
                let mut chain = vec![n];
                let mut cur = n;
                while let Some(&Some(p)) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                (n, chain)
            })
            .collect()
    }

    // -- construction -----------------------------------------------------

    fn build_symbols(&mut self) {
        for file_idx in 0..self.files.len() {
            let annos = annotation_targets(&self.files[file_idx]);
            let mut found: Vec<FnInfo> = Vec::new();
            {
                let fm = &self.files[file_idx];
                parse::walk_items(&fm.items, &mut |item, stack| {
                    if item.kind != ItemKind::Fn {
                        return;
                    }
                    // Skip test-masked functions entirely.
                    let kw_tok = item.tokens.0;
                    if fm.test_mask.get(kw_tok).copied().unwrap_or(false) {
                        return;
                    }
                    let self_ty = stack
                        .iter()
                        .rev()
                        .find(|p| p.kind == ItemKind::Impl)
                        .map(|p| p.name.clone());
                    let first_line = fm.toks[item.tokens.0].line;
                    let anno = annos.get(&first_line).or_else(|| annos.get(&item.line));
                    found.push(FnInfo {
                        file: file_idx,
                        self_ty,
                        name: item.name.clone(),
                        line: item.line,
                        body: item.body,
                        returns_result: item.returns_result,
                        is_hot: anno.is_some_and(|a| a.contains(&Anno::Hot)),
                        is_cold: anno.is_some_and(|a| a.contains(&Anno::Cold)),
                        is_stage: anno.is_some_and(|a| a.contains(&Anno::Stage)),
                    });
                });
            }
            for f in found {
                let id = self.fns.len();
                if f.self_ty.is_none() {
                    self.by_free.entry(f.name.clone()).or_default().push(id);
                } else {
                    let ty = f.self_ty.clone().unwrap_or_default();
                    self.by_method
                        .entry((ty, f.name.clone()))
                        .or_default()
                        .push(id);
                    self.by_method_name
                        .entry(f.name.clone())
                        .or_default()
                        .push(id);
                }
                self.fns.push(f);
            }
        }
    }

    fn build_roots(&mut self) {
        for (file_idx, fm) in self.files.iter().enumerate() {
            let fn_spans: Vec<(usize, usize, String)> = self
                .fns
                .iter()
                .filter(|f| f.file == file_idx)
                .filter_map(|f| f.body.map(|(a, b)| (a, b, f.qualified())))
                .collect();
            for (k, t) in fm.toks.iter().enumerate() {
                if fm.test_mask[k]
                    || t.kind != TokKind::Ident
                    || !PAR_FAMILY.contains(&t.text.as_str())
                {
                    continue;
                }
                let Some(open) = fm.toks.get(k + 1).filter(|n| n.text == "(") else {
                    continue;
                };
                let _ = open;
                // Match the argument parens.
                let mut depth = 0usize;
                let mut close = k + 1;
                while close < fm.toks.len() {
                    if fm.toks[close].text == "(" && fm.toks[close].kind == TokKind::Punct {
                        depth += 1;
                    } else if fm.toks[close].text == ")" && fm.toks[close].kind == TokKind::Punct {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    close += 1;
                }
                // Only calls that actually pass a closure argument root the
                // graph (a stray identifier match is not a fan-out).
                let has_closure = fm.toks[k + 1..close.min(fm.toks.len())]
                    .iter()
                    .any(|t| t.kind == TokKind::Punct && t.text == "|");
                if !has_closure {
                    continue;
                }
                let enclosing = fn_spans
                    .iter()
                    .find(|&&(a, b, _)| a <= k && k <= b)
                    .map(|(_, _, name)| name.clone());
                self.par_roots.push(ParRoot {
                    file: file_idx,
                    primitive: t.text.clone(),
                    line: t.line,
                    args: (k + 1, close.min(fm.toks.len().saturating_sub(1))),
                    enclosing,
                });
            }
        }
    }

    fn build_edges_and_triggers(&mut self) {
        type ScanJob = (Node, usize, (usize, usize), Option<String>);
        let mut jobs: Vec<ScanJob> = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            if let Some(range) = f.body {
                jobs.push((Node::Fn(i), f.file, range, f.self_ty.clone()));
            }
        }
        for (r, root) in self.par_roots.iter().enumerate() {
            // Reuse the enclosing fn's self type for `self.m()` resolution
            // inside the closure.
            let self_ty = root
                .enclosing
                .as_ref()
                .and_then(|q| q.split("::").next().filter(|_| q.contains("::")))
                .map(str::to_string);
            jobs.push((Node::Root(r), root.file, root.args, self_ty));
        }
        for (node, file, range, self_ty) in jobs {
            let (callees, trigs) = self.scan_range(file, range, self_ty.as_deref());
            self.edges.insert(node, callees);
            self.triggers.insert(node, trigs);
        }
    }

    /// Scans a token range for call edges and trigger sites.
    fn scan_range(
        &self,
        file: usize,
        range: (usize, usize),
        self_ty: Option<&str>,
    ) -> (Vec<usize>, Vec<Trigger>) {
        let fm = &self.files[file];
        let toks = &fm.toks;
        let mut callees: BTreeSet<usize> = BTreeSet::new();
        let mut trigs: Vec<Trigger> = Vec::new();
        let (lo, hi) = range;
        let hi = hi.min(toks.len().saturating_sub(1));
        for k in lo..=hi {
            if fm.test_mask[k] || toks[k].kind != TokKind::Ident {
                continue;
            }
            let t = &toks[k];
            let next_is = |off: usize, ch: char| {
                toks.get(k + off).is_some_and(|n| {
                    n.kind == TokKind::Punct && n.text.len() == 1 && n.text.starts_with(ch)
                })
            };
            let prev_is = |off: usize, ch: char| {
                k >= off
                    && toks.get(k - off).is_some_and(|n| {
                        n.kind == TokKind::Punct && n.text.len() == 1 && n.text.starts_with(ch)
                    })
            };

            // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
            if next_is(1, '!') && (next_is(2, '(') || next_is(2, '[') || next_is(2, '{')) {
                match t.text.as_str() {
                    "vec" | "format" => trigs.push(trigger(TriggerKind::Alloc, t, file, "!")),
                    "println" | "eprintln" | "print" | "eprint" | "dbg" => {
                        trigs.push(trigger(TriggerKind::Lock, t, file, "!"));
                        trigs.push(trigger(TriggerKind::Io, t, file, "!"));
                    }
                    _ => {}
                }
                continue;
            }

            let is_call = next_is(1, '(')
                || (next_is(1, ':')
                    && next_is(2, ':')
                    && toks.get(k + 3).is_some_and(|n| n.text == "<"));
            if !is_call {
                // Non-call trigger idents (paths like `Atomic*::new` are
                // handled at the `new` token below).
                continue;
            }
            // Skip declarations: `fn name(`.
            if k > 0 && toks[k - 1].kind == TokKind::Ident && toks[k - 1].text == "fn" {
                continue;
            }

            let after_dot = prev_is(1, '.');
            let after_path = prev_is(1, ':') && prev_is(2, ':');

            if after_dot {
                self.method_call(fm, toks, k, self_ty, &mut callees, &mut trigs, file);
            } else if after_path {
                self.path_call(fm, toks, k, self_ty, &mut callees, &mut trigs, file);
            } else {
                self.bare_call(fm, k, &mut callees);
            }
        }
        (callees.into_iter().collect(), trigs)
    }

    /// `recv.m(…)` — triggers for known hazardous methods, edges to
    /// workspace methods.
    #[allow(clippy::too_many_arguments)]
    fn method_call(
        &self,
        fm: &FileModel,
        toks: &[Tok],
        k: usize,
        self_ty: Option<&str>,
        callees: &mut BTreeSet<usize>,
        trigs: &mut Vec<Trigger>,
        file: usize,
    ) {
        let t = &toks[k];
        match t.text.as_str() {
            "clone" => trigs.push(trigger(TriggerKind::Clone, t, file, "()")),
            "collect" | "to_vec" | "to_owned" | "to_string" => {
                trigs.push(trigger(TriggerKind::Alloc, t, file, "()"));
            }
            "lock" => trigs.push(trigger(TriggerKind::Lock, t, file, "()")),
            _ => {}
        }
        // Receiver: `self.m(` resolves within the current impl type;
        // anything else falls back to every workspace method named `m`.
        let recv_self = k >= 2
            && toks[k - 2].kind == TokKind::Ident
            && toks[k - 2].text == "self"
            && !(k >= 3 && toks[k - 3].kind == TokKind::Punct && toks[k - 3].text == ".");
        if recv_self {
            if let Some(ty) = self_ty {
                if let Some(ids) = self.by_method.get(&(ty.to_string(), t.text.clone())) {
                    callees.extend(ids.iter().copied());
                    return;
                }
            }
        }
        let _ = fm;
        if let Some(ids) = self.by_method_name.get(&t.text) {
            callees.extend(ids.iter().copied());
        }
    }

    /// `A::B::f(…)` — resolve the qualifier to a type (method table) or a
    /// module path (free-fn table); record construction triggers.
    #[allow(clippy::too_many_arguments)]
    fn path_call(
        &self,
        fm: &FileModel,
        toks: &[Tok],
        k: usize,
        self_ty: Option<&str>,
        callees: &mut BTreeSet<usize>,
        trigs: &mut Vec<Trigger>,
        file: usize,
    ) {
        let t = &toks[k];
        // Collect the `::`-separated qualifier segments walking back.
        let mut segs: Vec<String> = Vec::new();
        let mut j = k;
        while j >= 3
            && toks[j - 1].kind == TokKind::Punct
            && toks[j - 1].text == ":"
            && toks[j - 2].kind == TokKind::Punct
            && toks[j - 2].text == ":"
            && toks[j - 3].kind == TokKind::Ident
        {
            segs.push(toks[j - 3].text.clone());
            j -= 3;
        }
        segs.reverse();
        let Some(qual_last) = segs.last().cloned() else {
            return;
        };

        // Construction triggers on fully-qualified hazardous paths.
        let name = t.text.as_str();
        let qual = qual_last.as_str();
        let alloc_types = ["Vec", "String", "Box", "VecDeque"];
        let interior = [
            "RefCell",
            "Cell",
            "UnsafeCell",
            "OnceCell",
            "OnceLock",
            "Mutex",
            "RwLock",
        ];
        if (name == "new" || name == "with_capacity" || name == "from")
            && alloc_types.contains(&qual)
        {
            trigs.push(Trigger {
                kind: TriggerKind::Alloc,
                what: format!("{qual}::{name}"),
                file,
                line: t.line,
                col: t.col,
            });
        }
        if name == "new" && (interior.contains(&qual) || qual.starts_with("Atomic")) {
            trigs.push(Trigger {
                kind: TriggerKind::InteriorMut,
                what: format!("{qual}::{name}"),
                file,
                line: t.line,
                col: t.col,
            });
        }
        if matches!(name, "seed_from_u64" | "from_entropy" | "from_rng") {
            trigs.push(Trigger {
                kind: TriggerKind::Rng,
                what: format!("{qual}::{name}"),
                file,
                line: t.line,
                col: t.col,
            });
        }
        if matches!(name, "open" | "create") && qual == "File" {
            trigs.push(Trigger {
                kind: TriggerKind::Io,
                what: format!("File::{name}"),
                file,
                line: t.line,
                col: t.col,
            });
        }
        if qual == "fs"
            || (segs.len() >= 2 && segs[segs.len() - 2] == "fs")
            || (qual == "io" && matches!(name, "stdin" | "stdout" | "stderr"))
        {
            trigs.push(Trigger {
                kind: TriggerKind::Io,
                what: format!("{qual}::{name}"),
                file,
                line: t.line,
                col: t.col,
            });
        }
        if qual == "env"
            && matches!(name, "var" | "var_os" | "vars" | "vars_os")
            && fm.rel != ENV_CHOKEPOINT
        {
            trigs.push(Trigger {
                kind: TriggerKind::EnvRead,
                what: format!("env::{name}"),
                file,
                line: t.line,
                col: t.col,
            });
        }

        // Edges. `Self::f` → current impl type.
        let type_name = if qual == "Self" {
            self_ty.map(str::to_string)
        } else if qual.chars().next().is_some_and(char::is_uppercase) {
            // Resolve a `use` alias to its real last segment.
            Some(
                fm.uses
                    .get(qual)
                    .and_then(|p| p.last().cloned())
                    .unwrap_or_else(|| qual.to_string()),
            )
        } else {
            None
        };
        if let Some(ty) = type_name {
            if let Some(ids) = self.by_method.get(&(ty, t.text.clone())) {
                callees.extend(ids.iter().copied());
            }
            return;
        }
        // Module-qualified free call: resolve through the free-fn table,
        // filtered to the crate the first segment names (via `use` alias
        // or a `vaem_*` lib name).
        if let Some(ids) = self.by_free.get(&t.text) {
            let crate_dir = self.crate_of_path(fm, &segs);
            for &id in ids {
                let target_crate = crate_dir_of(&self.files[self.fns[id].file].rel);
                match &crate_dir {
                    Some(c) => {
                        if target_crate.as_deref() == Some(c.as_str()) {
                            callees.insert(id);
                        }
                    }
                    None => {
                        callees.insert(id);
                    }
                }
            }
        }
    }

    /// `f(…)` with no qualifier: same file, then same crate, then `use`.
    fn bare_call(&self, fm: &FileModel, k: usize, callees: &mut BTreeSet<usize>) {
        let name = &fm.toks[k].text;
        let Some(ids) = self.by_free.get(name) else {
            // A `use`-aliased import may rename: `use a::b as f;` — treat
            // the alias target's last segment as the name.
            if let Some(path) = fm.uses.get(name) {
                if let Some(real) = path.last() {
                    if let Some(ids) = self.by_free.get(real) {
                        callees.extend(ids.iter().copied());
                    }
                }
            }
            return;
        };
        let this_crate = crate_dir_of(&fm.rel);
        let same_file: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| self.files[self.fns[id].file].rel == fm.rel)
            .collect();
        if !same_file.is_empty() {
            callees.extend(same_file);
            return;
        }
        let same_crate: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| crate_dir_of(&self.files[self.fns[id].file].rel) == this_crate)
            .collect();
        if !same_crate.is_empty() {
            callees.extend(same_crate);
            return;
        }
        // Imported by `use`: any candidate whose crate matches the alias
        // path's first segment.
        if let Some(path) = fm.uses.get(name) {
            if let Some(c) = lib_to_crate_dir(path.first().map(String::as_str).unwrap_or("")) {
                callees.extend(ids.iter().copied().filter(|&id| {
                    crate_dir_of(&self.files[self.fns[id].file].rel).as_deref() == Some(c.as_str())
                }));
            }
        }
    }

    /// Candidate workspace functions the call token at `k` may invoke —
    /// the same resolution the graph builder uses, minus impl context
    /// (used by the E-rules to ask "does this call return `Result`?").
    pub fn resolve_call_candidates(&self, file_idx: usize, k: usize) -> Vec<usize> {
        let fm = &self.files[file_idx];
        let toks = &fm.toks;
        if k > 0 && toks[k - 1].kind == TokKind::Ident && toks[k - 1].text == "fn" {
            return Vec::new();
        }
        let prev_is = |off: usize, ch: char| {
            k >= off
                && toks.get(k - off).is_some_and(|n| {
                    n.kind == TokKind::Punct && n.text.len() == 1 && n.text.starts_with(ch)
                })
        };
        let mut callees = BTreeSet::new();
        let mut trigs = Vec::new();
        if prev_is(1, '.') {
            self.method_call(fm, toks, k, None, &mut callees, &mut trigs, file_idx);
        } else if prev_is(1, ':') && prev_is(2, ':') {
            self.path_call(fm, toks, k, None, &mut callees, &mut trigs, file_idx);
        } else {
            self.bare_call(fm, k, &mut callees);
        }
        callees.into_iter().collect()
    }

    /// Crate directory a module-qualified path refers to, when decidable.
    fn crate_of_path(&self, fm: &FileModel, segs: &[String]) -> Option<String> {
        let first = segs.first()?;
        match first.as_str() {
            "crate" | "self" | "super" => crate_dir_of(&fm.rel),
            _ => {
                let resolved = fm
                    .uses
                    .get(first)
                    .and_then(|p| p.first().cloned())
                    .unwrap_or_else(|| first.clone());
                lib_to_crate_dir(&resolved)
            }
        }
    }
}

fn trigger(kind: TriggerKind, t: &Tok, file: usize, suffix: &str) -> Trigger {
    Trigger {
        kind,
        what: format!(
            "{}{}{suffix}",
            if suffix == "()" { "." } else { "" },
            t.text
        ),
        file,
        line: t.line,
        col: t.col,
    }
}

/// The `crates/<name>` a workspace-relative path belongs to.
fn crate_dir_of(rel: &str) -> Option<String> {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => Some(name.to_string()),
        _ => None,
    }
}

/// Maps a library name from a `use` path to its crate directory
/// (`vaem` → `core`, `vaem_sparse` → `sparse`).
fn lib_to_crate_dir(lib: &str) -> Option<String> {
    if lib == "vaem" {
        return Some("core".to_string());
    }
    lib.strip_prefix("vaem_").map(str::to_string)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Anno {
    Hot,
    Cold,
    Stage,
}

/// Maps each code line to the annotations targeting it. An annotation
/// comment targets the next code line (or its own line when trailing),
/// mirroring waiver placement.
fn annotation_targets(fm: &FileModel) -> BTreeMap<usize, Vec<Anno>> {
    let code_lines: BTreeSet<usize> = fm.toks.iter().map(|t| t.line).collect();
    let mut out: BTreeMap<usize, Vec<Anno>> = BTreeMap::new();
    for c in &fm.comments {
        let body = c.text.trim_start_matches('/');
        let body = body.strip_prefix('!').unwrap_or(body).trim_start();
        let Some(rest) = body.strip_prefix("vaem-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let anno = if rest.starts_with("hot") {
            Anno::Hot
        } else if rest.starts_with("cold") {
            Anno::Cold
        } else if rest.starts_with("stage") {
            Anno::Stage
        } else {
            continue;
        };
        let trailing = fm.toks.iter().any(|t| t.line == c.line && t.col < c.col);
        let target = if trailing {
            Some(c.line)
        } else {
            code_lines.range(c.end_line + 1..).next().copied()
        };
        if let Some(line) = target {
            out.entry(line).or_default().push(anno);
        }
    }
    out
}

/// Flattens every top-level and nested `use` item into one alias map.
fn collect_uses(items: &[Item], out: &mut BTreeMap<String, Vec<String>>) {
    parse::walk_items(items, &mut |item, _| {
        if item.kind == ItemKind::Use {
            for leaf in &item.use_leaves {
                out.insert(leaf.alias.clone(), leaf.path.clone());
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        Workspace::build(&sources)
    }

    #[test]
    fn par_closures_become_roots_and_reach_callees() {
        let w = ws(&[(
            "crates/core/src/run.rs",
            r#"
use vaem_parallel::par_map;
fn worker(x: u32) -> u32 { helper(x) }
fn helper(x: u32) -> u32 { let v = Vec::new(); v.len() as u32 + x }
pub fn run(xs: &[u32]) -> Vec<u32> {
    par_map(2, 1, xs, |x| worker(*x))
}
"#,
        )]);
        assert_eq!(w.par_roots.len(), 1);
        assert_eq!(w.par_roots[0].primitive, "par_map");
        assert_eq!(w.par_roots[0].enclosing.as_deref(), Some("run"));
        let reached = w.reach(&w.hot_roots(), &|f| f.is_cold);
        let names: BTreeSet<String> = reached.keys().map(|&n| w.label(n)).collect();
        assert!(names.iter().any(|n| n == "worker"), "{names:?}");
        assert!(names.iter().any(|n| n == "helper"), "{names:?}");
        // helper's Vec::new is a recorded alloc trigger.
        let helper = reached
            .keys()
            .copied()
            .find(|&n| w.label(n) == "helper")
            .unwrap();
        assert!(w
            .node_triggers(helper)
            .iter()
            .any(|t| t.kind == TriggerKind::Alloc && t.what == "Vec::new"));
    }

    #[test]
    fn cold_annotation_prunes_traversal() {
        let w = ws(&[(
            "crates/core/src/run.rs",
            r#"
use vaem_parallel::par_map;
/// Amortized setup.
// vaem-lint: cold per-sample setup, amortized over the solve
fn setup(x: u32) -> Vec<u32> { vec![x] }
pub fn run(xs: &[u32]) -> Vec<u32> {
    par_map(2, 1, xs, |x| setup(*x).len() as u32)
}
"#,
        )]);
        let reached = w.reach(&w.hot_roots(), &|f| f.is_cold);
        assert!(
            !reached.keys().any(|&n| w.label(n) == "setup"),
            "cold fn must not be entered"
        );
    }

    #[test]
    fn hot_and_stage_annotations_mark_fns() {
        let w = ws(&[(
            "crates/sparse/src/solve.rs",
            r#"
// vaem-lint: hot inner Krylov loop
pub fn krylov_step(x: &mut [f64]) { x[0] += 1.0; }

// vaem-lint: stage pure reordering
pub fn order(n: usize) -> Vec<usize> { (0..n).collect() }
"#,
        )]);
        let hot: Vec<&FnInfo> = w.fns.iter().filter(|f| f.is_hot).collect();
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].name, "krylov_step");
        assert_eq!(w.stage_fns().len(), 1);
        assert_eq!(w.fns[w.stage_fns()[0]].name, "order");
        assert!(w
            .hot_roots()
            .iter()
            .any(|&n| matches!(n, Node::Fn(i) if w.fns[i].name == "krylov_step")));
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl() {
        let w = ws(&[(
            "crates/fvm/src/op.rs",
            r#"
pub struct Op;
impl Op {
    pub fn outer(&self) -> f64 { self.inner() }
    fn inner(&self) -> f64 { 42.0 }
}
"#,
        )]);
        let outer = w.fns.iter().position(|f| f.name == "outer").unwrap();
        let callees = w.callees(Node::Fn(outer));
        assert_eq!(callees.len(), 1);
        assert_eq!(w.fns[callees[0]].name, "inner");
    }

    #[test]
    fn cross_crate_free_calls_resolve_through_use() {
        let w = ws(&[
            (
                "crates/sparse/src/ordering.rs",
                "pub fn amd(n: usize) -> Vec<usize> { (0..n).collect() }\n",
            ),
            (
                "crates/core/src/driver.rs",
                "use vaem_sparse::ordering::amd;\npub fn go() { let _p = amd(3); }\n",
            ),
        ]);
        let go = w.fns.iter().position(|f| f.name == "go").unwrap();
        let callees = w.callees(Node::Fn(go));
        assert_eq!(callees.len(), 1);
        assert_eq!(w.fns[callees[0]].name, "amd");
    }

    #[test]
    fn purity_triggers_are_recorded() {
        let w = ws(&[(
            "crates/stochastic/src/rng_use.rs",
            r#"
use rand::SeedableRng;
pub fn sample(seed: u64) -> f64 {
    let _rng = StdRng::seed_from_u64(seed);
    let _cell = RefCell::new(0u32);
    let _x = std::env::var("VAEM_X");
    0.0
}
"#,
        )]);
        let f = w.fns.iter().position(|f| f.name == "sample").unwrap();
        let kinds: Vec<TriggerKind> = w
            .node_triggers(Node::Fn(f))
            .iter()
            .map(|t| t.kind)
            .collect();
        assert!(kinds.contains(&TriggerKind::Rng));
        assert!(kinds.contains(&TriggerKind::InteriorMut));
        assert!(kinds.contains(&TriggerKind::EnvRead));
    }
}
