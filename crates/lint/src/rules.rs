//! The vaem-lint rule catalog and single-file rule engine.
//!
//! Every rule guards one textual invariant behind the repository's headline
//! guarantee — bit-identical results at any thread count — or behind the
//! safety story of the few `unsafe` kernels:
//!
//! | ID | Invariant |
//! |----|-----------|
//! | D1 | No `HashMap`/`HashSet` in non-test library code: hash iteration order is nondeterministic, the top threat to the digest guarantee. Lookup-only maps may be waived. |
//! | D2 | `std::env::var` (and friends) only inside the allowlisted config module, so every behavior-changing knob is centralized and documented. |
//! | D3 | `thread::spawn`/`thread::scope` only inside `vaem_parallel` — one claiming discipline to audit. |
//! | D4 | Every `unsafe` block/impl/fn is immediately preceded by a `// SAFETY:` comment (or a `# Safety` doc section), and `unsafe` only appears in allowlisted files. |
//! | D5 | `unwrap()`/`expect()`/`panic!` in solver-library code is a per-file budget ratchet (`lint_budget.toml`): the count can only go down. |
//! | D6 | No `Instant::now`/`SystemTime::now` outside `crates/bench` — wall-clock reads must never influence numeric results. |
//! | H1 | No allocation (`Vec::new`, `vec!`, `collect`, `format!`, …) in a function reachable from a parallel worker closure or hot kernel (see [`crate::semantic`]). |
//! | H2 | No `.clone()` on the hot path. |
//! | H3 | No lock acquisition or stdout serialization on the hot path. |
//! | P1 | A `// vaem-lint: stage` function must not transitively reach env reads outside the chokepoint, interior mutability, RNG construction, or I/O. |
//! | E1 | No discarded `Result` in library code (`let _ =` on a Result-returning call, or a dropped `.ok()`). |
//! | E2 | No empty `Err(…) => {}` match arm in library code. |
//! | W0 | A waiver must carry a non-empty reason string. |
//! | W1 | A waiver must suppress at least one finding and name a known rule. |
//!
//! D1–D6 are token rules computed per file; H/P/E are semantic rules
//! computed on the whole-workspace call graph ([`crate::model`]) and
//! merged into the per-file report before waivers apply, so the same
//! inline-waiver syntax covers both.
//!
//! A finding is waived inline with a line comment of the form
//! `vaem-lint: allow(<RULE>) <reason>` (written after `//`), either trailing
//! the offending line or on its own line immediately above it.

use crate::lexer::{self, Comment, Tok, TokKind};
use std::collections::BTreeSet;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-ordered collection in library code.
    D1,
    /// Environment read outside the config module.
    D2,
    /// Thread creation outside `vaem_parallel`.
    D3,
    /// `unsafe` without a SAFETY comment or outside allowlisted files.
    D4,
    /// Panic-path site counted against the per-file budget.
    D5,
    /// Wall-clock read outside `crates/bench`.
    D6,
    /// Allocation on the hot path.
    H1,
    /// Clone on the hot path.
    H2,
    /// Lock acquisition / stdout serialization on the hot path.
    H3,
    /// Impurity reachable from a cache-stage function.
    P1,
    /// Discarded `Result` in library code.
    E1,
    /// Swallowed error arm in library code.
    E2,
    /// Waiver without a reason string.
    W0,
    /// Unused waiver or unknown rule id in a waiver.
    W1,
}

impl Rule {
    /// The machine-readable rule id.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::H1 => "H1",
            Rule::H2 => "H2",
            Rule::H3 => "H3",
            Rule::P1 => "P1",
            Rule::E1 => "E1",
            Rule::E2 => "E2",
            Rule::W0 => "W0",
            Rule::W1 => "W1",
        }
    }

    /// Parses a rule id as written inside a waiver.
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            "H1" => Some(Rule::H1),
            "H2" => Some(Rule::H2),
            "H3" => Some(Rule::H3),
            "P1" => Some(Rule::P1),
            "E1" => Some(Rule::E1),
            "E2" => Some(Rule::E2),
            _ => None,
        }
    }
}

/// One span-accurate lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The lint outcome for one source file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unwaived violations (all rules except the D5 occurrence sites).
    pub violations: Vec<Finding>,
    /// Unwaived D5 panic-path sites; whether they violate is decided by the
    /// per-file budget in `lint_budget.toml`, not per site.
    pub d5_sites: Vec<Finding>,
    /// Findings suppressed by an inline waiver, with the waiver's reason.
    pub waived: Vec<(Finding, String)>,
}

/// The only file allowed to call `std::env::var` (rule D2).
pub const D2_ENV_MODULE: &str = "crates/parallel/src/env.rs";

/// The only path prefix allowed to create threads (rule D3).
pub const D3_THREAD_CRATE: &str = "crates/parallel/src/";

/// Files allowed to contain `unsafe` at all (rule D4).
pub const D4_UNSAFE_FILES: &[&str] = &[
    "crates/numeric/src/panel.rs",
    "crates/numeric/src/vecops.rs",
    "crates/sparse/src/symbolic.rs",
    "crates/parallel/src/lib.rs",
];

/// Library crates whose panic paths are reachable from
/// `VariationalAnalysis::run` and therefore budgeted by rule D5. The bench
/// harness and this lint tool are excluded: they are tooling, not solver
/// library code.
pub const D5_LIBRARY_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/fvm/src/",
    "crates/mesh/src/",
    "crates/numeric/src/",
    "crates/parallel/src/",
    "crates/physics/src/",
    "crates/sparse/src/",
    "crates/stochastic/src/",
    "crates/variation/src/",
];

/// Path prefix where wall-clock reads are allowed (rule D6).
pub const D6_TIMING_PREFIX: &str = "crates/bench/";

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

const ENV_READ_FNS: &[&str] = &["var", "var_os", "vars", "vars_os", "set_var", "remove_var"];

const THREAD_FNS: &[&str] = &["spawn", "scope", "Builder"];

/// One parsed inline waiver.
#[derive(Debug)]
struct Waiver {
    rules: Vec<String>,
    reason: String,
    /// Line the waiver applies to (its own line for trailing waivers, the
    /// next code line for standalone ones). `None` when no code follows.
    target_line: Option<usize>,
    /// Line of the waiver comment itself (for W0/W1 reporting).
    comment_line: usize,
    comment_col: usize,
}

/// Lints one source file with the token rules only. `rel_path` must be
/// workspace-relative with forward slashes — the per-rule allowlists match
/// on it.
pub fn lint_source(rel_path: &str, source: &str) -> FileReport {
    lint_source_with(rel_path, source, Vec::new())
}

/// Lints one source file, merging externally computed findings (the
/// semantic H/P/E families from [`crate::semantic`]) before waivers
/// apply, so one inline waiver syntax covers every rule family.
pub fn lint_source_with(rel_path: &str, source: &str, extra: Vec<Finding>) -> FileReport {
    let lexed = lexer::lex(source);
    let toks = &lexed.toks;
    let test_mask = test_token_mask(toks);
    let attr_mask = attribute_token_mask(toks);
    let test_lines = test_line_spans(toks, &test_mask);

    let mut findings: Vec<Finding> = extra;
    check_d1(rel_path, toks, &test_mask, &mut findings);
    check_d2(rel_path, toks, &test_mask, &mut findings);
    check_d3(rel_path, toks, &test_mask, &mut findings);
    check_d4(
        rel_path,
        toks,
        &test_mask,
        &attr_mask,
        &lexed.comments,
        &mut findings,
    );
    check_d5(rel_path, toks, &test_mask, &mut findings);
    check_d6(rel_path, toks, &test_mask, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col, f.rule));

    let waivers = parse_waivers(&lexed.comments, toks, &test_lines);
    apply_waivers(findings, waivers)
}

// ---------------------------------------------------------------------------
// Token-stream helpers

fn is_punct(t: &Tok, ch: char) -> bool {
    t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
}

fn is_ident(t: &Tok, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

/// Marks every token that belongs to a `#[…test…]`-attributed item (the
/// attribute itself, the item header and its entire brace-matched body).
/// Handles `#[cfg(test)] mod tests { … }`, `#[test] fn …`, and chained
/// attributes; `#[cfg_attr(…)]` is not treated as a test marker. Shared
/// with the semantic model so symbol tables skip test code the same way.
pub(crate) fn test_token_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut k = 0usize;
    while k < toks.len() {
        if !(is_punct(&toks[k], '#') && k + 1 < toks.len() && is_punct(&toks[k + 1], '[')) {
            k += 1;
            continue;
        }
        let attr_start = k;
        let mut is_test = false;
        // Walk the (possibly chained) attribute list.
        let mut j = k;
        while j + 1 < toks.len() && is_punct(&toks[j], '#') && is_punct(&toks[j + 1], '[') {
            let mut depth = 0usize;
            let mut first_ident: Option<&str> = None;
            let mut saw_test = false;
            let mut m = j + 1;
            while m < toks.len() {
                let t = &toks[m];
                if is_punct(t, '[') {
                    depth += 1;
                } else if is_punct(t, ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Ident {
                    if first_ident.is_none() {
                        first_ident = Some(&t.text);
                    }
                    if t.text == "test" {
                        saw_test = true;
                    }
                }
                m += 1;
            }
            if saw_test && first_ident != Some("cfg_attr") {
                is_test = true;
            }
            j = m + 1;
        }
        if !is_test {
            k += 1;
            continue;
        }
        // Skip the item header to its body (or a body-less `;`).
        let mut m = j;
        while m < toks.len() && !is_punct(&toks[m], '{') && !is_punct(&toks[m], ';') {
            m += 1;
        }
        let end = if m < toks.len() && is_punct(&toks[m], '{') {
            let mut depth = 0usize;
            let mut e = m;
            while e < toks.len() {
                if is_punct(&toks[e], '{') {
                    depth += 1;
                } else if is_punct(&toks[e], '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                e += 1;
            }
            e
        } else {
            m
        };
        for flag in mask
            .iter_mut()
            .take(end.min(toks.len() - 1) + 1)
            .skip(attr_start)
        {
            *flag = true;
        }
        k = end + 1;
    }
    mask
}

/// Marks tokens inside any `#[…]` attribute group (used to let attribute
/// lines sit between a SAFETY comment and its `unsafe` item).
fn attribute_token_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut k = 0usize;
    while k < toks.len() {
        if is_punct(&toks[k], '#') && k + 1 < toks.len() && is_punct(&toks[k + 1], '[') {
            let mut depth = 0usize;
            let mut m = k + 1;
            while m < toks.len() {
                if is_punct(&toks[m], '[') {
                    depth += 1;
                } else if is_punct(&toks[m], ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                m += 1;
            }
            for flag in mask.iter_mut().take(m.min(toks.len() - 1) + 1).skip(k) {
                *flag = true;
            }
            k = m + 1;
        } else {
            k += 1;
        }
    }
    mask
}

/// Line spans `(first, last)` covered by test regions.
fn test_line_spans(toks: &[Tok], mask: &[bool]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut open: Option<(usize, usize)> = None;
    for (t, &m) in toks.iter().zip(mask) {
        if m {
            open = match open {
                None => Some((t.line, t.line)),
                Some((a, _)) => Some((a, t.line)),
            };
        } else if let Some(span) = open.take() {
            spans.push(span);
        }
    }
    if let Some(span) = open {
        spans.push(span);
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

/// True when the token at `k` sits inside a `use` declaration (scan back to
/// the previous `;`, bounded).
fn in_use_statement(toks: &[Tok], k: usize) -> bool {
    let mut j = k;
    let mut steps = 0usize;
    while j > 0 && steps < 64 {
        j -= 1;
        steps += 1;
        if is_punct(&toks[j], ';') {
            return false;
        }
        if is_ident(&toks[j], "use") {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rules

/// D1 — hash-ordered collections. Flags (a) each line that names
/// `HashMap`/`HashSet` outside `use` declarations (one finding per line so a
/// waiver maps 1:1), and (b) every iteration-method call or `for … in` loop
/// over an identifier bound to a hash collection in the same file.
fn check_d1(rel_path: &str, toks: &[Tok], test_mask: &[bool], out: &mut Vec<Finding>) {
    let _ = rel_path;
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut flagged_lines: BTreeSet<usize> = BTreeSet::new();

    for (k, t) in toks.iter().enumerate() {
        if test_mask[k] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            if in_use_statement(toks, k) {
                continue;
            }
            // Path position (`collections::HashMap`) never names a binding,
            // but still flags the line.
            if flagged_lines.insert(t.line) {
                out.push(Finding {
                    rule: Rule::D1,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` in library code: hash iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or a sorted \
                         Vec, or waive with a reason if it is lookup-only",
                        t.text
                    ),
                });
            }
            // Record the bound identifier: `name: HashMap<…>` or
            // `name = HashMap::new()`.
            if k >= 2 {
                let prev = &toks[k - 1];
                let prev2 = &toks[k - 2];
                let is_path = is_punct(prev, ':') && is_punct(prev2, ':');
                if !is_path
                    && (is_punct(prev, ':') || is_punct(prev, '='))
                    && prev2.kind == TokKind::Ident
                {
                    bound.insert(prev2.text.clone());
                }
            }
        }
    }

    for (k, t) in toks.iter().enumerate() {
        if test_mask[k] || t.kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` style calls on hash-bound identifiers.
        if HASH_ITER_METHODS.contains(&t.text.as_str())
            && k >= 2
            && k + 1 < toks.len()
            && is_punct(&toks[k - 1], '.')
            && is_punct(&toks[k + 1], '(')
            && toks[k - 2].kind == TokKind::Ident
            && bound.contains(&toks[k - 2].text)
        {
            out.push(Finding {
                rule: Rule::D1,
                line: t.line,
                col: t.col,
                message: format!(
                    "iteration over hash collection `{}` (`.{}()`): the \
                     visit order is nondeterministic",
                    toks[k - 2].text,
                    t.text
                ),
            });
        }
        // `for pat in name { … }` over a hash-bound identifier.
        if is_ident(t, "for") {
            for j in k + 1..(k + 40).min(toks.len()) {
                if !is_ident(&toks[j], "in") {
                    continue;
                }
                let mut m = j + 1;
                while m < toks.len() && (is_punct(&toks[m], '&') || is_ident(&toks[m], "mut")) {
                    m += 1;
                }
                if m < toks.len() && toks[m].kind == TokKind::Ident && bound.contains(&toks[m].text)
                {
                    out.push(Finding {
                        rule: Rule::D1,
                        line: toks[m].line,
                        col: toks[m].col,
                        message: format!(
                            "`for … in` over hash collection `{}`: the visit \
                             order is nondeterministic",
                            toks[m].text
                        ),
                    });
                }
                break;
            }
        }
    }
}

/// D2 — environment reads. Every `env::var`-family call outside the config
/// module is a violation: behavior-changing knobs must be centralized.
fn check_d2(rel_path: &str, toks: &[Tok], test_mask: &[bool], out: &mut Vec<Finding>) {
    if rel_path == D2_ENV_MODULE {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if test_mask[k] || t.kind != TokKind::Ident || k < 3 {
            continue;
        }
        if ENV_READ_FNS.contains(&t.text.as_str())
            && is_punct(&toks[k - 1], ':')
            && is_punct(&toks[k - 2], ':')
            && is_ident(&toks[k - 3], "env")
        {
            out.push(Finding {
                rule: Rule::D2,
                line: t.line,
                col: t.col,
                message: format!(
                    "`env::{}` outside `{}`: route environment knobs through \
                     `vaem_parallel::env` so they stay documented and clamped",
                    t.text, D2_ENV_MODULE
                ),
            });
        }
    }
}

/// D3 — thread creation. `thread::spawn`/`scope`/`Builder` only inside the
/// `vaem_parallel` crate, which owns the one audited claiming discipline.
fn check_d3(rel_path: &str, toks: &[Tok], test_mask: &[bool], out: &mut Vec<Finding>) {
    if rel_path.starts_with(D3_THREAD_CRATE) {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if test_mask[k] || t.kind != TokKind::Ident || k < 3 {
            continue;
        }
        if THREAD_FNS.contains(&t.text.as_str())
            && is_punct(&toks[k - 1], ':')
            && is_punct(&toks[k - 2], ':')
            && is_ident(&toks[k - 3], "thread")
        {
            out.push(Finding {
                rule: Rule::D3,
                line: t.line,
                col: t.col,
                message: format!(
                    "`thread::{}` outside `vaem_parallel`: all fan-out goes \
                     through the audited work-stealing primitives",
                    t.text
                ),
            });
        }
    }
}

/// D4 — `unsafe` hygiene: only in allowlisted files, and every `unsafe`
/// token immediately preceded by a contiguous comment run containing
/// `SAFETY:` (or a doc comment with a `# Safety` section). Attribute-only
/// lines may sit between the comment and the `unsafe` item.
fn check_d4(
    rel_path: &str,
    toks: &[Tok],
    test_mask: &[bool],
    attr_mask: &[bool],
    comments: &[Comment],
    out: &mut Vec<Finding>,
) {
    let allowlisted = D4_UNSAFE_FILES.contains(&rel_path);
    // Per-line facts for the upward walk: which lines hold code, and which
    // hold only attribute tokens (those may sit between a SAFETY comment
    // and its `unsafe` item).
    let code_lines: BTreeSet<usize> = toks.iter().map(|t| t.line).collect();
    let mut attr_only: BTreeSet<usize> = BTreeSet::new();
    for line in &code_lines {
        let all_attr = toks
            .iter()
            .zip(attr_mask)
            .filter(|(t, _)| t.line == *line)
            .all(|(_, &m)| m);
        if all_attr {
            attr_only.insert(*line);
        }
    }

    let comment_has_marker =
        |c: &Comment| c.text.contains("SAFETY:") || c.text.contains("# Safety");
    let comments_on = |line: usize| {
        comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    };

    for (k, t) in toks.iter().enumerate() {
        if test_mask[k] || !is_ident(t, "unsafe") {
            continue;
        }
        if !allowlisted {
            out.push(Finding {
                rule: Rule::D4,
                line: t.line,
                col: t.col,
                message: format!(
                    "`unsafe` is not permitted in `{rel_path}`: only the \
                     allowlisted kernel files may contain it"
                ),
            });
            continue;
        }
        // Same-line comment before the token?
        let mut ok = comments_on(t.line).any(|c| c.col < t.col && comment_has_marker(c));
        // Walk the contiguous comment/attribute run directly above.
        let mut line = t.line;
        while !ok && line > 1 {
            line -= 1;
            let has_code = code_lines.contains(&line) && !attr_only.contains(&line);
            if has_code {
                break;
            }
            let cs: Vec<&Comment> = comments_on(line).collect();
            if cs.is_empty() && !attr_only.contains(&line) {
                break; // blank line ends the run
            }
            if cs.iter().any(|c| comment_has_marker(c)) {
                ok = true;
            }
        }
        if !ok {
            out.push(Finding {
                rule: Rule::D4,
                line: t.line,
                col: t.col,
                message: "`unsafe` without an immediately preceding \
                          `// SAFETY:` comment (or `# Safety` doc section)"
                    .to_string(),
            });
        }
    }
}

/// D5 — panic-path sites (`.unwrap()`, `.expect(…)`, `panic!`) in solver
/// library code. Individual sites are not violations; the per-file count is
/// checked against the `lint_budget.toml` ratchet by the caller.
fn check_d5(rel_path: &str, toks: &[Tok], test_mask: &[bool], out: &mut Vec<Finding>) {
    if !D5_LIBRARY_PREFIXES.contains(&prefix_of(rel_path).as_str()) {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if test_mask[k] || t.kind != TokKind::Ident {
            continue;
        }
        let site = if (t.text == "unwrap" || t.text == "expect")
            && k >= 1
            && k + 1 < toks.len()
            && is_punct(&toks[k - 1], '.')
            && is_punct(&toks[k + 1], '(')
        {
            Some(format!(".{}()", t.text))
        } else if t.text == "panic" && k + 1 < toks.len() && is_punct(&toks[k + 1], '!') {
            Some("panic!".to_string())
        } else {
            None
        };
        if let Some(what) = site {
            out.push(Finding {
                rule: Rule::D5,
                line: t.line,
                col: t.col,
                message: format!(
                    "{what} in solver library code counts against the \
                     per-file panic budget (lint_budget.toml)"
                ),
            });
        }
    }
}

/// D6 — wall-clock reads (`Instant::now`, `SystemTime::now`) outside the
/// bench harness. Timing must never influence numeric results; waive the
/// reporting-only sites with a reason.
fn check_d6(rel_path: &str, toks: &[Tok], test_mask: &[bool], out: &mut Vec<Finding>) {
    if rel_path.starts_with(D6_TIMING_PREFIX) {
        return;
    }
    for (k, t) in toks.iter().enumerate() {
        if test_mask[k] || t.kind != TokKind::Ident || k < 3 {
            continue;
        }
        if is_ident(t, "now")
            && is_punct(&toks[k - 1], ':')
            && is_punct(&toks[k - 2], ':')
            && (is_ident(&toks[k - 3], "Instant") || is_ident(&toks[k - 3], "SystemTime"))
        {
            out.push(Finding {
                rule: Rule::D6,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}::now` outside `crates/bench`: wall-clock reads must \
                     not influence numeric results (waive with a reason if \
                     this only feeds reporting metadata)",
                    toks[k - 3].text
                ),
            });
        }
    }
}

/// `crates/<name>/src/` prefix of a workspace-relative path (empty when the
/// path is not of that shape).
fn prefix_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("crates"), Some(name), Some("src")) => format!("crates/{name}/src/"),
        _ => String::new(),
    }
}

// ---------------------------------------------------------------------------
// Waivers

/// Parses every `vaem-lint: allow(RULE) reason` line comment outside test
/// regions and resolves its target line.
fn parse_waivers(comments: &[Comment], toks: &[Tok], test_lines: &[(usize, usize)]) -> Vec<Waiver> {
    let code_lines: BTreeSet<usize> = toks.iter().map(|t| t.line).collect();
    let mut waivers = Vec::new();
    for c in comments {
        if in_spans(test_lines, c.line) {
            continue;
        }
        let body = c.text.trim_start_matches('/');
        let body = body.strip_prefix('!').unwrap_or(body).trim_start();
        let Some(rest) = body.strip_prefix("vaem-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = rest[close + 1..].trim().to_string();
        let trailing = toks.iter().any(|t| t.line == c.line && t.col < c.col);
        let target_line = if trailing {
            Some(c.line)
        } else {
            code_lines.range(c.end_line + 1..).next().copied()
        };
        waivers.push(Waiver {
            rules,
            reason,
            target_line,
            comment_line: c.line,
            comment_col: c.col,
        });
    }
    waivers
}

/// Applies waivers to the raw findings and splits the result into
/// violations, budget-governed D5 sites, and waived findings.
fn apply_waivers(findings: Vec<Finding>, waivers: Vec<Waiver>) -> FileReport {
    let mut remaining: Vec<Option<Finding>> = findings.into_iter().map(Some).collect();
    let mut report = FileReport::default();

    for w in &waivers {
        if w.reason.is_empty() {
            report.violations.push(Finding {
                rule: Rule::W0,
                line: w.comment_line,
                col: w.comment_col,
                message: "waiver without a reason: write \
                          `vaem-lint: allow(RULE) <why this is sound>`"
                    .to_string(),
            });
            continue;
        }
        let mut matched = 0usize;
        for rule_id in &w.rules {
            let Some(rule) = Rule::from_id(rule_id) else {
                report.violations.push(Finding {
                    rule: Rule::W1,
                    line: w.comment_line,
                    col: w.comment_col,
                    message: format!("waiver names unknown rule `{rule_id}`"),
                });
                continue;
            };
            for slot in remaining.iter_mut() {
                let hit = slot
                    .as_ref()
                    .is_some_and(|f| f.rule == rule && Some(f.line) == w.target_line);
                if hit {
                    let f = slot.take().expect("checked above");
                    report.waived.push((f, w.reason.clone()));
                    matched += 1;
                }
            }
        }
        if matched == 0 && w.rules.iter().all(|r| Rule::from_id(r).is_some()) {
            report.violations.push(Finding {
                rule: Rule::W1,
                line: w.comment_line,
                col: w.comment_col,
                message: "unused waiver: no finding of the named rule on the \
                          waived line"
                    .to_string(),
            });
        }
    }

    for f in remaining.into_iter().flatten() {
        if f.rule == Rule::D5 {
            report.d5_sites.push(f);
        } else {
            report.violations.push(f);
        }
    }
    report.violations.sort_by_key(|f| (f.line, f.col, f.rule));
    report
}
