//! The call-graph-aware rule families on top of [`crate::model`]:
//!
//! * **H1/H2/H3** — hot-path hygiene. Every trigger (allocation, clone,
//!   lock/print) in any function reachable from a parallel worker closure,
//!   an annotated `hot` function, or the numeric kernel files fires, and
//!   the diagnostic prints the call-graph path from the root to the
//!   violating call.
//! * **P1** — stage purity. A function annotated `// vaem-lint: stage`
//!   must not transitively reach env reads outside the chokepoint,
//!   interior-mutability construction, RNG construction, or I/O — the
//!   static precondition for content-addressed stage caching.
//! * **E1/E2** — error hygiene in library code: a discarded `Result`
//!   (`let _ =` on a Result-returning workspace call, or an `.ok()` whose
//!   value is immediately dropped) and an empty `Err(…) => {}` match arm.
//!
//! Findings land at the trigger site (the file/line to fix or waive), so
//! the existing inline-waiver machinery applies unchanged.

use crate::lexer::{Tok, TokKind};
use crate::model::{Node, TriggerKind, Workspace, ENV_CHOKEPOINT};
use crate::rules::{Finding, Rule, D5_LIBRARY_PREFIXES};
use std::collections::BTreeMap;

/// Runs every semantic family over the model; returns findings keyed by
/// workspace-relative path.
pub fn analyze(ws: &Workspace) -> BTreeMap<String, Vec<Finding>> {
    let mut out: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    hot_path_rules(ws, &mut out);
    stage_purity(ws, &mut out);
    error_hygiene(ws, &mut out);
    for findings in out.values_mut() {
        findings.sort_by_key(|f| (f.line, f.col, f.rule));
    }
    out
}

/// Renders a reachability chain as `root → f → g`.
fn render_chain(ws: &Workspace, chain: &[Node]) -> String {
    chain
        .iter()
        .map(|&n| ws.label(n))
        .collect::<Vec<_>>()
        .join(" → ")
}

fn hot_path_rules(ws: &Workspace, out: &mut BTreeMap<String, Vec<Finding>>) {
    let reached = ws.reach(&ws.hot_roots(), &|f| f.is_cold);
    // One finding per site even when many roots reach it.
    let mut seen: BTreeMap<(usize, usize, usize, Rule), ()> = BTreeMap::new();
    for (&node, chain) in &reached {
        for t in ws.node_triggers(node) {
            let (rule, why) = match t.kind {
                TriggerKind::Alloc => (
                    Rule::H1,
                    "allocates on the hot path; hoist the buffer into \
                     per-thread scratch or the setup phase",
                ),
                TriggerKind::Clone => (
                    Rule::H2,
                    "clones on the hot path; borrow or move the value \
                     instead, or hoist the clone out of the worker",
                ),
                TriggerKind::Lock => (
                    Rule::H3,
                    "acquires a lock / serializes on stdout inside the hot \
                     path; workers must stay lock-free",
                ),
                // Purity kinds never fire H rules (Io doubles as Lock for
                // print macros, recorded separately).
                _ => continue,
            };
            if seen.insert((t.file, t.line, t.col, rule), ()).is_some() {
                continue;
            }
            let rel = ws.files[t.file].rel.clone();
            out.entry(rel).or_default().push(Finding {
                rule,
                line: t.line,
                col: t.col,
                message: format!("`{}` {why} [hot path: {}]", t.what, render_chain(ws, chain)),
            });
        }
    }
}

fn stage_purity(ws: &Workspace, out: &mut BTreeMap<String, Vec<Finding>>) {
    let mut seen: BTreeMap<(usize, usize, usize), ()> = BTreeMap::new();
    for stage in ws.stage_fns() {
        let start = Node::Fn(stage);
        let stage_name = ws.fns[stage].qualified();
        // The env chokepoint is the one sanctioned impurity: reads through
        // it are clamped and documented, so traversal stops at its door.
        let reached = ws.reach(&[start], &|f| ws.files[f.file].rel == ENV_CHOKEPOINT);
        for (&node, chain) in &reached {
            for t in ws.node_triggers(node) {
                let what = match t.kind {
                    TriggerKind::EnvRead => "reads the environment outside the chokepoint",
                    TriggerKind::InteriorMut => "constructs interior mutability",
                    TriggerKind::Rng => "constructs an RNG",
                    TriggerKind::Io => "performs I/O",
                    _ => continue,
                };
                if seen.insert((t.file, t.line, t.col), ()).is_some() {
                    continue;
                }
                let rel = ws.files[t.file].rel.clone();
                out.entry(rel).or_default().push(Finding {
                    rule: Rule::P1,
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` {what}, but it is reachable from cache stage \
                         `{stage_name}` — stage inputs must be complete and \
                         pure for content-addressed caching [stage path: {}]",
                        t.what,
                        render_chain(ws, chain)
                    ),
                });
            }
        }
    }
}

/// Tokens that count as handling a `Result` within a statement.
const HANDLERS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "is_ok",
    "is_err",
    "map_err",
    "or_else",
];

fn error_hygiene(ws: &Workspace, out: &mut BTreeMap<String, Vec<Finding>>) {
    for (file_idx, fm) in ws.files.iter().enumerate() {
        if !D5_LIBRARY_PREFIXES.iter().any(|p| fm.rel.starts_with(p)) {
            continue;
        }
        let toks = &fm.toks;
        let findings = out.entry(fm.rel.clone()).or_default();
        for k in 0..toks.len() {
            if fm.test_mask[k] {
                continue;
            }
            // E1a: `let _ = <expr>;` discarding a Result-returning
            // workspace call with no handling in the statement.
            if is_ident(&toks[k], "let")
                && matches!(toks.get(k + 1), Some(t) if t.kind == TokKind::Ident && t.text == "_")
                && matches!(toks.get(k + 2), Some(t) if is_punct(t, '='))
            {
                let end = statement_end(toks, k + 3);
                let stmt = &toks[k + 3..end];
                let handled = stmt.iter().enumerate().any(|(i, t)| {
                    (t.kind == TokKind::Punct && t.text == "?")
                        || (t.kind == TokKind::Ident
                            && HANDLERS.contains(&t.text.as_str())
                            && i > 0
                            && is_punct(&stmt[i - 1], '.'))
                });
                if !handled {
                    if let Some((name, line, col)) = first_result_call(ws, file_idx, k + 3, end) {
                        findings.push(Finding {
                            rule: Rule::E1,
                            line,
                            col,
                            message: format!(
                                "`let _ =` discards the `Result` of `{name}` \
                                 — propagate it with `?` or map it into the \
                                 failure taxonomy"
                            ),
                        });
                    }
                }
            }
            // E1b: `.ok();` — the Option is dropped on the floor, erasing
            // the error. (`let x = f().ok();` binds and is fine: scanning
            // back to the statement boundary finds the `let`/`=`.)
            if is_ident(&toks[k], "ok")
                && k >= 1
                && is_punct(&toks[k - 1], '.')
                && matches!(toks.get(k + 1), Some(t) if is_punct(t, '('))
                && matches!(toks.get(k + 2), Some(t) if is_punct(t, ')'))
                && matches!(toks.get(k + 3), Some(t) if is_punct(t, ';'))
                && !binds_its_value(toks, k)
            {
                findings.push(Finding {
                    rule: Rule::E1,
                    line: toks[k].line,
                    col: toks[k].col,
                    message: "`.ok();` drops the error on the floor — \
                              propagate it, log it through the failure \
                              taxonomy, or match on it explicitly"
                        .to_string(),
                });
            }
            // E2: `Err(pat) => {}` / `Err(pat) => ()` — a swallowed error
            // arm in a match.
            if is_ident(&toks[k], "Err") && matches!(toks.get(k + 1), Some(t) if is_punct(t, '(')) {
                let close = match_paren(toks, k + 1);
                let arrow = matches!(toks.get(close + 1), Some(t) if is_punct(t, '='))
                    && matches!(toks.get(close + 2), Some(t) if is_punct(t, '>'));
                if arrow {
                    let body = close + 3;
                    let empty_block = matches!(toks.get(body), Some(t) if is_punct(t, '{'))
                        && matches!(toks.get(body + 1), Some(t) if is_punct(t, '}'));
                    let unit = matches!(toks.get(body), Some(t) if is_punct(t, '('))
                        && matches!(toks.get(body + 1), Some(t) if is_punct(t, ')'));
                    if empty_block || unit {
                        findings.push(Finding {
                            rule: Rule::E2,
                            line: toks[k].line,
                            col: toks[k].col,
                            message: "empty `Err(…) => {}` arm swallows the \
                                      error — record it in the failure \
                                      taxonomy or propagate it"
                                .to_string(),
                        });
                    }
                }
            }
        }
        if out.get(&fm.rel).is_some_and(Vec::is_empty) {
            out.remove(&fm.rel);
        }
    }
}

/// True when the statement containing the token at `k` binds or returns a
/// value (a `let`, `=`, or `return` appears between the last statement
/// boundary and `k`) — such a statement consumes the `.ok()` result.
fn binds_its_value(toks: &[Tok], k: usize) -> bool {
    let mut j = k;
    let mut steps = 0usize;
    while j > 0 && steps < 200 {
        j -= 1;
        steps += 1;
        let p = &toks[j];
        if p.kind == TokKind::Punct && matches!(p.text.as_str(), ";" | "{" | "}") {
            return false;
        }
        if (p.kind == TokKind::Punct && p.text == "=")
            || (p.kind == TokKind::Ident && matches!(p.text.as_str(), "let" | "return"))
        {
            return true;
        }
    }
    false
}

/// Index of the `;` (or end) terminating a statement at brace/paren depth
/// zero, starting at `from`.
fn statement_end(toks: &[Tok], from: usize) -> usize {
    let mut depth = 0isize;
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokKind::Punct && t.text.len() == 1 {
            match t.text.as_bytes()[0] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth <= 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index one past the matching `)` for the `(` at `open`.
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if is_punct(&toks[j], '(') {
            depth += 1;
        } else if is_punct(&toks[j], ')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// The discarded call of a `let _ = …;` statement: the *last* call at
/// paren depth zero (its return value is what the binding drops; a Result
/// passed *into* another call at depth > 0 is consumed, not discarded),
/// provided it resolves to Result-returning workspace functions. Method
/// calls on unknown receivers only count when *every* workspace method of
/// that name returns `Result` — an ambiguous name would otherwise
/// false-positive on std types.
fn first_result_call(
    ws: &Workspace,
    file_idx: usize,
    from: usize,
    end: usize,
) -> Option<(String, usize, usize)> {
    let fm = &ws.files[file_idx];
    let toks = &fm.toks;
    let mut depth = 0isize;
    let mut last: Option<usize> = None;
    for k in from..end.min(toks.len()) {
        let t = &toks[k];
        if t.kind == TokKind::Punct && t.text.len() == 1 {
            match t.text.as_bytes()[0] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                _ => {}
            }
            continue;
        }
        if t.kind != TokKind::Ident || depth > 0 {
            continue;
        }
        let is_call = matches!(toks.get(k + 1), Some(n) if is_punct(n, '('));
        if !is_call {
            continue;
        }
        // Macro call `name!(` never resolves to a workspace fn.
        if k >= 1 && is_punct(&toks[k - 1], '!') {
            continue;
        }
        last = Some(k);
    }
    let k = last?;
    let candidates = ws.resolve_call_candidates(file_idx, k);
    if candidates.is_empty() {
        return None;
    }
    if candidates.iter().all(|&id| ws.fns[id].returns_result) {
        let name = ws.fns[candidates[0]].qualified();
        return Some((name, toks[k].line, toks[k].col));
    }
    None
}

fn is_punct(t: &Tok, ch: char) -> bool {
    t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
}

fn is_ident(t: &Tok, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Workspace;

    fn findings_for(files: &[(&str, &str)]) -> BTreeMap<String, Vec<(String, usize)>> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        let ws = Workspace::build(&sources);
        analyze(&ws)
            .into_iter()
            .map(|(path, fs)| {
                (
                    path,
                    fs.into_iter()
                        .map(|f| (f.rule.id().to_string(), f.line))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn hot_path_alloc_fires_with_a_trace() {
        let sources = vec![(
            "crates/core/src/run.rs".to_string(),
            r#"
use vaem_parallel::par_map;
fn worker(x: u32) -> u32 { scratch(x) }
fn scratch(x: u32) -> u32 { let v: Vec<u32> = Vec::new(); v.len() as u32 + x }
pub fn run(xs: &[u32]) -> Vec<u32> { par_map(2, 1, xs, |x| worker(*x)) }
"#
            .to_string(),
        )];
        let ws = Workspace::build(&sources);
        let by_file = analyze(&ws);
        let fs = &by_file["crates/core/src/run.rs"];
        let h1 = fs.iter().find(|f| f.rule == Rule::H1).expect("H1 fires");
        assert_eq!(h1.line, 4);
        assert!(h1.message.contains("hot path:"), "{}", h1.message);
        assert!(
            h1.message.contains("par_map closure") && h1.message.contains("worker"),
            "trace must show the chain: {}",
            h1.message
        );
    }

    #[test]
    fn clone_and_lock_fire_their_own_rules() {
        let out = findings_for(&[(
            "crates/core/src/run.rs",
            r#"
use vaem_parallel::par_map;
fn work(s: &String) -> usize { let t = s.clone(); println!("{t}"); t.len() }
pub fn run(xs: &[String]) -> Vec<usize> { par_map(2, 1, xs, |s| work(s)) }
"#,
        )]);
        let fs = &out["crates/core/src/run.rs"];
        assert!(fs.contains(&("H2".to_string(), 3)), "{fs:?}");
        assert!(fs.contains(&("H3".to_string(), 3)), "{fs:?}");
    }

    #[test]
    fn stage_purity_flags_transitive_rng() {
        let out = findings_for(&[(
            "crates/sparse/src/ordering.rs",
            r#"
// vaem-lint: stage deterministic fill-reducing order
pub fn amd(n: usize) -> Vec<usize> { jitter(n) }
fn jitter(n: usize) -> Vec<usize> {
    let _rng = StdRng::seed_from_u64(7);
    (0..n).collect()
}
"#,
        )]);
        let fs = &out["crates/sparse/src/ordering.rs"];
        assert!(fs.contains(&("P1".to_string(), 5)), "{fs:?}");
    }

    #[test]
    fn env_chokepoint_is_not_entered_by_stage_traversal() {
        let out = findings_for(&[
            (
                "crates/parallel/src/env.rs",
                "pub fn positive_usize(name: &str, default: usize) -> usize {\n    let _raw = std::env::var(name);\n    default\n}\n",
            ),
            (
                "crates/core/src/stagey.rs",
                "use vaem_parallel::env::positive_usize;\n// vaem-lint: stage chunk plan\npub fn plan(n: usize) -> usize { positive_usize(\"VAEM_CHUNK\", n) }\n",
            ),
        ]);
        assert!(
            !out.contains_key("crates/parallel/src/env.rs"),
            "chokepoint must be exempt: {out:?}"
        );
    }

    #[test]
    fn discarded_results_and_swallowed_errors_fire() {
        let out = findings_for(&[(
            "crates/fvm/src/post.rs",
            r#"
pub fn solve() -> Result<f64, String> { Ok(1.0) }
pub fn caller() {
    let _ = solve();
    solve().ok();
    match solve() {
        Ok(_) => {}
        Err(_) => {}
    }
}
pub fn fine() -> Result<f64, String> {
    let _ = solve()?;
    let kept = solve().ok();
    let _keep = kept;
    Ok(1.0)
}
"#,
        )]);
        let fs = &out["crates/fvm/src/post.rs"];
        assert!(fs.contains(&("E1".to_string(), 4)), "{fs:?}");
        assert!(fs.contains(&("E1".to_string(), 5)), "{fs:?}");
        assert!(fs.contains(&("E2".to_string(), 8)), "{fs:?}");
        assert_eq!(fs.len(), 3, "handled sites must not fire: {fs:?}");
    }

    #[test]
    fn let_underscore_on_macro_or_non_result_is_exempt() {
        let out = findings_for(&[(
            "crates/fvm/src/post.rs",
            r#"
pub fn count() -> usize { 3 }
pub fn caller(out: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "hi");
    let _ = count();
}
"#,
        )]);
        assert!(
            !out.contains_key("crates/fvm/src/post.rs"),
            "macros and non-Result calls are exempt: {out:?}"
        );
    }
}
