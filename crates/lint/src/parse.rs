//! A brace-matched item parser over the [`crate::lexer`] token stream.
//!
//! The semantic rule families (H/P/E) need to know *which function a token
//! belongs to*, what that function's name and `impl` context are, which
//! `use` declarations are in scope, and whether the function's return type
//! mentions `Result`. This module recovers exactly that — an item tree
//! (`fn` / `impl` / `mod` / `use` / other) with token ranges and byte spans
//! — without attempting expression-level parsing: function bodies stay
//! opaque token ranges that the call-graph builder scans linearly.
//!
//! Span contract (pinned by `tests/parser_roundtrip.rs` over every source
//! file in the workspace): sibling item spans are non-overlapping and in
//! source order, every child span nests strictly inside its parent's, and
//! re-assembling the file from item spans plus the gaps between them is
//! byte-identical to the original source. The parser never fails — token
//! runs it does not understand become [`ItemKind::Other`] items.

use crate::lexer::{Tok, TokKind};

/// A half-open byte span into the source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method (`fn name(…) … { … }` or `fn name(…);`).
    Fn,
    /// An inline module (`mod name { … }`); `mod name;` is [`ItemKind::Other`].
    Mod,
    /// An `impl` block (inherent or trait).
    Impl,
    /// A `use` declaration.
    Use,
    /// Anything else (struct/enum/trait/const/static/type/macro/…).
    Other,
}

/// One leaf of a `use` tree: the name it binds locally and the full path
/// segments it binds it to (`use a::b::{c as d}` yields `("d", [a, b, c])`).
#[derive(Debug, Clone)]
pub struct UseLeaf {
    /// The local alias (last segment, or the `as` name).
    pub alias: String,
    /// Full path segments as written.
    pub path: Vec<String>,
}

/// One parsed item.
#[derive(Debug)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Item name: the `fn`/`mod` name, the `impl` self type, `""` otherwise.
    pub name: String,
    /// For `impl Trait for Type`, the trait's last path segment.
    pub trait_name: Option<String>,
    /// 1-based line of the defining keyword token.
    pub line: usize,
    /// 1-based column of the defining keyword token.
    pub col: usize,
    /// Byte span of the whole item (leading attributes included).
    pub span: Span,
    /// Inclusive token-index range `[first, last]` of the whole item.
    pub tokens: (usize, usize),
    /// For `Fn`: inclusive token range of the `{ … }` body (absent for
    /// bodyless signatures).
    pub body: Option<(usize, usize)>,
    /// For `Fn`: the textual return type mentions `Result`.
    pub returns_result: bool,
    /// Child items (`Mod` and `Impl` bodies are parsed recursively).
    pub children: Vec<Item>,
    /// For `Use`: the leaves this declaration binds.
    pub use_leaves: Vec<UseLeaf>,
}

/// Parses the token stream of one file into a top-level item list.
pub fn parse(toks: &[Tok]) -> Vec<Item> {
    let mut parser = Parser { toks };
    parser.items(0, toks.len())
}

struct Parser<'a> {
    toks: &'a [Tok],
}

impl Parser<'_> {
    fn is_punct(&self, k: usize, ch: char) -> bool {
        self.toks.get(k).is_some_and(|t| {
            t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
        })
    }

    fn is_ident(&self, k: usize, name: &str) -> bool {
        self.toks
            .get(k)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    }

    fn ident_text(&self, k: usize) -> Option<&str> {
        self.toks.get(k).and_then(|t| {
            if t.kind == TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    /// Index one past the matching close for the open bracket at `k`
    /// (clamped to `end` when unbalanced).
    fn match_delim(&self, k: usize, open: char, close: char, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = k;
        while j < end {
            if self.is_punct(j, open) {
                depth += 1;
            } else if self.is_punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Parses the items in the token range `[k, end)`.
    fn items(&mut self, mut k: usize, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while k < end {
            let (item, next) = self.item(k, end);
            debug_assert!(next > k, "parser must make progress");
            out.push(item);
            k = next.max(k + 1);
        }
        out
    }

    /// Parses one item starting at `k`; returns it and the index of the
    /// first token after it.
    fn item(&mut self, start: usize, end: usize) -> (Item, usize) {
        let mut k = start;
        // Leading attributes belong to the item.
        while self.is_punct(k, '#')
            && (self.is_punct(k + 1, '[')
                || (self.is_punct(k + 1, '!') && self.is_punct(k + 2, '[')))
        {
            let open = if self.is_punct(k + 1, '[') {
                k + 1
            } else {
                k + 2
            };
            k = self.match_delim(open, '[', ']', end);
        }
        // Visibility.
        if self.is_ident(k, "pub") {
            k += 1;
            if self.is_punct(k, '(') {
                k = self.match_delim(k, '(', ')', end);
            }
        }
        // Leading qualifiers before the defining keyword.
        let mut kw = k;
        while kw < end
            && matches!(
                self.ident_text(kw),
                Some("const" | "async" | "unsafe" | "extern" | "default")
            )
        {
            // `const` may itself be the defining keyword (`const N: … = …;`)
            // — only treat it as a qualifier when a `fn` follows eventually.
            if self.ident_text(kw) == Some("const") && !self.leads_to_fn(kw + 1, end) {
                break;
            }
            if self.ident_text(kw) == Some("extern")
                && self.toks.get(kw + 1).map(|t| t.kind) == Some(TokKind::Str)
            {
                kw += 2; // `extern "C" fn …`
                continue;
            }
            kw += 1;
        }
        match self.ident_text(kw) {
            Some("fn") => self.fn_item(start, kw, end),
            Some("mod") => self.mod_item(start, kw, end),
            Some("impl") => self.impl_item(start, kw, end),
            Some("use") => self.use_item(start, kw, end),
            _ => self.other_item(start, k, end),
        }
    }

    /// True when the tokens from `k` begin with qualifiers followed by `fn`.
    fn leads_to_fn(&self, mut k: usize, end: usize) -> bool {
        while k < end {
            match self.ident_text(k) {
                Some("fn") => return true,
                Some("async" | "unsafe" | "extern") => k += 1,
                _ if self.toks.get(k).map(|t| t.kind) == Some(TokKind::Str) => k += 1,
                _ => return false,
            }
        }
        false
    }

    fn fn_item(&mut self, start: usize, kw: usize, end: usize) -> (Item, usize) {
        let name_idx = kw + 1;
        let name = self.ident_text(name_idx).unwrap_or("").to_string();
        // Scan the signature for the body `{` (or terminating `;`) at
        // paren/bracket depth zero. Braces cannot appear in a signature
        // outside delimiters, so the first top-level `{` is the body.
        let mut j = name_idx + 1;
        let mut sig_end = end;
        let mut body = None;
        while j < end {
            if self.is_punct(j, '(') {
                j = self.match_delim(j, '(', ')', end);
            } else if self.is_punct(j, '[') {
                j = self.match_delim(j, '[', ']', end);
            } else if self.is_punct(j, '{') {
                let close = self.match_delim(j, '{', '}', end);
                body = Some((j, close - 1));
                sig_end = close;
                break;
            } else if self.is_punct(j, ';') {
                sig_end = j + 1;
                break;
            } else {
                j += 1;
            }
        }
        // Return type: the tokens between `->` and the body/`;`.
        let mut returns_result = false;
        let mut r = name_idx;
        while r + 1 < sig_end {
            if self.is_punct(r, '-') && self.is_punct(r + 1, '>') {
                let stop = body.map(|(open, _)| open).unwrap_or(sig_end);
                for t in &self.toks[r..stop] {
                    if t.kind == TokKind::Ident && t.text == "Result" {
                        returns_result = true;
                    }
                    if t.kind == TokKind::Ident && t.text == "where" {
                        break;
                    }
                }
                break;
            }
            r += 1;
        }
        let last = sig_end.saturating_sub(1).max(start);
        (
            Item {
                kind: ItemKind::Fn,
                name,
                trait_name: None,
                line: self.toks[kw].line,
                col: self.toks[kw].col,
                span: self.span_of(start, last),
                tokens: (start, last),
                body,
                returns_result,
                children: Vec::new(),
                use_leaves: Vec::new(),
            },
            sig_end,
        )
    }

    fn mod_item(&mut self, start: usize, kw: usize, end: usize) -> (Item, usize) {
        let name = self.ident_text(kw + 1).unwrap_or("").to_string();
        if self.is_punct(kw + 2, '{') {
            let close = self.match_delim(kw + 2, '{', '}', end);
            let children = self.items(kw + 3, close - 1);
            (
                Item {
                    kind: ItemKind::Mod,
                    name,
                    trait_name: None,
                    line: self.toks[kw].line,
                    col: self.toks[kw].col,
                    span: self.span_of(start, close - 1),
                    tokens: (start, close - 1),
                    body: None,
                    returns_result: false,
                    children,
                    use_leaves: Vec::new(),
                },
                close,
            )
        } else {
            // `mod name;` — an out-of-line module reference.
            let stop = self.scan_to_semi(kw, end);
            (
                self.plain(ItemKind::Other, start, kw, stop.saturating_sub(1)),
                stop,
            )
        }
    }

    fn impl_item(&mut self, start: usize, kw: usize, end: usize) -> (Item, usize) {
        // Find the body `{` at angle-aware top level. `->` inside an impl
        // header (e.g. `impl Fn(…) -> …`) hides its `>` from depth tracking.
        let mut j = kw + 1;
        let mut body_open = None;
        while j < end {
            if self.is_punct(j, '(') {
                j = self.match_delim(j, '(', ')', end);
            } else if self.is_punct(j, '[') {
                j = self.match_delim(j, '[', ']', end);
            } else if self.is_punct(j, '{') {
                body_open = Some(j);
                break;
            } else {
                j += 1;
            }
        }
        let Some(open) = body_open else {
            let stop = self.scan_to_semi(kw, end);
            return (
                self.plain(ItemKind::Other, start, kw, stop.saturating_sub(1)),
                stop,
            );
        };
        // Self type: the last path identifier before the body (skipping a
        // trailing `where` clause), with `impl Trait for Type` preferring
        // the segment after `for`.
        let header = &self.toks[kw + 1..open];
        let mut where_at = header.len();
        let mut angle = 0isize;
        for (i, t) in header.iter().enumerate() {
            match t.text.as_str() {
                "<" if t.kind == TokKind::Punct => angle += 1,
                ">" if t.kind == TokKind::Punct => {
                    let arrow =
                        i > 0 && header[i - 1].kind == TokKind::Punct && header[i - 1].text == "-";
                    if !arrow {
                        angle -= 1;
                    }
                }
                "where" if t.kind == TokKind::Ident && angle <= 0 => {
                    where_at = i;
                    break;
                }
                _ => {}
            }
        }
        let mut for_at = None;
        let mut angle = 0isize;
        for (i, t) in header[..where_at].iter().enumerate() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "<") => angle += 1,
                (TokKind::Punct, ">") => {
                    let arrow =
                        i > 0 && header[i - 1].kind == TokKind::Punct && header[i - 1].text == "-";
                    if !arrow {
                        angle -= 1;
                    }
                }
                (TokKind::Ident, "for") if angle <= 0 => for_at = Some(i),
                _ => {}
            }
        }
        let type_range = match for_at {
            Some(f) => &header[f + 1..where_at],
            None => &header[..where_at],
        };
        let self_ty = last_path_ident(type_range).unwrap_or_default();
        let trait_name = for_at.and_then(|f| last_path_ident(&header[..f]));
        let close = self.match_delim(open, '{', '}', end);
        let children = self.items(open + 1, close - 1);
        (
            Item {
                kind: ItemKind::Impl,
                name: self_ty,
                trait_name,
                line: self.toks[kw].line,
                col: self.toks[kw].col,
                span: self.span_of(start, close - 1),
                tokens: (start, close - 1),
                body: None,
                returns_result: false,
                children,
                use_leaves: Vec::new(),
            },
            close,
        )
    }

    fn use_item(&mut self, start: usize, kw: usize, end: usize) -> (Item, usize) {
        let stop = self.scan_to_semi(kw, end);
        let mut leaves = Vec::new();
        collect_use_leaves(
            &self.toks[kw + 1..stop.saturating_sub(1)],
            &mut Vec::new(),
            &mut leaves,
        );
        let mut item = self.plain(ItemKind::Use, start, kw, stop.saturating_sub(1));
        item.use_leaves = leaves;
        (item, stop)
    }

    /// Any other item: consume to the first top-level `;` or brace-matched
    /// `{ … }`, whichever comes first.
    fn other_item(&mut self, start: usize, kw: usize, end: usize) -> (Item, usize) {
        let mut j = kw;
        while j < end {
            if self.is_punct(j, '(') {
                j = self.match_delim(j, '(', ')', end);
            } else if self.is_punct(j, '[') {
                j = self.match_delim(j, '[', ']', end);
            } else if self.is_punct(j, '{') {
                let close = self.match_delim(j, '{', '}', end);
                // `struct X { … }` ends at the brace; `static X: [u8; 1] =
                // { … };` continues to the `;`.
                if self.is_punct(close, ';') {
                    return (
                        self.plain(ItemKind::Other, start, kw.min(end - 1), close),
                        close + 1,
                    );
                }
                return (
                    self.plain(ItemKind::Other, start, kw.min(end - 1), close - 1),
                    close,
                );
            } else if self.is_punct(j, ';') {
                return (
                    self.plain(ItemKind::Other, start, kw.min(end - 1), j),
                    j + 1,
                );
            } else {
                j += 1;
            }
        }
        (
            self.plain(ItemKind::Other, start, kw.min(end - 1), end - 1),
            end,
        )
    }

    fn scan_to_semi(&self, from: usize, end: usize) -> usize {
        let mut j = from;
        while j < end {
            if self.is_punct(j, '{') {
                j = self.match_delim(j, '{', '}', end);
            } else if self.is_punct(j, ';') {
                return j + 1;
            } else {
                j += 1;
            }
        }
        end
    }

    fn plain(&self, kind: ItemKind, start: usize, kw: usize, last: usize) -> Item {
        let kw = kw.min(last);
        Item {
            kind,
            name: String::new(),
            trait_name: None,
            line: self.toks[kw].line,
            col: self.toks[kw].col,
            span: self.span_of(start, last),
            tokens: (start, last),
            body: None,
            returns_result: false,
            children: Vec::new(),
            use_leaves: Vec::new(),
        }
    }

    fn span_of(&self, first: usize, last: usize) -> Span {
        Span {
            start: self.toks[first].start,
            end: self.toks[last.max(first)].end,
        }
    }
}

/// The last plain identifier of a path-like token run, ignoring generic
/// arguments (`Foo<Bar<'a, T>>` → `Foo`, `a::b::Baz<T>` → `Baz`).
fn last_path_ident(toks: &[Tok]) -> Option<String> {
    let mut angle = 0isize;
    let mut last = None;
    for (i, t) in toks.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => {
                let arrow = i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "-";
                if !arrow {
                    angle -= 1;
                }
            }
            // Skip keywords that may precede the type path.
            (TokKind::Ident, name)
                if angle <= 0 && !matches!(name, "dyn" | "mut" | "const" | "unsafe") =>
            {
                last = Some(name.to_string());
            }
            _ => {}
        }
    }
    last
}

/// Recursively flattens a `use` tree body into its leaves.
fn collect_use_leaves(toks: &[Tok], prefix: &mut Vec<String>, out: &mut Vec<UseLeaf>) {
    let mut k = 0usize;
    let base_len = prefix.len();
    let mut pending: Option<String> = None;
    while k < toks.len() {
        let t = &toks[k];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "as") => {
                // `path as alias`: the next ident renames the pending leaf.
                if let (Some(seg), Some(alias)) = (
                    pending.take(),
                    toks.get(k + 1).filter(|a| a.kind == TokKind::Ident),
                ) {
                    prefix.push(seg);
                    out.push(UseLeaf {
                        alias: alias.text.clone(),
                        path: prefix.clone(),
                    });
                    prefix.pop();
                    k += 1;
                }
            }
            (TokKind::Ident, seg) => pending = Some(seg.to_string()),
            // `::` — push the pending segment deeper.
            (TokKind::Punct, ":")
                if toks
                    .get(k + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == ":") =>
            {
                if let Some(seg) = pending.take() {
                    prefix.push(seg);
                }
                k += 1;
            }
            (TokKind::Punct, "{") => {
                // Group: recurse over each comma-separated element.
                let mut depth = 0usize;
                let mut close = k;
                while close < toks.len() {
                    if toks[close].kind == TokKind::Punct && toks[close].text == "{" {
                        depth += 1;
                    } else if toks[close].kind == TokKind::Punct && toks[close].text == "}" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    close += 1;
                }
                let inner = &toks[k + 1..close.min(toks.len())];
                let mut elem_start = 0usize;
                let mut depth = 0usize;
                for (i, it) in inner.iter().enumerate() {
                    let is_open = it.kind == TokKind::Punct && it.text == "{";
                    let is_close = it.kind == TokKind::Punct && it.text == "}";
                    let is_comma = it.kind == TokKind::Punct && it.text == ",";
                    if is_open {
                        depth += 1;
                    } else if is_close {
                        depth = depth.saturating_sub(1);
                    } else if is_comma && depth == 0 {
                        collect_use_leaves(&inner[elem_start..i], prefix, out);
                        elem_start = i + 1;
                    }
                }
                if elem_start < inner.len() {
                    collect_use_leaves(&inner[elem_start..], prefix, out);
                }
                k = close;
                pending = None;
            }
            (TokKind::Punct, "*") => pending = None, // glob: no named leaf
            (TokKind::Punct, ",") => {
                if let Some(seg) = pending.take() {
                    out.push(UseLeaf {
                        alias: seg.clone(),
                        path: {
                            let mut p = prefix.clone();
                            p.push(seg);
                            p
                        },
                    });
                }
                prefix.truncate(base_len);
            }
            _ => {}
        }
        k += 1;
    }
    if let Some(seg) = pending.take() {
        out.push(UseLeaf {
            alias: seg.clone(),
            path: {
                let mut p = prefix.clone();
                p.push(seg);
                p
            },
        });
    }
    prefix.truncate(base_len);
}

/// Checks the span contract over a parsed file: sibling spans are ordered
/// and disjoint, children nest inside parents, and splicing the item spans
/// back between their gaps reproduces `src` byte-for-byte.
///
/// # Errors
/// Returns a description of the first violated invariant.
pub fn check_roundtrip(src: &str, items: &[Item]) -> Result<(), String> {
    fn walk(src: &str, items: &[Item], lo: usize, hi: usize) -> Result<(), String> {
        let mut pos = lo;
        for item in items {
            if item.span.start < pos {
                return Err(format!(
                    "item at line {} starts at byte {} before cursor {pos}",
                    item.line, item.span.start
                ));
            }
            if item.span.end > hi {
                return Err(format!(
                    "item at line {} ends at byte {} past parent end {hi}",
                    item.line, item.span.end
                ));
            }
            if item.span.start > item.span.end
                || !src.is_char_boundary(item.span.start)
                || !src.is_char_boundary(item.span.end)
            {
                return Err(format!("item at line {} has an invalid span", item.line));
            }
            walk(src, &item.children, item.span.start, item.span.end)?;
            pos = item.span.end;
        }
        Ok(())
    }
    walk(src, items, 0, src.len())?;
    // Reconstruction: gaps + item slices concatenate back to the source.
    let mut rebuilt = String::with_capacity(src.len());
    let mut pos = 0usize;
    for item in items {
        rebuilt.push_str(&src[pos..item.span.start]);
        rebuilt.push_str(&src[item.span.start..item.span.end]);
        pos = item.span.end;
    }
    rebuilt.push_str(&src[pos..]);
    if rebuilt != src {
        return Err("reconstructed source differs from the original".to_string());
    }
    Ok(())
}

/// Depth-first iteration over an item tree (parents before children).
pub fn walk_items<'a>(items: &'a [Item], visit: &mut dyn FnMut(&'a Item, &[&'a Item])) {
    fn inner<'a>(
        items: &'a [Item],
        stack: &mut Vec<&'a Item>,
        visit: &mut dyn FnMut(&'a Item, &[&'a Item]),
    ) {
        for item in items {
            visit(item, stack);
            stack.push(item);
            inner(&item.children, stack, visit);
            stack.pop();
        }
    }
    inner(items, &mut Vec::new(), visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parsed(src: &str) -> Vec<Item> {
        let lexed = lexer::lex(src);
        let items = parse(&lexed.toks);
        check_roundtrip(src, &items).expect("span contract");
        items
    }

    #[test]
    fn finds_fns_mods_impls_and_uses() {
        let src = r#"
use std::collections::BTreeMap;
use vaem_parallel::{par_map, env as penv};

pub fn free(x: u32) -> Result<u32, String> { Ok(x) }

mod inner {
    pub fn nested() {}
}

impl<T: Clone> Holder<T> {
    pub fn get(&self) -> T { self.0.clone() }
}

impl Display for Holder<u8> {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result { Ok(()) }
}
"#;
        let items = parsed(src);
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            [
                ItemKind::Use,
                ItemKind::Use,
                ItemKind::Fn,
                ItemKind::Mod,
                ItemKind::Impl,
                ItemKind::Impl
            ]
        );
        assert_eq!(items[2].name, "free");
        assert!(items[2].returns_result);
        assert_eq!(items[3].children[0].name, "nested");
        assert_eq!(items[4].name, "Holder");
        assert!(items[4].trait_name.is_none());
        assert_eq!(items[4].children[0].name, "get");
        assert!(!items[4].children[0].returns_result);
        assert_eq!(items[5].name, "Holder");
        assert_eq!(items[5].trait_name.as_deref(), Some("Display"));
        // `fmt::Result` in a return type still counts as Result-returning.
        assert!(items[5].children[0].returns_result);
    }

    #[test]
    fn use_trees_flatten_to_aliased_leaves() {
        let items = parsed("use a::b::{c, d as e, f::{g, h}};\nuse x::y;\nuse z::*;\n");
        let leaves = &items[0].use_leaves;
        let flat: Vec<(String, String)> = leaves
            .iter()
            .map(|l| (l.alias.clone(), l.path.join("::")))
            .collect();
        assert!(flat.contains(&("c".into(), "a::b::c".into())));
        assert!(flat.contains(&("e".into(), "a::b::d".into())));
        assert!(flat.contains(&("g".into(), "a::b::f::g".into())));
        assert!(flat.contains(&("h".into(), "a::b::f::h".into())));
        assert_eq!(items[1].use_leaves[0].alias, "y");
        assert_eq!(items[1].use_leaves[0].path.join("::"), "x::y");
        assert!(items[2].use_leaves.is_empty(), "glob binds no named leaf");
    }

    #[test]
    fn attributes_and_qualifiers_stay_inside_the_item_span() {
        let src = "#[inline]\n#[must_use]\npub unsafe extern \"C\" fn kernel() -> usize { 0 }\nconst N: usize = 3;\npub const fn cfn() -> u8 { 1 }";
        let items = parsed(src);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name, "kernel");
        assert!(src[items[0].span.start..items[0].span.end].starts_with("#[inline]"));
        assert_eq!(items[1].kind, ItemKind::Other, "const item");
        assert_eq!(items[2].kind, ItemKind::Fn);
        assert_eq!(items[2].name, "cfn");
    }

    #[test]
    fn fn_bodies_with_nested_braces_are_matched() {
        let src = "fn a() { if x { y() } else { z(|| { w() }) } }\nfn b() {}";
        let items = parsed(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "a");
        assert_eq!(items[1].name, "b");
        let (open, close) = items[0].body.unwrap();
        assert!(open < close);
    }

    #[test]
    fn struct_enum_trait_and_macros_become_other_items() {
        let src = "struct S { a: u32 }\nenum E { A, B(u8) }\ntrait T { fn m(&self); }\nmacro_rules! m { () => {}; }\ntype Alias = u8;\nstatic X: u8 = { 1 };";
        let items = parsed(src);
        assert!(items.iter().all(|i| i.kind == ItemKind::Other));
        assert_eq!(items.len(), 6);
    }

    #[test]
    fn degenerate_input_never_panics_and_round_trips() {
        for src in [
            "", ";;;", "fn", "fn (", "impl", "impl {", "use ;", "pub", "} } {", "fn f(", "mod m",
            "#[attr",
        ] {
            let lexed = lexer::lex(src);
            let items = parse(&lexed.toks);
            check_roundtrip(src, &items).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        }
    }
}
