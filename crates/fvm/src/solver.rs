//! The high-level coupled solver.

use crate::coefficients::{link_admittivity, link_permittivity, node_admittivity};
use crate::terminals::{label_terminals, TerminalMap};
use crate::{AcSolution, DcSolution, FvmError};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use vaem_mesh::{Axis, LinkId, Material, NodeId, Structure};
use vaem_numeric::Complex64;
use vaem_physics::{constants, DopingProfile, MaterialTable, SiliconParams};
use vaem_sparse::{
    IluSeed, LinearSolver, PreparedSolver, SolverKind, SparsityPattern, SymbolicLu, TripletMatrix,
};

/// Electromagnetic modelling depth of the AC stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmMode {
    /// Electro-quasi-static: complex potential equation with the full
    /// admittivity `σ + jωε` (metal conduction, dielectric displacement,
    /// semiconductor small-signal conduction). This is the default for the
    /// statistical sweeps.
    #[default]
    ElectroQuasiStatic,
    /// Additionally computes the magnetic vector potential on the links from
    /// the conduction/displacement current distribution (one-way coupled
    /// approximation of the paper's eq. 3).
    FullWave,
}

/// Configuration of the coupled solver.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Bulk material properties.
    pub materials: MaterialTable,
    /// Silicon carrier-statistics parameters.
    pub silicon: SiliconParams,
    /// Electromagnetic modelling depth.
    pub em_mode: EmMode,
    /// Linear solver strategy for both stages.
    pub linear_solver: SolverKind,
    /// Maximum Newton iterations of the DC stage.
    pub newton_max_iterations: usize,
    /// Newton convergence tolerance on the potential update (V).
    pub newton_tolerance: f64,
    /// Reuse the solver state published on the shared [`SolverTopology`]
    /// by the first solve — normally the nominal sample: the symbolic LU
    /// phase (ordering selection + pivot structure) so every later sample's
    /// direct factorizations are numeric-only, and the ILU(0) values so
    /// samples on iterative strategies start from the nominal's
    /// preconditioner (their lazy refresh policy rebuilding only when it
    /// degrades). On by default; turn off to force each solver through its
    /// own full analysis (the direct results are bit-identical as long as
    /// the perturbed pivots stay on the donor's sequence, which the seeded
    /// refactorization verifies per column, re-pivoting locally when they
    /// do not).
    pub reuse_symbolic: bool,
    /// Allow this solver to *publish* its symbolic phases as the shared
    /// topology's donors. Publishing additionally requires `reuse_symbolic`
    /// — turning reuse off disables the whole seeding path, donors
    /// included. On by default so sequentially shared topologies
    /// self-seed. When many solvers share a topology **concurrently**,
    /// leave publishing on for exactly one designated donor (the nominal
    /// sample, solved before the fan-out) and turn it off for the rest —
    /// otherwise which solver's pivot sequence wins the publication race
    /// depends on thread timing, and with it the (bitwise) results of
    /// every later seeded solve. The analysis layer does exactly this for
    /// its sample workers.
    pub publish_symbolic: bool,
    /// Stale-refactorization rate (stale reports per factorization report,
    /// both counted since the current donor was published) above which a
    /// *publishing* solver that itself just re-pivoted replaces the shared
    /// donor with its own freshly recorded symbolic phase. The first donor
    /// (normally the nominal sample) is a good seed for small excursions,
    /// but on wide parameter excursions every sample can end up re-pivoting
    /// from scratch while the topology still hands out the stale donor; the
    /// refresh policy swaps in a pivot sequence recorded from the current
    /// excursion instead. Set to `f64::INFINITY` to pin the first donor
    /// forever (the pre-refresh behaviour).
    pub donor_refresh_stale_rate: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            materials: MaterialTable::default(),
            silicon: SiliconParams::default(),
            em_mode: EmMode::ElectroQuasiStatic,
            linear_solver: SolverKind::Auto,
            newton_max_iterations: 60,
            newton_tolerance: 1e-9,
            reuse_symbolic: true,
            publish_symbolic: true,
            donor_refresh_stale_rate: 0.5,
        }
    }
}

/// A republishable donor symbolic phase plus its health bookkeeping.
///
/// The first publisher fills the slot (for the analysis fan-outs that is
/// deterministically the nominal sample, solved before the workers start).
/// Afterwards the slot tracks how the donor performs: every *counted*
/// factorization report bumps `window_reports` (one per seed consumer —
/// a DC solve or an AC operator's first frequency, NOT every grid point of
/// a sweep, which would dilute the rate below any threshold), every
/// stale-pivot re-pivot bumps `window_stale`, and both windows reset when
/// a new donor lands. When the windowed stale rate crosses the configured
/// threshold and a *publishing* solver reports a re-pivot, its freshly
/// recorded pivot structure replaces the donor — see
/// [`SolverOptions::donor_refresh_stale_rate`].
///
/// The window counters are plain atomics updated outside the donor lock:
/// under concurrent reporting a handful of counts can land between a
/// publisher's rate check and its window reset and be dropped from the new
/// donor's window. The rate is a refresh heuristic, never a correctness
/// input, and the deterministic orchestration (workers don't publish;
/// refresh decisions happen at single-threaded barriers) doesn't hit the
/// race at all — so the approximation is accepted rather than paid for
/// with a write-lock on every report.
#[derive(Debug, Default)]
struct DonorSlot {
    donor: RwLock<Option<SymbolicLu>>,
    /// Counted factorization reports (seed consumers) since the current
    /// donor was published.
    window_reports: AtomicU64,
    /// Stale re-pivots since the current donor was published.
    window_stale: AtomicU64,
    /// Cumulative stale re-pivots (never reset; surfaced in the stats).
    total_stale: AtomicU64,
    /// How many times the refresh policy replaced (or dropped) the donor.
    refreshes: AtomicU64,
}

impl DonorSlot {
    /// A cheap seeding handle onto the current donor, if one is published.
    fn seed(&self) -> Option<SymbolicLu> {
        self.donor
            .read()
            .expect("donor slot lock poisoned")
            .as_ref()
            .map(SymbolicLu::seed_from)
    }

    fn is_published(&self) -> bool {
        self.donor
            .read()
            .expect("donor slot lock poisoned")
            .is_some()
    }

    /// Stale re-pivots per counted factorization report (seed consumer)
    /// since the current donor was published (0 when nothing went stale).
    fn stale_rate(&self) -> f64 {
        let stale = self.window_stale.load(Ordering::Relaxed);
        if stale == 0 {
            return 0.0;
        }
        stale as f64 / self.window_reports.load(Ordering::Relaxed).max(1) as f64
    }

    /// Records one factorization report: `stale_delta` not-yet-reported
    /// re-pivots, `count_report` whether this report represents a new seed
    /// consumer (an AC sweep reports once per grid point but consumes the
    /// donor only at its first frequency — counting every point would
    /// dilute the stale rate with the sweep length), and — when `publish`
    /// allows it and `symbolic` carries a recorded structure — publishes
    /// the first donor or, if this report itself re-pivoted while the
    /// windowed stale rate exceeds `refresh_rate`, republishes a fresher
    /// one.
    fn note(
        &self,
        symbolic: Option<&SymbolicLu>,
        publish: bool,
        stale_delta: u64,
        count_report: bool,
        refresh_rate: f64,
    ) {
        let reports = if count_report {
            self.window_reports.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            self.window_reports.load(Ordering::Relaxed).max(1)
        };
        let stale = if stale_delta > 0 {
            self.total_stale.fetch_add(stale_delta, Ordering::Relaxed);
            self.window_stale.fetch_add(stale_delta, Ordering::Relaxed) + stale_delta
        } else {
            self.window_stale.load(Ordering::Relaxed)
        };
        if !publish {
            return;
        }
        let Some(symbolic) = symbolic.filter(|s| s.has_structure()) else {
            return;
        };
        let mut slot = self.donor.write().expect("donor slot lock poisoned");
        if slot.is_none() {
            *slot = Some(symbolic.seed_from());
            self.reset_window();
        } else if stale_delta > 0 && stale as f64 > refresh_rate * reports as f64 {
            // This publisher's cached pivots went stale and re-pivoted from
            // scratch, so its recorded structure reflects the *current*
            // excursion — swap it in for the worn-out donor.
            *slot = Some(symbolic.seed_from());
            self.refreshes.fetch_add(1, Ordering::Relaxed);
            self.reset_window();
        }
    }

    /// Drops the donor when its windowed stale rate exceeds the threshold,
    /// so the next publishing solve re-donates from its own (fresh)
    /// symbolic analysis. Returns `true` when a donor was dropped.
    fn clear_if_stale(&self, rate_threshold: f64) -> bool {
        if self.window_stale.load(Ordering::Relaxed) == 0 || self.stale_rate() <= rate_threshold {
            return false;
        }
        let mut slot = self.donor.write().expect("donor slot lock poisoned");
        if slot.is_none() {
            return false;
        }
        *slot = None;
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        self.reset_window();
        true
    }

    fn reset_window(&self) {
        self.window_reports.store(0, Ordering::Relaxed);
        self.window_stale.store(0, Ordering::Relaxed);
    }
}

/// The perturbation-invariant part of a solver setup: terminal labelling,
/// node–link adjacency, contact (Dirichlet) assignment and the cached
/// sparsity patterns of the DC Jacobian and the AC operator.
///
/// Surface-roughness perturbations move node positions but never change the
/// mesh topology, so one `SolverTopology` — wrapped in an [`Arc`] — can be
/// built from the nominal structure and shared read-only across every
/// perturbed-sample solver of a sweep (and across the worker threads of
/// `vaem_parallel`), instead of being rebuilt per sample. The sparsity
/// patterns are populated lazily by the first solve that assembles them.
#[derive(Debug)]
pub struct SolverTopology {
    terminals: TerminalMap,
    /// Links incident to each node.
    node_links: Vec<Vec<LinkId>>,
    /// Contact index of each node (Dirichlet in the AC stage), if any.
    contact_of: Vec<Option<usize>>,
    node_count: usize,
    link_count: usize,
    /// Structural pattern of the DC Newton Jacobian (unknown ordering is
    /// topology-only, so it is shared across samples and iterations).
    dc_pattern: OnceLock<SparsityPattern>,
    /// Structural pattern of the AC (electro-quasi-static) operator.
    ac_pattern: OnceLock<SparsityPattern>,
    /// Donor symbolic LU of the DC Jacobian: published by the first DC
    /// solve that prepares a direct factorization — the nominal sample,
    /// when the analysis layer solves it before fanning the samples out —
    /// and seeded into every later sample's Newton loop so their
    /// factorizations are numeric-only from the first iteration. The slot
    /// is refreshable: when the stale rate crosses the configured
    /// threshold a fresher donor replaces it (see
    /// [`SolverOptions::donor_refresh_stale_rate`]).
    dc_donor: DonorSlot,
    /// Donor symbolic LU of the AC operator (pattern-only state is
    /// scalar-agnostic, so one cache serves the complex operator).
    ac_donor: DonorSlot,
    /// Donor ILU(0) values of the DC Jacobian — the Krylov-side mirror of
    /// `dc_donor`, for meshes where the solvers prepare an iterative
    /// strategy. First publisher wins (the nominal sample under the
    /// analysis orchestration); each recipient's lazy refresh policy then
    /// decides locally if and when to rebuild from its own values, so a
    /// worn donation self-corrects without any shared health window.
    dc_ilu_donor: RwLock<Option<IluSeed<f64>>>,
    /// Donor ILU(0) values of the AC operator (complex-valued, so typed
    /// separately from the DC slot).
    ac_ilu_donor: RwLock<Option<IluSeed<Complex64>>>,
}

/// Aggregate symbolic-reuse statistics of one shared [`SolverTopology`]
/// (see [`SolverTopology::seed_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedReuseStats {
    /// A DC donor symbolic phase has been published.
    pub dc_seeded: bool,
    /// An AC donor symbolic phase has been published.
    pub ac_seeded: bool,
    /// A DC donor ILU(0) (Krylov-side seed) has been published.
    pub dc_ilu_seeded: bool,
    /// An AC donor ILU(0) has been published.
    pub ac_ilu_seeded: bool,
    /// Total stale-pivot re-pivoting fallbacks across every DC solve that
    /// reported into this topology.
    pub dc_stale_refactorizations: u64,
    /// Total stale-pivot re-pivoting fallbacks across every AC operator
    /// that reported into this topology.
    pub ac_stale_refactorizations: u64,
    /// How many times the donor-refresh policy replaced (or dropped) the
    /// published DC donor because its stale rate crossed the threshold.
    pub dc_donor_refreshes: u64,
    /// Same, for the AC donor.
    pub ac_donor_refreshes: u64,
}

impl SolverTopology {
    /// Builds the shared topology of a structure.
    ///
    /// # Errors
    /// Returns [`FvmError::Configuration`] when the structure has no
    /// contacts.
    pub fn build(structure: &Structure) -> Result<Self, FvmError> {
        let mesh = &structure.mesh;
        if structure.contacts.is_empty() {
            return Err(FvmError::Configuration {
                detail: "structure has no contacts".to_string(),
            });
        }
        let terminals = label_terminals(structure);
        let mut node_links: Vec<Vec<LinkId>> = vec![Vec::new(); mesh.node_count()];
        for lid in mesh.link_ids() {
            let link = mesh.link(lid);
            node_links[link.from.index()].push(lid);
            node_links[link.to.index()].push(lid);
        }
        let mut contact_of = vec![None; mesh.node_count()];
        for (k, contact) in structure.contacts.iter().enumerate() {
            for &n in &contact.nodes {
                contact_of[n.index()] = Some(k);
            }
        }
        Ok(Self {
            terminals,
            node_links,
            contact_of,
            node_count: mesh.node_count(),
            link_count: mesh.link_count(),
            dc_pattern: OnceLock::new(),
            ac_pattern: OnceLock::new(),
            dc_donor: DonorSlot::default(),
            ac_donor: DonorSlot::default(),
            dc_ilu_donor: RwLock::new(None),
            ac_ilu_donor: RwLock::new(None),
        })
    }

    /// Terminal (conductor) labelling of the structure.
    pub fn terminals(&self) -> &TerminalMap {
        &self.terminals
    }

    /// Aggregate symbolic-reuse statistics: whether DC/AC donor symbolic
    /// phases have been published, how many stale-pivot re-pivots the
    /// solvers sharing this topology have reported, and how many times the
    /// refresh policy swapped in a fresher donor.
    pub fn seed_stats(&self) -> SeedReuseStats {
        SeedReuseStats {
            dc_seeded: self.dc_donor.is_published(),
            ac_seeded: self.ac_donor.is_published(),
            dc_ilu_seeded: self
                .dc_ilu_donor
                .read()
                .expect("ilu donor lock poisoned")
                .is_some(),
            ac_ilu_seeded: self
                .ac_ilu_donor
                .read()
                .expect("ilu donor lock poisoned")
                .is_some(),
            dc_stale_refactorizations: self.dc_donor.total_stale.load(Ordering::Relaxed),
            ac_stale_refactorizations: self.ac_donor.total_stale.load(Ordering::Relaxed),
            dc_donor_refreshes: self.dc_donor.refreshes.load(Ordering::Relaxed),
            ac_donor_refreshes: self.ac_donor.refreshes.load(Ordering::Relaxed),
        }
    }

    /// Stale re-pivots per DC factorization report since the current DC
    /// donor was published.
    pub fn dc_stale_rate(&self) -> f64 {
        self.dc_donor.stale_rate()
    }

    /// Stale re-pivots per AC refactorization report since the current AC
    /// donor was published.
    pub fn ac_stale_rate(&self) -> f64 {
        self.ac_donor.stale_rate()
    }

    /// Drops the published DC donor when its observed stale rate exceeds
    /// `rate_threshold`, so the next *publishing* DC solve re-donates from
    /// its own fresh symbolic analysis. Returns `true` when a donor was
    /// dropped. Orchestration layers call this at deterministic barriers
    /// (between sweep stages) — the workers themselves never publish, so a
    /// mid-fan-out refresh cannot depend on thread timing.
    pub fn clear_dc_donor_if_stale(&self, rate_threshold: f64) -> bool {
        self.dc_donor.clear_if_stale(rate_threshold)
    }

    /// [`SolverTopology::clear_dc_donor_if_stale`] for the AC donor.
    pub fn clear_ac_donor_if_stale(&self, rate_threshold: f64) -> bool {
        self.ac_donor.clear_if_stale(rate_threshold)
    }

    /// Publishes a donor symbolic phase / accumulates stale-refactorization
    /// counts from a finished DC prepared solver. The first publisher wins
    /// (deterministically the nominal sample when the analysis layer runs
    /// it before the fan-out); later publishing reports can *replace* the
    /// donor when the stale rate crossed `refresh_rate`, and non-publishing
    /// ones only add their counters.
    fn note_dc_factorization(
        &self,
        prepared: &PreparedSolver<f64>,
        publish: bool,
        refresh_rate: f64,
    ) {
        // One DC solve = one seed consumer: every report counts.
        self.dc_donor.note(
            prepared.direct_symbolic(),
            publish,
            prepared.direct_stale_fallbacks(),
            true,
            refresh_rate,
        );
        if publish {
            publish_ilu_donor(&self.dc_ilu_donor, prepared);
        }
    }

    /// [`SolverTopology::note_dc_factorization`] for the complex AC
    /// operator; `stale_delta` is the number of not-yet-reported fallbacks
    /// (the sweep operator reports incrementally, once per frequency) and
    /// `count_report` marks the operator's first report — the one where
    /// the donor was actually consumed. Later grid points only deliver
    /// stale deltas, so a long sweep cannot dilute the stale rate below
    /// the refresh threshold.
    fn note_ac_factorization(
        &self,
        prepared: &PreparedSolver<Complex64>,
        publish: bool,
        stale_delta: u64,
        count_report: bool,
        refresh_rate: f64,
    ) {
        self.ac_donor.note(
            prepared.direct_symbolic(),
            publish,
            stale_delta,
            count_report,
            refresh_rate,
        );
        if publish {
            publish_ilu_donor(&self.ac_ilu_donor, prepared);
        }
    }

    /// A cheap clone of the published DC ILU(0) donation, if any.
    // vaem-lint: cold seed extraction during solver handoff, once per topology
    fn dc_ilu_seed(&self) -> Option<IluSeed<f64>> {
        self.dc_ilu_donor
            .read()
            .expect("ilu donor lock poisoned")
            .clone()
    }

    /// A cheap clone of the published AC ILU(0) donation, if any.
    // vaem-lint: cold seed extraction during solver handoff, once per topology
    fn ac_ilu_seed(&self) -> Option<IluSeed<Complex64>> {
        self.ac_ilu_donor
            .read()
            .expect("ilu donor lock poisoned")
            .clone()
    }

    /// Number of mesh nodes the topology was built for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of mesh links the topology was built for.
    pub fn link_count(&self) -> usize {
        self.link_count
    }
}

/// Publishes a solver's ILU(0) factors (plus its healthy iteration
/// baseline) into a shared donation slot — first publisher wins, solvers
/// that prepared the direct strategy have nothing to donate.
fn publish_ilu_donor<T: vaem_numeric::Scalar>(
    slot: &RwLock<Option<IluSeed<T>>>,
    prepared: &PreparedSolver<T>,
) {
    let Some(donation) = prepared.ilu_donor() else {
        return;
    };
    let mut slot = slot.write().expect("ilu donor lock poisoned");
    if slot.is_none() {
        *slot = Some(donation);
    }
}

/// The coupled EM–semiconductor FVM solver bound to one (possibly perturbed)
/// structure and doping profile.
///
/// See the crate-level documentation for the two-stage workflow
/// (DC operating point, then frequency-domain solve).
#[derive(Debug, Clone)]
pub struct CoupledSolver<'a> {
    structure: &'a Structure,
    doping: &'a DopingProfile,
    options: SolverOptions,
    /// Shared perturbation-invariant topology (see [`SolverTopology`]).
    topology: Arc<SolverTopology>,
    /// Geometric factor `dual_area / length` per link (µm) — geometry
    /// dependent, rebuilt per (perturbed) structure.
    link_factor: Vec<f64>,
}

impl<'a> CoupledSolver<'a> {
    /// Binds the solver to a structure and doping profile, building a fresh
    /// private [`SolverTopology`].
    ///
    /// # Errors
    /// Returns [`FvmError::Configuration`] when the doping profile does not
    /// cover the mesh or the structure has no contacts.
    pub fn new(
        structure: &'a Structure,
        doping: &'a DopingProfile,
        options: SolverOptions,
    ) -> Result<Self, FvmError> {
        let topology = Arc::new(SolverTopology::build(structure)?);
        Self::with_topology(structure, doping, options, topology)
    }

    /// Binds the solver to a structure re-using a shared [`SolverTopology`]
    /// built from a topologically identical (e.g. nominal, unperturbed)
    /// structure. Sample sweeps use this so terminal labelling, adjacency
    /// and the cached sparsity patterns are built once per analysis instead
    /// of once per sample.
    ///
    /// # Errors
    /// Returns [`FvmError::Configuration`] when the doping profile or the
    /// topology do not match the mesh.
    // vaem-lint: cold solver construction, once per sample
    pub fn with_topology(
        structure: &'a Structure,
        doping: &'a DopingProfile,
        options: SolverOptions,
        topology: Arc<SolverTopology>,
    ) -> Result<Self, FvmError> {
        let mesh = &structure.mesh;
        if doping.len() != mesh.node_count() {
            return Err(FvmError::Configuration {
                detail: format!(
                    "doping profile covers {} nodes but the mesh has {}",
                    doping.len(),
                    mesh.node_count()
                ),
            });
        }
        if topology.node_count != mesh.node_count() || topology.link_count != mesh.link_count() {
            return Err(FvmError::Configuration {
                detail: format!(
                    "topology was built for {} nodes / {} links but the mesh has {} / {}",
                    topology.node_count,
                    topology.link_count,
                    mesh.node_count(),
                    mesh.link_count()
                ),
            });
        }
        let mut link_factor = vec![0.0; mesh.link_count()];
        for lid in mesh.link_ids() {
            let length = mesh.link_length(lid);
            link_factor[lid.index()] = if length > 1e-12 {
                mesh.dual_area(lid) / length
            } else {
                0.0
            };
        }
        Ok(Self {
            structure,
            doping,
            options,
            topology,
            link_factor,
        })
    }

    /// The structure the solver is bound to.
    pub fn structure(&self) -> &Structure {
        self.structure
    }

    /// Solver options.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Terminal (conductor) labelling used by the solver.
    pub fn terminals(&self) -> &TerminalMap {
        &self.topology.terminals
    }

    /// The shared perturbation-invariant topology.
    pub fn topology(&self) -> &Arc<SolverTopology> {
        &self.topology
    }

    fn material(&self, node: NodeId) -> Material {
        self.structure.materials.material(node)
    }

    /// Solves the equilibrium (all terminals grounded) operating point.
    ///
    /// # Errors
    /// See [`CoupledSolver::solve_dc_with_biases`].
    pub fn solve_dc(&self) -> Result<DcSolution, FvmError> {
        self.solve_dc_with_biases(&BTreeMap::new())
    }

    /// Solves the DC operating point with the given terminal biases (V);
    /// terminals not listed are grounded.
    ///
    /// # Errors
    /// * [`FvmError::Linear`] when the inner linear solve fails.
    /// * [`FvmError::NewtonDidNotConverge`] when the Newton iteration stalls.
    pub fn solve_dc_with_biases(
        &self,
        biases: &BTreeMap<String, f64>,
    ) -> Result<DcSolution, FvmError> {
        let mesh = &self.structure.mesh;
        let n_nodes = mesh.node_count();
        let si = &self.options.silicon;
        let vt = si.thermal_voltage;
        let q = constants::ELEMENTARY_CHARGE;

        let bias_of = |contact: usize| -> f64 {
            let name = self.topology.terminals.name(contact);
            biases.get(name).copied().unwrap_or(0.0)
        };

        // Dirichlet values: every metal node pinned at its terminal bias;
        // non-metal contact nodes pinned at bias (+ built-in potential on
        // semiconductor ohmic contacts).
        // vaem-lint: allow(H1) Dirichlet mask construction, once per DC solve
        let mut dirichlet: Vec<Option<f64>> = vec![None; n_nodes];
        for node in mesh.node_ids() {
            let mat = self.material(node);
            if mat.is_metal() {
                if let Some(t) = self.topology.terminals.terminal(node) {
                    dirichlet[node.index()] = Some(bias_of(t));
                }
            } else if let Some(c) = self.topology.contact_of[node.index()] {
                let mut v = bias_of(c);
                if mat.is_semiconductor() {
                    v += si.built_in_potential(self.doping.donor(node), self.doping.acceptor(node));
                }
                dirichlet[node.index()] = Some(v);
            }
        }

        // Unknown numbering.
        // vaem-lint: allow(H1) unknown-numbering setup, once per DC solve
        let mut unknown_index: Vec<Option<usize>> = vec![None; n_nodes];
        // vaem-lint: allow(H1) unknown-numbering setup, once per DC solve
        let mut unknowns: Vec<NodeId> = Vec::new();
        for node in mesh.node_ids() {
            if dirichlet[node.index()].is_none() {
                unknown_index[node.index()] = Some(unknowns.len());
                unknowns.push(node);
            }
        }

        // Initial guess: built-in potential in the semiconductor, Dirichlet
        // elsewhere prescribed, zero in the dielectric.
        let mut potential: Vec<f64> = (0..n_nodes)
            .map(|i| {
                let node = NodeId(i);
                if let Some(v) = dirichlet[i] {
                    v
                } else if self.material(node).is_semiconductor() {
                    si.built_in_potential(self.doping.donor(node), self.doping.acceptor(node))
                } else {
                    0.0
                }
            })
            // vaem-lint: allow(H1) bias-table materialization, once per DC solve
            .collect();

        let clamp_exp = |x: f64| x.clamp(-60.0, 60.0);
        let linear = LinearSolver::new(self.options.linear_solver);

        // The Jacobian stencil is geometry-only: per unknown, the link
        // coefficient, the neighbour node and (when the neighbour is itself
        // an unknown) its column. Precomputing it keeps the per-iteration
        // assembly to pure arithmetic, and the structural pattern fixed.
        let stencils: Vec<Vec<(f64, usize, Option<usize>)>> = unknowns
            .iter()
            .map(|&node| {
                let mat_i = self.material(node);
                self.topology.node_links[node.index()]
                    .iter()
                    .map(|&lid| {
                        let link = mesh.link(lid);
                        let other = if link.from == node {
                            link.to
                        } else {
                            link.from
                        };
                        let eps =
                            link_permittivity(mat_i, self.material(other), &self.options.materials);
                        let c = eps * self.link_factor[lid.index()];
                        (c, other.index(), unknown_index[other.index()])
                    })
                    // vaem-lint: allow(H1) stencil precomputation keeps per-iteration assembly allocation-free
                    .collect()
            })
            // vaem-lint: allow(H1) stencil precomputation keeps per-iteration assembly allocation-free
            .collect();
        // Charge term data per unknown: (q·volume, net doping) for
        // semiconductor nodes, None elsewhere.
        let charge: Vec<Option<(f64, f64)>> = unknowns
            .iter()
            .map(|&node| {
                self.material(node)
                    .is_semiconductor()
                    .then(|| (q * mesh.node_volume(node), self.doping.net(node)))
            })
            // vaem-lint: allow(H1) charge-term table, once per DC solve
            .collect();

        let n_unknown = unknowns.len();
        // vaem-lint: allow(H1) Newton workspace sized once per DC solve, reused across iterations
        let mut rhs = vec![0.0_f64; n_unknown];
        let mut jac = TripletMatrix::with_capacity(n_unknown, n_unknown, n_unknown * 7);
        // CSR carrying the fixed Jacobian pattern; seeded from the shared
        // topology cache when a previous sample already assembled it, and
        // published there otherwise. Later iterations (and samples) only
        // re-assemble the values.
        let mut jac_csr: Option<vaem_sparse::CsrMatrix<f64>> = None;
        // Linear solver prepared on the first iteration; every later Newton
        // step refactorizes numerically against the cached symbolic phase.
        let mut prepared: Option<PreparedSolver<f64>> = None;

        let mut iterations = 0usize;
        let mut update_norm = f64::INFINITY;
        while iterations < self.options.newton_max_iterations {
            iterations += 1;
            jac.clear();

            for (ui, &node) in unknowns.iter().enumerate() {
                let vi = potential[node.index()];
                let mut diag = 0.0;
                let mut residual = 0.0;
                for &(c, other, uj) in &stencils[ui] {
                    residual += c * (potential[other] - vi);
                    diag -= c;
                    if let Some(uj) = uj {
                        jac.push(ui, uj, c);
                    }
                }
                if let Some((qvol, net)) = charge[ui] {
                    let n = si.intrinsic_density * clamp_exp(vi / vt).exp();
                    let p = si.intrinsic_density * clamp_exp(-vi / vt).exp();
                    residual += qvol * (p - n + net);
                    diag -= qvol * (n + p) / vt;
                }
                jac.push(ui, ui, diag);
                // Solve J·δ = -F.
                rhs[ui] = -residual;
            }

            let matrix = match jac_csr.as_mut() {
                Some(cached) => {
                    jac.assemble_into(cached)?;
                    &*cached
                }
                None => {
                    let built = match self.topology.dc_pattern.get() {
                        Some(p) if p.rows() == n_unknown && p.cols() == n_unknown => {
                            let mut m = p.zeros();
                            jac.assemble_into(&mut m)?;
                            m
                        }
                        _ => {
                            let m = jac.to_csr();
                            let _ = self.topology.dc_pattern.set(SparsityPattern::of(&m));
                            m
                        }
                    };
                    &*jac_csr.insert(built)
                }
            };
            let (mut delta, _report) = match prepared.as_mut() {
                Some(p) => {
                    p.refactor(matrix)?;
                    p.solve(&rhs)?
                }
                None => {
                    // First iteration: seed the direct factorization from
                    // the topology-shared donor symbolic phase (published
                    // by the nominal sample) so perturbed samples skip the
                    // ordering/DFS/pivot-search work entirely — and, on
                    // meshes where the strategy comes out iterative, start
                    // from the nominal's donated ILU(0) values instead of
                    // building a preconditioner from scratch.
                    let (seed, ilu_seed) = if self.options.reuse_symbolic {
                        (self.topology.dc_donor.seed(), self.topology.dc_ilu_seed())
                    } else {
                        (None, None)
                    };
                    let p = prepared.insert(linear.prepare_seeded_with(
                        matrix,
                        seed.as_ref(),
                        ilu_seed.as_ref(),
                    )?);
                    p.solve(&rhs)?
                }
            };

            // A non-finite update poisons the operating point silently:
            // `f64::max` ignores NaN, so an all-NaN delta would pass both
            // the damping and the convergence norm below as 0.0 and the
            // garbage would only surface factorizations later. Fail here,
            // where the cause is still attributable to this solve.
            if delta.iter().any(|d| !d.is_finite()) {
                return Err(FvmError::NonFinite {
                    // vaem-lint: allow(H1) non-finite-update error message, failure path only
                    detail: format!(
                        "DC Newton update contains non-finite entries at iteration {iterations}"
                    ),
                });
            }
            // Damp large Newton steps (potential updates beyond 1 V are
            // truncated, preserving direction).
            let max_step = delta.iter().fold(0.0_f64, |m, d| m.max(d.abs()));
            if max_step > 1.0 {
                let scale = 1.0 / max_step;
                for d in &mut delta {
                    *d *= scale;
                }
            }
            for (ui, &node) in unknowns.iter().enumerate() {
                potential[node.index()] += delta[ui];
            }
            update_norm = delta.iter().fold(0.0_f64, |m, d| m.max(d.abs()));
            if !update_norm.is_finite() {
                return Err(FvmError::NewtonDidNotConverge {
                    iterations,
                    update_norm,
                });
            }
            if update_norm < self.options.newton_tolerance {
                break;
            }
        }
        if update_norm >= self.options.newton_tolerance && update_norm > 1e-6 {
            return Err(FvmError::NewtonDidNotConverge {
                iterations,
                update_norm,
            });
        }

        // Publish this solve's symbolic phase for later samples (first
        // publisher wins — the nominal, when the analysis pre-runs it) and
        // report stale-pivot re-pivots into the shared statistics.
        if let Some(p) = &prepared {
            self.topology.note_dc_factorization(
                p,
                self.options.reuse_symbolic && self.options.publish_symbolic,
                self.options.donor_refresh_stale_rate,
            );
        }

        // Carrier densities from the converged potential.
        // vaem-lint: allow(H1) carrier-density output arrays, once per converged DC solve
        let mut electron_density = vec![0.0; n_nodes];
        // vaem-lint: allow(H1) carrier-density output arrays, once per converged DC solve
        let mut hole_density = vec![0.0; n_nodes];
        for node in mesh.node_ids() {
            if self.material(node).is_semiconductor() {
                let v = potential[node.index()];
                electron_density[node.index()] = si.intrinsic_density * clamp_exp(v / vt).exp();
                hole_density[node.index()] = si.intrinsic_density * clamp_exp(-v / vt).exp();
            }
        }

        Ok(DcSolution {
            potential,
            electron_density,
            hole_density,
            newton_iterations: iterations,
            final_update_norm: update_norm,
        })
    }

    /// Solves the frequency-domain problem with 1 V applied to
    /// `driven_terminal` and 0 V on every other contact.
    ///
    /// # Errors
    /// * [`FvmError::Configuration`] for an unknown terminal name.
    /// * [`FvmError::Linear`] when the linear solve fails.
    pub fn solve_ac(
        &self,
        dc: &DcSolution,
        driven_terminal: &str,
        frequency: f64,
    ) -> Result<AcSolution, FvmError> {
        let mut excitations = BTreeMap::new();
        // vaem-lint: allow(H1) terminal-label key for the excitation map, once per AC solve
        excitations.insert(driven_terminal.to_string(), Complex64::ONE);
        self.solve_ac_with_excitations(dc, &excitations, frequency, driven_terminal)
    }

    /// Solves the frequency-domain problem with explicit complex excitations
    /// per contact name (unlisted contacts are grounded).
    ///
    /// # Errors
    /// Same conditions as [`CoupledSolver::solve_ac`].
    pub fn solve_ac_with_excitations(
        &self,
        dc: &DcSolution,
        excitations: &BTreeMap<String, Complex64>,
        frequency: f64,
        driven_label: &str,
    ) -> Result<AcSolution, FvmError> {
        self.prepare_ac(dc, frequency)?
            .solve(excitations, driven_label)
    }

    /// Assembles and factorizes the frequency-domain operator once for a
    /// given operating point and frequency.
    ///
    /// The AC system matrix depends only on `(dc, frequency)` — every
    /// contact node is a Dirichlet node regardless of which terminal is
    /// driven, so only the right-hand side changes between excitations. The
    /// returned operator therefore amortizes the assembly and the ILU/LU
    /// setup across all terminal solves at this frequency (the
    /// capacitance-matrix extraction and the wPFA weight solve reuse it).
    ///
    /// Equivalent to [`CoupledSolver::prepare_ac_sweep`] followed by
    /// [`AcSweepOperator::set_frequency`]; use the sweep operator directly
    /// to walk a whole frequency grid against one assembly.
    ///
    /// # Errors
    /// * [`FvmError::Linear`] when the factorization fails.
    pub fn prepare_ac<'s>(
        &'s self,
        dc: &DcSolution,
        frequency: f64,
    ) -> Result<AcSweepOperator<'s, 'a>, FvmError> {
        let mut operator = self.prepare_ac_sweep(dc)?;
        operator.set_frequency(frequency)?;
        Ok(operator)
    }

    /// Prepares the frequency-agnostic part of the AC operator for one DC
    /// operating point: the Dirichlet structure, the assembly stencils, the
    /// semiconductor small-signal conductivities and the workspaces.
    ///
    /// The returned [`AcSweepOperator`] walks a frequency grid by rebuilding
    /// only the frequency-dependent values into the cached CSR pattern
    /// (`assemble_into`) and refactorizing numerically against the cached
    /// symbolic phase; [`AcSweepOperator::sweep_terminal`] additionally
    /// warm-starts every point from the previous solution.
    ///
    /// # Errors
    /// Never fails today; returns `Result` for forward compatibility with
    /// configuration validation.
    // vaem-lint: cold sweep preparation, once per sample
    pub fn prepare_ac_sweep<'s>(
        &'s self,
        dc: &DcSolution,
    ) -> Result<AcSweepOperator<'s, 'a>, FvmError> {
        let mesh = &self.structure.mesh;
        let n_nodes = mesh.node_count();
        let si = &self.options.silicon;

        // Frequency-independent: the semiconductor small-signal conductivity
        // of the operating point.
        let sigma_semi: Vec<f64> = (0..n_nodes)
            .map(|i| {
                let node = NodeId(i);
                if self.material(node).is_semiconductor() {
                    si.bulk_conductivity(dc.electron_at(node), dc.hole_at(node))
                } else {
                    0.0
                }
            })
            .collect();

        // Dirichlet structure: every contact node, whatever its excitation.
        let mut unknown_index: Vec<Option<usize>> = vec![None; n_nodes];
        let mut unknowns: Vec<NodeId> = Vec::new();
        for node in mesh.node_ids() {
            if self.topology.contact_of[node.index()].is_none() {
                unknown_index[node.index()] = Some(unknowns.len());
                unknowns.push(node);
            }
        }

        // Assembly stencil per unknown row: the incident links and, when the
        // neighbour is itself an unknown, its column. Couplings into
        // Dirichlet neighbours move to the right-hand side per excitation.
        let n_unknown = unknowns.len();
        let mut stencils: Vec<Vec<(LinkId, Option<usize>)>> = Vec::with_capacity(n_unknown);
        let mut boundary: Vec<(usize, LinkId, usize)> = Vec::new();
        for (ui, &node) in unknowns.iter().enumerate() {
            let links = &self.topology.node_links[node.index()];
            let mut row = Vec::with_capacity(links.len());
            for &lid in links {
                let link = mesh.link(lid);
                let other = if link.from == node {
                    link.to
                } else {
                    link.from
                };
                let uj = unknown_index[other.index()];
                if uj.is_none() {
                    let contact = self.topology.contact_of[other.index()]
                        .expect("non-unknown node is a contact");
                    boundary.push((ui, lid, contact));
                }
                row.push((lid, uj));
            }
            stencils.push(row);
        }

        Ok(AcSweepOperator {
            solver: self,
            sigma_semi,
            unknowns,
            unknown_index,
            stencils,
            boundary,
            node_y: vec![Complex64::ZERO; n_nodes],
            link_admittance: vec![Complex64::ZERO; mesh.link_count()],
            triplets: TripletMatrix::with_capacity(n_unknown, n_unknown, n_unknown * 7),
            matrix: None,
            prepared: None,
            reported_stale: 0,
            warm: None,
            omega: f64::NAN,
        })
    }

    /// One-way coupled vector-potential solve (simplified eq. 3): each
    /// Cartesian component of `A` satisfies a Poisson-type equation on the
    /// link graph with the link currents as sources,
    /// `Σ (A_m − A_l)/µ_r + K·I_l = 0`, with `A = 0` on boundary links.
    fn solve_vector_potential(
        &self,
        mesh: &vaem_mesh::CartesianMesh,
        potential: &[Complex64],
        link_admittance: &[Complex64],
        omega: f64,
    ) -> Result<Vec<Complex64>, FvmError> {
        // Lookup from (axis, from-node) to link id for neighbour search.
        let mut by_from: HashMap<(usize, usize), usize> = HashMap::new(); // vaem-lint: allow(D1) lookup-only: filled once, then queried via .get(); never iterated, so no order dependence
        for lid in mesh.link_ids() {
            let link = mesh.link(lid);
            by_from.insert((link.axis.as_usize(), link.from.index()), lid.index());
        }
        let n_links = mesh.link_count();
        let mut matrix = TripletMatrix::with_capacity(n_links, n_links, n_links * 7);
        // vaem-lint: allow(H1) AC assembly workspace, once per frequency solve
        let mut rhs = vec![Complex64::ZERO; n_links];
        // Scaling constant K of the paper's eq. (3): µ0 here (SI, µm units).
        let k_scale = constants::VACUUM_PERMEABILITY;

        for lid in mesh.link_ids() {
            let l = lid.index();
            let link = mesh.link(lid);
            let from_idx = mesh.grid_index(link.from);
            // Boundary links (touching the domain boundary) are pinned to 0.
            if mesh.is_boundary(link.from) || mesh.is_boundary(link.to) {
                matrix.push(l, l, Complex64::ONE);
                continue;
            }
            let mut diag = Complex64::ZERO;
            for axis in Axis::ALL {
                for forward in [false, true] {
                    let neighbour_from = mesh.neighbor(link.from, axis, forward);
                    if let Some(nf) = neighbour_from {
                        if let Some(&m) = by_from.get(&(link.axis.as_usize(), nf.index())) {
                            matrix.push(l, m, Complex64::ONE);
                            diag -= Complex64::ONE;
                        }
                    }
                }
            }
            let _ = from_idx;
            matrix.push(l, l, diag);
            // Source: link current (conduction + displacement) times K.
            let current =
                link_admittance[l] * (potential[link.from.index()] - potential[link.to.index()]);
            rhs[l] = -(current.scale(k_scale));
            let _ = omega;
        }

        let linear = LinearSolver::new(self.options.linear_solver);
        let (a, _report) = linear.solve(&matrix.to_csr(), &rhs)?;
        Ok(a)
    }
}

/// A sweep-aware factorized frequency-domain operator bound to one DC
/// operating point (see [`CoupledSolver::prepare_ac_sweep`]).
///
/// At one frequency, each [`AcSweepOperator::solve`] call only rebuilds the
/// right-hand side from the excitations and runs the cached
/// direct/ILU-preconditioned solve, so sweeping every terminal of a
/// structure costs one assembly and one factorization in total. Across
/// frequencies, [`AcSweepOperator::set_frequency`] rebuilds only the
/// frequency-dependent values into the cached CSR pattern and refactorizes
/// numerically (the symbolic phase and all workspaces are kept), and
/// [`AcSweepOperator::sweep_terminal`] warm-starts each point from the
/// previous solution.
#[derive(Debug, Clone)]
pub struct AcSweepOperator<'s, 'a> {
    solver: &'s CoupledSolver<'a>,
    /// Semiconductor small-signal conductivity per node (ω-independent).
    sigma_semi: Vec<f64>,
    unknowns: Vec<NodeId>,
    unknown_index: Vec<Option<usize>>,
    /// Per unknown row: incident links and the column of the neighbour when
    /// it is itself an unknown (`None` = Dirichlet neighbour).
    stencils: Vec<Vec<(LinkId, Option<usize>)>>,
    /// Couplings of unknown rows into Dirichlet (contact) neighbours:
    /// `(row, link, contact index)`.
    boundary: Vec<(usize, LinkId, usize)>,
    /// Scratch: per-node admittivity at the current frequency.
    node_y: Vec<Complex64>,
    /// Link admittance `y·g` (S) at the current frequency.
    link_admittance: Vec<Complex64>,
    /// Reused assembly buffer.
    triplets: TripletMatrix<Complex64>,
    /// CSR with the fixed sparsity pattern, built at the first frequency
    /// (from the topology-cached pattern when available).
    matrix: Option<vaem_sparse::CsrMatrix<Complex64>>,
    /// Linear solver prepared at the first frequency, refactorized since.
    prepared: Option<PreparedSolver<Complex64>>,
    /// Stale-pivot fallbacks already reported into the shared topology
    /// statistics (the counter on the prepared solver is cumulative).
    reported_stale: u64,
    /// Solution (on the unknown nodes) of the most recent
    /// [`AcSweepOperator::solve_at`], used to warm-start the next one.
    warm: Option<Vec<Complex64>>,
    /// Angular frequency of the current factorization (NaN before the first
    /// [`AcSweepOperator::set_frequency`]).
    omega: f64,
}

/// Backwards-compatible name of the single-frequency operator returned by
/// [`CoupledSolver::prepare_ac`].
pub type AcOperator<'s, 'a> = AcSweepOperator<'s, 'a>;

impl AcSweepOperator<'_, '_> {
    /// Angular frequency ω (rad/s) of the current factorization.
    pub fn omega(&self) -> f64 {
        self.omega
    }

    /// Number of unknown (non-contact) nodes.
    pub fn unknown_count(&self) -> usize {
        self.unknowns.len()
    }

    /// Re-targets the operator to a new frequency: recomputes the node/link
    /// admittances, rebuilds the matrix values into the cached sparsity
    /// pattern and refactorizes numerically against the cached symbolic
    /// phase of the linear solver.
    ///
    /// # Errors
    /// * [`FvmError::Configuration`] for a non-finite or negative frequency.
    /// * [`FvmError::Linear`] when the refactorization fails.
    pub fn set_frequency(&mut self, frequency: f64) -> Result<(), FvmError> {
        if !frequency.is_finite() || frequency < 0.0 {
            return Err(FvmError::Configuration {
                // vaem-lint: allow(H1) frequency-update failure message, error path only
                detail: format!("invalid AC frequency {frequency} Hz"),
            });
        }
        let solver = self.solver;
        let mesh = &solver.structure.mesh;
        let omega = 2.0 * std::f64::consts::PI * frequency;

        for (i, y) in self.node_y.iter_mut().enumerate() {
            *y = node_admittivity(
                solver.material(NodeId(i)),
                self.sigma_semi[i],
                omega,
                &solver.options.materials,
            );
        }
        for lid in mesh.link_ids() {
            let link = mesh.link(lid);
            let y = link_admittivity(self.node_y[link.from.index()], self.node_y[link.to.index()]);
            self.link_admittance[lid.index()] = y.scale(solver.link_factor[lid.index()]);
        }

        // Only the values change between frequencies: push the new ones and
        // re-assemble into the fixed pattern.
        self.triplets.clear();
        for (ui, row) in self.stencils.iter().enumerate() {
            let mut diag = Complex64::ZERO;
            for &(lid, uj) in row {
                let ya = self.link_admittance[lid.index()];
                diag -= ya;
                if let Some(uj) = uj {
                    self.triplets.push(ui, uj, ya);
                }
            }
            self.triplets.push(ui, ui, diag);
        }
        let n_unknown = self.unknowns.len();
        let matrix = match self.matrix.as_mut() {
            Some(cached) => {
                self.triplets.assemble_into(cached)?;
                &*cached
            }
            None => {
                let built = match solver.topology.ac_pattern.get() {
                    Some(p) if p.rows() == n_unknown && p.cols() == n_unknown => {
                        let mut m = p.zeros();
                        self.triplets.assemble_into(&mut m)?;
                        m
                    }
                    _ => {
                        let m = self.triplets.to_csr();
                        let _ = solver.topology.ac_pattern.set(SparsityPattern::of(&m));
                        m
                    }
                };
                &*self.matrix.insert(built)
            }
        };

        let first_frequency = self.prepared.is_none();
        match self.prepared.as_mut() {
            Some(p) => p.refactor(matrix)?,
            None => {
                // First frequency: seed the direct factorization from the
                // topology-shared AC donor (published by the nominal
                // sample's sweep), skipping this sample's symbolic phase;
                // iterative strategies start from the donated ILU(0)
                // values, with the lazy refresh policy deciding rebuilds.
                let linear = LinearSolver::new(solver.options.linear_solver);
                let (seed, ilu_seed) = if solver.options.reuse_symbolic {
                    (
                        solver.topology.ac_donor.seed(),
                        solver.topology.ac_ilu_seed(),
                    )
                } else {
                    (None, None)
                };
                self.prepared =
                    Some(linear.prepare_seeded_with(matrix, seed.as_ref(), ilu_seed.as_ref())?);
            }
        }
        // Publish the donor (first publisher wins) and report any new
        // stale-pivot re-pivots into the shared statistics. Only the first
        // frequency counts into the donor's health window — that is where
        // the seed was consumed; later points merely refactor this
        // operator's own (possibly re-recorded) structure.
        if let Some(p) = &self.prepared {
            let total = p.direct_stale_fallbacks();
            // `saturating_sub`: a replaced factorization (pattern change,
            // Krylov rescue) starts a fresh counter below what was already
            // reported — that must not wrap into a huge bogus delta.
            let delta = total.saturating_sub(self.reported_stale);
            solver.topology.note_ac_factorization(
                p,
                solver.options.reuse_symbolic && solver.options.publish_symbolic,
                delta,
                first_frequency,
                solver.options.donor_refresh_stale_rate,
            );
            self.reported_stale = total;
        }
        self.omega = omega;
        Ok(())
    }

    /// Solves for a 1 V excitation on `driven_terminal` with every other
    /// contact grounded.
    ///
    /// # Errors
    /// Same conditions as [`AcSweepOperator::solve`].
    pub fn solve_terminal(&mut self, driven_terminal: &str) -> Result<AcSolution, FvmError> {
        let mut excitations = BTreeMap::new();
        excitations.insert(driven_terminal.to_string(), Complex64::ONE);
        self.solve(&excitations, driven_terminal)
    }

    /// Solves the prepared system for one set of complex contact excitations
    /// (unlisted contacts are grounded).
    ///
    /// # Errors
    /// * [`FvmError::Configuration`] for an unknown terminal name or when no
    ///   frequency has been set.
    /// * [`FvmError::Linear`] when the cached solve fails.
    pub fn solve(
        &mut self,
        excitations: &BTreeMap<String, Complex64>,
        driven_label: &str,
    ) -> Result<AcSolution, FvmError> {
        self.solve_inner(excitations, driven_label, None)
            .map(|(ac, _)| ac)
    }

    /// Walks a frequency grid for one driven terminal (1 V, every other
    /// contact grounded), refactorizing numerically per point and
    /// warm-starting each solve from the previous point's solution.
    ///
    /// Returns one [`AcSolution`] per entry of `frequencies`, in order.
    ///
    /// # Errors
    /// Propagates the first per-point failure.
    pub fn sweep_terminal(
        &mut self,
        frequencies: &[f64],
        driven_terminal: &str,
    ) -> Result<Vec<AcSolution>, FvmError> {
        // Each grid walk starts cold, so back-to-back sweeps of the same
        // operator reproduce each other exactly.
        self.warm = None;
        // vaem-lint: allow(H1) sweep output buffer sized once per sweep
        let mut out = Vec::with_capacity(frequencies.len());
        for &frequency in frequencies {
            out.push(self.solve_at(frequency, driven_terminal)?);
        }
        Ok(out)
    }

    /// Out-of-order single-point solve for adaptive refinement: re-targets
    /// the operator to `frequency` (values rebuilt into the cached CSR
    /// pattern, numeric refactorization against the cached/seeded symbolic
    /// phase) and solves for a 1 V excitation on `driven_terminal`,
    /// warm-starting from the most recent `solve_at` solution.
    ///
    /// Unlike [`AcSweepOperator::sweep_terminal`] the points may arrive in
    /// any order — a refinement wave inserts midpoints between already
    /// solved frequencies — and each point costs the same as one grid point
    /// of a dense sweep.
    ///
    /// # Errors
    /// Same conditions as [`AcSweepOperator::set_frequency`] and
    /// [`AcSweepOperator::solve`].
    pub fn solve_at(
        &mut self,
        frequency: f64,
        driven_terminal: &str,
    ) -> Result<AcSolution, FvmError> {
        self.set_frequency(frequency)?;
        let mut excitations = BTreeMap::new();
        // vaem-lint: allow(H1) terminal-label key for the excitation map, once per frequency solve
        excitations.insert(driven_terminal.to_string(), Complex64::ONE);
        let guess = self.warm.take();
        let (ac, solution) = self.solve_inner(&excitations, driven_terminal, guess.as_deref())?;
        self.warm = Some(solution);
        Ok(ac)
    }

    /// Shared solve path; returns the solution restricted to the unknown
    /// nodes alongside the assembled [`AcSolution`] so sweeps can warm-start
    /// the next point.
    fn solve_inner(
        &mut self,
        excitations: &BTreeMap<String, Complex64>,
        driven_label: &str,
        guess: Option<&[Complex64]>,
    ) -> Result<(AcSolution, Vec<Complex64>), FvmError> {
        let solver = self.solver;
        let prepared = self
            .prepared
            .as_mut()
            .ok_or_else(|| FvmError::Configuration {
                // vaem-lint: allow(H1) configuration-error message, failure path only
                detail: "AC operator has no frequency set (call set_frequency first)".to_string(),
            })?;
        for name in excitations.keys() {
            if solver.terminals().index_of(name).is_none() {
                return Err(FvmError::Configuration {
                    // vaem-lint: allow(H1) unknown-terminal error message, failure path only
                    detail: format!("unknown terminal '{name}'"),
                });
            }
        }
        let excitation_of = |contact: usize| -> Complex64 {
            excitations
                .get(solver.terminals().name(contact))
                .copied()
                .unwrap_or(Complex64::ZERO)
        };

        // vaem-lint: allow(H1) AC right-hand side sized once per frequency solve
        let mut rhs = vec![Complex64::ZERO; self.unknowns.len()];
        for &(ui, lid, contact) in &self.boundary {
            rhs[ui] -= self.link_admittance[lid.index()] * excitation_of(contact);
        }
        let (solution, report) = prepared.solve_with_guess(&rhs, guess)?;

        let mesh = &solver.structure.mesh;
        // vaem-lint: allow(H1) solution scatter into node space, once per frequency solve
        let mut potential = vec![Complex64::ZERO; mesh.node_count()];
        for node in mesh.node_ids() {
            let i = node.index();
            potential[i] = match self.unknown_index[i] {
                Some(ui) => solution[ui],
                None => {
                    let contact =
                        solver.topology.contact_of[i].expect("non-unknown node is a contact");
                    excitation_of(contact)
                }
            };
        }

        let vector_potential = match solver.options.em_mode {
            EmMode::ElectroQuasiStatic => None,
            EmMode::FullWave => Some(solver.solve_vector_potential(
                mesh,
                &potential,
                &self.link_admittance,
                self.omega,
            )?),
        };

        let ac = AcSolution {
            potential,
            // vaem-lint: allow(H2) the solution record owns its admittance table; one copy per frequency solve
            link_admittance: self.link_admittance.clone(),
            vector_potential,
            omega: self.omega,
            // vaem-lint: allow(H1) terminal-label copy into the solution record, once per frequency solve
            driven_terminal: driven_label.to_string(),
            solver_strategy: report.strategy,
            linear_residual: report.residual_norm,
        };
        Ok((ac, solution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_mesh::{BoxRegion, StructureBuilder};

    /// Parallel-plate capacitor: two metal plates separated by dielectric.
    fn parallel_plate(spacing: f64) -> Structure {
        StructureBuilder::new(Material::Insulator)
            .with_max_spacing(spacing)
            .add_box(BoxRegion::new(
                [0.0, 0.0, 0.0],
                [4.0, 4.0, 1.0],
                Material::Metal,
            ))
            .add_box(BoxRegion::new(
                [0.0, 0.0, 3.0],
                [4.0, 4.0, 4.0],
                Material::Metal,
            ))
            .add_contact_box("bottom", [0.0, 0.0, 0.0], [4.0, 4.0, 0.0])
            .add_contact_box("top", [0.0, 0.0, 4.0], [4.0, 4.0, 4.0])
            .build()
    }

    #[test]
    fn dc_equilibrium_converges_on_a_doped_block() {
        use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
        let s = build_metalplug_structure(&MetalPlugConfig::coarse());
        let semis = s.semiconductor_nodes();
        let doping = DopingProfile::uniform_donor(s.mesh.node_count(), &semis, 1.0e5);
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        assert!(dc.newton_iterations < 40);
        // Bulk silicon sits near the built-in potential.
        let vbi = SiliconParams::default().built_in_potential(1.0e5, 0.0);
        let bulk = semis.iter().map(|&n| dc.potential_at(n)).sum::<f64>() / semis.len() as f64;
        assert!((bulk - vbi).abs() < 0.15, "bulk {bulk} vs vbi {vbi}");
        // Carrier densities follow the doping in the bulk.
        let n_mean: f64 =
            semis.iter().map(|&n| dc.electron_at(n)).sum::<f64>() / semis.len() as f64;
        assert!(n_mean > 1.0e4, "mean electron density {n_mean}");
    }

    #[test]
    fn ac_parallel_plate_capacitance_matches_analytic_estimate() {
        let s = parallel_plate(0.5);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let freq = 1.0e6;
        let ac = solver.solve_ac(&dc, "top", freq).unwrap();
        let i_top = crate::postprocess::terminal_current(&solver, &ac, "top").unwrap();
        let c_self = i_top.im / ac.omega;
        // Ideal C = eps0*eps_ox*A/d with A = 16 µm², d = 2 µm (fringing adds a bit).
        let ideal = constants::VACUUM_PERMITTIVITY * constants::OXIDE_REL_PERMITTIVITY * 16.0 / 2.0;
        assert!(
            c_self > 0.8 * ideal && c_self < 2.5 * ideal,
            "C = {c_self}, ideal = {ideal}"
        );
        // Coupling to the other plate is negative and of similar magnitude.
        let i_bottom = crate::postprocess::terminal_current(&solver, &ac, "bottom").unwrap();
        let c_mutual = i_bottom.im / ac.omega;
        assert!(c_mutual < 0.0);
        assert!(c_mutual.abs() > 0.5 * c_self);
    }

    #[test]
    fn unknown_terminal_is_a_configuration_error() {
        let s = parallel_plate(1.0);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        assert!(matches!(
            solver.solve_ac(&dc, "does-not-exist", 1e9),
            Err(FvmError::Configuration { .. })
        ));
    }

    #[test]
    fn mismatched_doping_length_is_rejected() {
        let s = parallel_plate(1.0);
        let doping = DopingProfile::undoped(3);
        assert!(matches!(
            CoupledSolver::new(&s, &doping, SolverOptions::default()),
            Err(FvmError::Configuration { .. })
        ));
    }

    #[test]
    fn full_wave_mode_produces_vector_potential() {
        let s = parallel_plate(1.0);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let options = SolverOptions {
            em_mode: EmMode::FullWave,
            ..SolverOptions::default()
        };
        let solver = CoupledSolver::new(&s, &doping, options).unwrap();
        let dc = solver.solve_dc().unwrap();
        let ac = solver.solve_ac(&dc, "top", 1.0e9).unwrap();
        let a = ac.vector_potential.as_ref().expect("full wave stores A");
        assert_eq!(a.len(), s.mesh.link_count());
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn frequency_sweep_matches_per_frequency_solves() {
        let s = parallel_plate(0.5);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let frequencies = [1.0e6, 1.0e7, 1.0e8, 1.0e9];
        let mut sweep = solver.prepare_ac_sweep(&dc).unwrap();
        let swept = sweep.sweep_terminal(&frequencies, "top").unwrap();
        assert_eq!(swept.len(), frequencies.len());
        for (freq, ac) in frequencies.iter().zip(swept.iter()) {
            let reference = solver.solve_ac(&dc, "top", *freq).unwrap();
            assert_eq!(ac.omega, reference.omega);
            let mut max_diff = 0.0_f64;
            let mut max_ref = 0.0_f64;
            for (a, b) in ac.potential.iter().zip(reference.potential.iter()) {
                max_diff = max_diff.max((*a - *b).abs());
                max_ref = max_ref.max(b.abs());
            }
            assert!(
                max_diff <= 1e-8 * max_ref.max(1e-30),
                "potentials diverged at {freq} Hz: {max_diff:.3e} vs scale {max_ref:.3e}"
            );
        }
    }

    #[test]
    fn shared_topology_solver_matches_a_private_one() {
        let s = parallel_plate(0.5);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let topology = Arc::new(SolverTopology::build(&s).unwrap());
        let shared =
            CoupledSolver::with_topology(&s, &doping, SolverOptions::default(), topology.clone())
                .unwrap();
        let private = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc_shared = shared.solve_dc().unwrap();
        let dc_private = private.solve_dc().unwrap();
        for (a, b) in dc_shared.potential.iter().zip(dc_private.potential.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        // A second shared-topology solver re-uses the cached patterns.
        let again =
            CoupledSolver::with_topology(&s, &doping, SolverOptions::default(), topology).unwrap();
        let dc_again = again.solve_dc().unwrap();
        assert_eq!(dc_shared.potential, dc_again.potential);
    }

    #[test]
    fn topology_publishes_seeds_and_seeded_solves_match_unseeded_bits() {
        // Coarse enough that both stages stay below the Auto direct-LU
        // threshold (an iterative strategy has no symbolic phase to seed).
        let s = parallel_plate(1.0);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let topology = Arc::new(SolverTopology::build(&s).unwrap());
        assert!(!topology.seed_stats().dc_seeded);

        // The first (donor) solver publishes its DC and AC symbolic phases.
        let donor =
            CoupledSolver::with_topology(&s, &doping, SolverOptions::default(), topology.clone())
                .unwrap();
        let dc_donor = donor.solve_dc().unwrap();
        let _ = donor.solve_ac(&dc_donor, "top", 1.0e9).unwrap();
        let stats = topology.seed_stats();
        assert!(stats.dc_seeded && stats.ac_seeded, "stats {stats:?}");
        assert_eq!(stats.dc_stale_refactorizations, 0);
        assert_eq!(stats.ac_stale_refactorizations, 0);

        // A second solver on the shared topology consumes the seeds...
        let seeded =
            CoupledSolver::with_topology(&s, &doping, SolverOptions::default(), topology.clone())
                .unwrap();
        let dc_seeded = seeded.solve_dc().unwrap();
        let ac_seeded = seeded.solve_ac(&dc_seeded, "top", 1.0e9).unwrap();

        // ...and must reproduce an unseeded solver bit for bit.
        let unseeded_options = SolverOptions {
            reuse_symbolic: false,
            ..SolverOptions::default()
        };
        let private = CoupledSolver::new(&s, &doping, unseeded_options).unwrap();
        let dc_ref = private.solve_dc().unwrap();
        let ac_ref = private.solve_ac(&dc_ref, "top", 1.0e9).unwrap();
        assert_eq!(
            dc_seeded
                .potential
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            dc_ref
                .potential
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "seeded DC potentials diverged from the unseeded path"
        );
        let ac_bits = |ac: &AcSolution| {
            ac.potential
                .iter()
                .flat_map(|v| [v.re.to_bits(), v.im.to_bits()])
                .collect::<Vec<_>>()
        };
        assert_eq!(
            ac_bits(&ac_seeded),
            ac_bits(&ac_ref),
            "seeded AC potentials diverged from the unseeded path"
        );
    }

    #[test]
    fn iterative_strategies_publish_and_consume_ilu_donations() {
        // Force the Krylov path so the topology shares ILU(0) values
        // instead of symbolic LU phases.
        let s = parallel_plate(0.5);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let options = SolverOptions {
            linear_solver: SolverKind::IluBiCgStab,
            ..SolverOptions::default()
        };
        let topology = Arc::new(SolverTopology::build(&s).unwrap());
        assert!(!topology.seed_stats().dc_ilu_seeded);

        let donor =
            CoupledSolver::with_topology(&s, &doping, options.clone(), topology.clone()).unwrap();
        let dc_donor = donor.solve_dc().unwrap();
        let ac_donor = donor.solve_ac(&dc_donor, "top", 1.0e9).unwrap();
        let stats = topology.seed_stats();
        assert!(
            stats.dc_ilu_seeded && stats.ac_ilu_seeded,
            "iterative solves must donate their ILU(0): {stats:?}"
        );
        // The direct donors stay empty — there was no symbolic phase.
        assert!(!stats.dc_seeded && !stats.ac_seeded, "stats {stats:?}");

        // A sibling on the shared topology starts from the donated
        // preconditioner and reproduces the physics.
        let seeded = CoupledSolver::with_topology(&s, &doping, options, topology.clone()).unwrap();
        let dc_seeded = seeded.solve_dc().unwrap();
        let ac_seeded = seeded.solve_ac(&dc_seeded, "top", 1.0e9).unwrap();
        for (a, b) in dc_seeded.potential.iter().zip(dc_donor.potential.iter()) {
            assert!((a - b).abs() < 1e-7, "seeded DC diverged: {a} vs {b}");
        }
        let mut max_diff = 0.0_f64;
        for (a, b) in ac_seeded.potential.iter().zip(ac_donor.potential.iter()) {
            max_diff = max_diff.max((*a - *b).abs());
        }
        assert!(max_diff < 1e-7, "seeded AC diverged by {max_diff:.3e}");
    }

    #[test]
    fn mismatched_topology_is_rejected() {
        let s = parallel_plate(0.5);
        let other = parallel_plate(1.0); // different mesh resolution
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let topology = Arc::new(SolverTopology::build(&other).unwrap());
        assert!(matches!(
            CoupledSolver::with_topology(&s, &doping, SolverOptions::default(), topology),
            Err(FvmError::Configuration { .. })
        ));
    }

    #[test]
    fn invalid_sweep_frequency_is_rejected() {
        let s = parallel_plate(1.0);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let mut sweep = solver.prepare_ac_sweep(&dc).unwrap();
        assert!(matches!(
            sweep.set_frequency(f64::NAN),
            Err(FvmError::Configuration { .. })
        ));
        assert!(matches!(
            sweep.set_frequency(-1.0),
            Err(FvmError::Configuration { .. })
        ));
        // And solving without a frequency is a configuration error.
        let mut fresh = solver.prepare_ac_sweep(&dc).unwrap();
        assert!(matches!(
            fresh.solve_terminal("top"),
            Err(FvmError::Configuration { .. })
        ));
    }

    #[test]
    fn solve_at_matches_set_frequency_plus_solve() {
        let s = parallel_plate(0.5);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        // Out-of-order refinement pattern: jump around the grid.
        let mut adaptive = solver.prepare_ac_sweep(&dc).unwrap();
        for freq in [1.0e9, 1.0e7, 3.0e8, 1.0e8] {
            let ac = adaptive.solve_at(freq, "top").unwrap();
            let mut reference_op = solver.prepare_ac(&dc, freq).unwrap();
            let reference = reference_op.solve_terminal("top").unwrap();
            assert_eq!(ac.omega, reference.omega);
            let mut max_diff = 0.0_f64;
            let mut max_ref = 0.0_f64;
            for (a, b) in ac.potential.iter().zip(reference.potential.iter()) {
                max_diff = max_diff.max((*a - *b).abs());
                max_ref = max_ref.max(b.abs());
            }
            assert!(
                max_diff <= 1e-8 * max_ref.max(1e-30),
                "solve_at diverged at {freq} Hz: {max_diff:.3e} vs scale {max_ref:.3e}"
            );
        }
    }

    /// 2×2 with a donor-friendly diagonal: the published pivot sequence is
    /// the diagonal one.
    fn donor_matrix() -> vaem_sparse::CsrMatrix<f64> {
        vaem_sparse::CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 10.0)],
        )
    }

    /// Same pattern, anti-diagonally dominant values: the donor's diagonal
    /// pivots fall below the refactorization tolerance, so every seeded
    /// consumer re-pivots from scratch.
    fn hostile_matrix() -> vaem_sparse::CsrMatrix<f64> {
        vaem_sparse::CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0e-14), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0e-14)],
        )
    }

    #[test]
    fn stale_donor_is_republished_once_the_stale_rate_crosses_the_threshold() {
        // Regression test for the stale-donor lock-in: the topology used to
        // keep the first published donor forever, so a wide parameter
        // excursion re-pivoted every sample while `seed_reuse` still
        // reported a healthy donor. The slot must swap in the publisher's
        // freshly re-pivoted structure once the stale rate crosses the
        // threshold.
        let s = parallel_plate(1.0);
        let topology = SolverTopology::build(&s).unwrap();
        let linear = LinearSolver::new(SolverKind::DirectLu);
        let refresh_rate = 0.5;

        // The nominal publisher donates the diagonal pivot sequence.
        let donor = linear.prepare(&donor_matrix()).unwrap();
        topology.note_dc_factorization(&donor, true, refresh_rate);
        let stats = topology.seed_stats();
        assert!(stats.dc_seeded);
        assert_eq!(stats.dc_donor_refreshes, 0);

        // A publishing consumer hits the excursion: its seeded
        // factorization goes stale, re-pivots locally, and — with the stale
        // rate now above the threshold — replaces the donor.
        let seed = topology.dc_donor.seed();
        let stale = linear
            .prepare_seeded(&hostile_matrix(), seed.as_ref())
            .unwrap();
        assert_eq!(stale.direct_stale_fallbacks(), 1);
        topology.note_dc_factorization(&stale, true, refresh_rate);
        let stats = topology.seed_stats();
        assert_eq!(stats.dc_donor_refreshes, 1, "{stats:?}");
        assert_eq!(stats.dc_stale_refactorizations, 1);

        // The refreshed donor was recorded from the excursion's values, so
        // the next consumer stays on the numeric-only path.
        let seed = topology.dc_donor.seed();
        let fresh = linear
            .prepare_seeded(&hostile_matrix(), seed.as_ref())
            .unwrap();
        assert_eq!(
            fresh.direct_stale_fallbacks(),
            0,
            "refreshed donor must fit the excursion"
        );
        topology.note_dc_factorization(&fresh, true, refresh_rate);
        assert_eq!(topology.seed_stats().dc_donor_refreshes, 1);
    }

    #[test]
    fn non_publishing_reports_never_replace_the_donor_and_barrier_clear_engages() {
        // The analysis fan-out: samples report staleness but must not
        // republish (publish = false keeps the donor identity independent
        // of worker timing). The orchestration layer then clears the
        // worn-out donor at a deterministic barrier instead.
        let s = parallel_plate(1.0);
        let topology = SolverTopology::build(&s).unwrap();
        let linear = LinearSolver::new(SolverKind::DirectLu);
        let donor = linear.prepare(&donor_matrix()).unwrap();
        topology.note_dc_factorization(&donor, true, 0.5);

        for _ in 0..4 {
            let seed = topology.dc_donor.seed();
            let stale = linear
                .prepare_seeded(&hostile_matrix(), seed.as_ref())
                .unwrap();
            assert_eq!(stale.direct_stale_fallbacks(), 1);
            topology.note_dc_factorization(&stale, false, 0.5);
        }
        let stats = topology.seed_stats();
        assert!(stats.dc_seeded, "non-publishers must not touch the donor");
        assert_eq!(stats.dc_donor_refreshes, 0);
        assert_eq!(stats.dc_stale_refactorizations, 4);
        assert!(topology.dc_stale_rate() > 0.5);

        // Barrier refresh: below the observed rate nothing happens; at a
        // lower threshold the donor is dropped (and counted) so the next
        // publisher re-donates.
        assert!(!topology.clear_dc_donor_if_stale(1.0));
        assert!(topology.clear_dc_donor_if_stale(0.5));
        let stats = topology.seed_stats();
        assert!(!stats.dc_seeded);
        assert_eq!(stats.dc_donor_refreshes, 1);
        // Re-clearing without new staleness is a no-op.
        assert!(!topology.clear_dc_donor_if_stale(0.5));

        // The next publisher fills the empty slot with excursion-fresh
        // pivots and consumers stop re-pivoting.
        let republished = linear.prepare(&hostile_matrix()).unwrap();
        topology.note_dc_factorization(&republished, true, 0.5);
        assert!(topology.seed_stats().dc_seeded);
        let seed = topology.dc_donor.seed();
        let consumer = linear
            .prepare_seeded(&hostile_matrix(), seed.as_ref())
            .unwrap();
        assert_eq!(consumer.direct_stale_fallbacks(), 0);
    }

    #[test]
    fn sweep_length_does_not_dilute_the_stale_rate() {
        // An AC operator reports once per grid point but consumes the donor
        // only at its first frequency; if every report counted into the
        // denominator, a 9-point sweep would pin the stale rate at ~1/9 per
        // stale sample and the 0.5 threshold would be unreachable.
        let slot = DonorSlot::default();
        let mut donor_sym = SymbolicLu::analyze(&donor_matrix()).unwrap();
        donor_sym.factor(&donor_matrix()).unwrap();
        slot.note(Some(&donor_sym), true, 0, true, 0.5);
        assert!(slot.is_published());

        // Eight later grid points of a sweeping consumer: stale-free,
        // non-counting — the window must stay empty.
        for _ in 0..8 {
            slot.note(None, false, 0, false, 0.5);
        }
        assert_eq!(slot.stale_rate(), 0.0);
        assert_eq!(slot.window_reports.load(Ordering::Relaxed), 0);

        // The consumer's first (seed-consuming) report went stale: one
        // stale over one counted report crosses the threshold even though
        // nine reports arrived in total, and a publishing consumer
        // replaces the donor.
        let mut fresh = SymbolicLu::analyze(&hostile_matrix()).unwrap();
        fresh.factor(&hostile_matrix()).unwrap();
        slot.note(Some(&fresh), true, 1, true, 0.5);
        assert_eq!(slot.refreshes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn infinite_refresh_rate_pins_the_first_donor() {
        let s = parallel_plate(1.0);
        let topology = SolverTopology::build(&s).unwrap();
        let linear = LinearSolver::new(SolverKind::DirectLu);
        let donor = linear.prepare(&donor_matrix()).unwrap();
        topology.note_dc_factorization(&donor, true, f64::INFINITY);
        for _ in 0..3 {
            let seed = topology.dc_donor.seed();
            let stale = linear
                .prepare_seeded(&hostile_matrix(), seed.as_ref())
                .unwrap();
            topology.note_dc_factorization(&stale, true, f64::INFINITY);
        }
        let stats = topology.seed_stats();
        assert_eq!(stats.dc_donor_refreshes, 0);
        assert_eq!(stats.dc_stale_refactorizations, 3);
    }

    #[test]
    fn dc_bias_shifts_metal_potentials() {
        let s = parallel_plate(1.0);
        let doping = DopingProfile::undoped(s.mesh.node_count());
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let mut biases = BTreeMap::new();
        biases.insert("top".to_string(), 0.5);
        let dc = solver.solve_dc_with_biases(&biases).unwrap();
        let top_nodes = solver
            .terminals()
            .nodes_of(solver.terminals().index_of("top").unwrap());
        for n in top_nodes {
            assert!((dc.potential_at(n) - 0.5).abs() < 1e-12);
        }
    }
}
