//! DC (equilibrium / bias point) solution container.

use vaem_mesh::NodeId;

/// Result of the nonlinear Poisson (Newton–Raphson) DC solve.
///
/// Potentials are stored for every node; carrier densities are zero outside
/// the semiconductor region.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Electrostatic potential (V) per node.
    pub potential: Vec<f64>,
    /// Electron density (µm⁻³) per node.
    pub electron_density: Vec<f64>,
    /// Hole density (µm⁻³) per node.
    pub hole_density: Vec<f64>,
    /// Newton iterations used.
    pub newton_iterations: usize,
    /// Final Newton update infinity-norm (V).
    pub final_update_norm: f64,
}

impl DcSolution {
    /// Potential at a node (V).
    #[inline]
    pub fn potential_at(&self, node: NodeId) -> f64 {
        self.potential[node.index()]
    }

    /// Electron density at a node (µm⁻³).
    #[inline]
    pub fn electron_at(&self, node: NodeId) -> f64 {
        self.electron_density[node.index()]
    }

    /// Hole density at a node (µm⁻³).
    #[inline]
    pub fn hole_at(&self, node: NodeId) -> f64 {
        self.hole_density[node.index()]
    }

    /// Number of mesh nodes covered by the solution.
    pub fn node_count(&self) -> usize {
        self.potential.len()
    }
}
