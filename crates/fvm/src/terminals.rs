//! Terminal labelling of metal nodes.
//!
//! Contacts are declared on (part of) the metal surfaces; the rest of a plug
//! or TSV barrel is electrically tied to its contact through the metal. This
//! module flood-fills the contact label across metal–metal links so that the
//! DC stage can pin every metal node to the bias of its terminal and the
//! post-processing can attribute link currents to terminals.

use std::collections::VecDeque;
use vaem_mesh::{NodeId, Structure};

/// Per-node terminal assignment: `Some(k)` means the node is metal and is
/// electrically connected to `structure.contacts[k]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminalMap {
    assignment: Vec<Option<usize>>,
    names: Vec<String>,
}

impl TerminalMap {
    /// Terminal index of a node, if any.
    #[inline]
    pub fn terminal(&self, node: NodeId) -> Option<usize> {
        self.assignment[node.index()]
    }

    /// Name of terminal `k`.
    pub fn name(&self, k: usize) -> &str {
        &self.names[k]
    }

    /// Number of terminals.
    pub fn terminal_count(&self) -> usize {
        self.names.len()
    }

    /// Index of the terminal with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// All nodes assigned to terminal `k`.
    // vaem-lint: cold materializes the terminal node list during setup
    pub fn nodes_of(&self, k: usize) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| (t == Some(k)).then_some(NodeId(i)))
            .collect()
    }
}

/// Builds the terminal map of a structure by breadth-first search from every
/// contact across metal–metal links.
///
/// Metal nodes not reached by any contact stay unassigned (floating metal);
/// non-metal contact nodes (e.g. an ohmic contact declared on semiconductor
/// nodes) are labelled with their contact directly but not propagated.
pub fn label_terminals(structure: &Structure) -> TerminalMap {
    let mesh = &structure.mesh;
    let n = mesh.node_count();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    let names: Vec<String> = structure.contacts.iter().map(|c| c.name.clone()).collect();

    // Adjacency restricted to metal-metal links.
    let mut metal_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for link in mesh.links() {
        let a = link.from;
        let b = link.to;
        if structure.materials.material(a).is_metal() && structure.materials.material(b).is_metal()
        {
            metal_adj[a.index()].push(b);
            metal_adj[b.index()].push(a);
        }
    }

    for (k, contact) in structure.contacts.iter().enumerate() {
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &seed in &contact.nodes {
            if assignment[seed.index()].is_none() {
                assignment[seed.index()] = Some(k);
                if structure.materials.material(seed).is_metal() {
                    queue.push_back(seed);
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &metal_adj[u.index()] {
                if assignment[v.index()].is_none() {
                    assignment[v.index()] = Some(k);
                    queue.push_back(v);
                }
            }
        }
    }

    TerminalMap { assignment, names }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
    use vaem_mesh::structures::tsv::{build_tsv_structure, TsvConfig};
    use vaem_mesh::Material;

    #[test]
    fn plugs_are_fully_labelled_from_their_top_contacts() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let map = label_terminals(&s);
        let plug1 = map.index_of("plug1").unwrap();
        let plug2 = map.index_of("plug2").unwrap();
        // Every metal node belongs to one of the two plugs.
        for n in s.mesh.node_ids() {
            if s.materials.material(n) == Material::Metal {
                let t = map.terminal(n).expect("metal node must have a terminal");
                assert!(t == plug1 || t == plug2);
            }
        }
        // And the two plugs are distinct sets.
        assert!(!map.nodes_of(plug1).is_empty());
        assert!(!map.nodes_of(plug2).is_empty());
    }

    #[test]
    fn ground_contact_on_semiconductor_is_labelled_but_not_propagated() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let map = label_terminals(&s);
        let ground = map.index_of("ground").unwrap();
        let labelled = map.nodes_of(ground);
        assert_eq!(labelled.len(), s.contact("ground").unwrap().nodes.len());
    }

    #[test]
    fn tsv_terminals_are_six_disjoint_sets() {
        let s = build_tsv_structure(&TsvConfig::coarse());
        let map = label_terminals(&s);
        assert_eq!(map.terminal_count(), 6);
        let mut total = 0;
        for k in 0..6 {
            let nodes = map.nodes_of(k);
            assert!(!nodes.is_empty(), "terminal {} is empty", map.name(k));
            total += nodes.len();
        }
        // No node is double-assigned because nodes_of partitions by value.
        let assigned = s
            .mesh
            .node_ids()
            .filter(|&n| map.terminal(n).is_some())
            .count();
        assert_eq!(total, assigned);
    }
}
