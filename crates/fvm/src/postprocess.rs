//! Post-processing of coupled-solver solutions: terminal currents,
//! metal–semiconductor interface currents (Table I), capacitance matrix
//! entries (Table II) and potential maps on cross sections (Fig. 2b).

use crate::{AcSolution, CoupledSolver, DcSolution, FvmError};
use std::collections::BTreeMap;
use vaem_mesh::{Axis, NodeId};
use vaem_numeric::Complex64;

/// Complex terminal current (A) flowing out of the named terminal — summed
/// over all links crossing the surface of the conductor electrically tied to
/// the terminal (the whole plug/TSV body, not just the contact face, so that
/// the measurement never multiplies solver noise by the metal conductivity).
///
/// With a 1 V excitation this is the terminal's row of the admittance matrix;
/// its imaginary part divided by ω is the Maxwell capacitance entry.
///
/// # Errors
/// Returns [`FvmError::Configuration`] for an unknown terminal name.
// vaem-lint: cold output-side postprocessing; allocates the reported quantities
pub fn terminal_current(
    solver: &CoupledSolver<'_>,
    ac: &AcSolution,
    terminal: &str,
) -> Result<Complex64, FvmError> {
    let k = solver
        .terminals()
        .index_of(terminal)
        .ok_or_else(|| FvmError::Configuration {
            detail: format!("unknown terminal '{terminal}'"),
        })?;
    let mesh = &solver.structure().mesh;
    let mut current = Complex64::ZERO;
    for lid in mesh.link_ids() {
        let link = mesh.link(lid);
        let from_t = solver.terminals().terminal(link.from);
        let to_t = solver.terminals().terminal(link.to);
        let y = ac.admittance_at(lid);
        match (from_t, to_t) {
            (Some(a), Some(b)) if a == b => {}
            (Some(a), _) if a == k => {
                current += y * (ac.potential_at(link.from) - ac.potential_at(link.to));
            }
            (_, Some(b)) if b == k => {
                current += y * (ac.potential_at(link.to) - ac.potential_at(link.from));
            }
            _ => {}
        }
    }
    Ok(current)
}

/// Complex current (A) crossing the metal–semiconductor interface of the
/// named terminal: the sum of link currents from metal nodes electrically
/// belonging to the terminal into semiconductor nodes.
///
/// This is the quantity reported (as a magnitude, in µA) in the paper's
/// Table I.
///
/// # Errors
/// Returns [`FvmError::Configuration`] for an unknown terminal name.
// vaem-lint: cold output-side postprocessing; allocates the reported quantities
pub fn interface_current(
    solver: &CoupledSolver<'_>,
    ac: &AcSolution,
    terminal: &str,
) -> Result<Complex64, FvmError> {
    let k = solver
        .terminals()
        .index_of(terminal)
        .ok_or_else(|| FvmError::Configuration {
            detail: format!("unknown terminal '{terminal}'"),
        })?;
    let structure = solver.structure();
    let mesh = &structure.mesh;
    let mut current = Complex64::ZERO;
    for lid in mesh.link_ids() {
        let link = mesh.link(lid);
        let mat_from = structure.materials.material(link.from);
        let mat_to = structure.materials.material(link.to);
        let y = ac.admittance_at(lid);
        let from_terminal = solver.terminals().terminal(link.from);
        let to_terminal = solver.terminals().terminal(link.to);
        if mat_from.is_metal() && from_terminal == Some(k) && mat_to.is_semiconductor() {
            current += y * (ac.potential_at(link.from) - ac.potential_at(link.to));
        } else if mat_to.is_metal() && to_terminal == Some(k) && mat_from.is_semiconductor() {
            current += y * (ac.potential_at(link.to) - ac.potential_at(link.from));
        }
    }
    Ok(current)
}

/// One column of the Maxwell capacitance matrix: drives `driven` with 1 V at
/// `frequency` and returns `C_{t,driven} = Im(I_t)/ω` (F) for every terminal
/// `t`, keyed by terminal name.
///
/// Diagonal entries are positive, couplings negative — matching the sign
/// convention of the paper's Table II.
///
/// # Errors
/// Propagates AC-solve and terminal-lookup failures.
pub fn capacitance_column(
    solver: &CoupledSolver<'_>,
    dc: &DcSolution,
    driven: &str,
    frequency: f64,
) -> Result<BTreeMap<String, f64>, FvmError> {
    let ac = solver.solve_ac(dc, driven, frequency)?;
    capacitance_column_from(solver, &ac)
}

/// [`capacitance_column`] computed from an already-available AC solution
/// (the nominal-analysis path solves once and shares the solution between
/// the output extraction and the wPFA weights).
///
/// # Errors
/// Propagates terminal-lookup failures. Returns
/// [`FvmError::Configuration`] for a DC solution (`ω = 0`): `C = Im(I)/ω`
/// is undefined there, and the former `0/0 = NaN` silently poisoned every
/// downstream PCE moment of a sweep that included the DC point. Returns
/// [`FvmError::NonFinite`] — naming the offending terminal and its index —
/// when a terminal's current sum is non-finite; array meshes multiply the
/// terminal count, and a silent NaN column poisons every matrix entry of
/// that terminal.
// vaem-lint: cold output-side postprocessing; allocates the reported quantities
pub fn capacitance_column_from(
    solver: &CoupledSolver<'_>,
    ac: &crate::AcSolution,
) -> Result<BTreeMap<String, f64>, FvmError> {
    if ac.omega <= 0.0 || !ac.omega.is_finite() {
        return Err(FvmError::Configuration {
            detail: format!(
                "capacitance extraction needs ω > 0, got {} Hz — the DC point \
                 carries no displacement current to divide by",
                ac.frequency()
            ),
        });
    }
    let mut out = BTreeMap::new();
    for k in 0..solver.terminals().terminal_count() {
        let name = solver.terminals().name(k).to_string();
        let current = terminal_current(solver, ac, &name)?;
        if !current.re.is_finite() || !current.im.is_finite() {
            return Err(FvmError::NonFinite {
                detail: format!(
                    "terminal '{name}' (index {k}) sums to a non-finite current \
                     {current:?} at {} Hz: its capacitance column would silently \
                     poison the whole matrix",
                    ac.frequency()
                ),
            });
        }
        out.insert(name, current.im / ac.omega);
    }
    Ok(out)
}

/// The full Maxwell capacitance matrix at `frequency`: one column per
/// terminal, keyed `[driven][measured]`.
///
/// All columns share a single [`CoupledSolver::prepare_ac`] operator, so the
/// AC assembly and the ILU/LU factorization are done exactly once for the
/// whole matrix instead of once per terminal.
///
/// # Errors
/// Propagates AC-solve failures.
pub fn capacitance_matrix(
    solver: &CoupledSolver<'_>,
    dc: &DcSolution,
    frequency: f64,
) -> Result<BTreeMap<String, BTreeMap<String, f64>>, FvmError> {
    let mut operator = solver.prepare_ac(dc, frequency)?;
    let mut out = BTreeMap::new();
    for k in 0..solver.terminals().terminal_count() {
        let driven = solver.terminals().name(k).to_string();
        let ac = operator.solve_terminal(&driven)?;
        out.insert(driven, capacitance_column_from(solver, &ac)?);
    }
    Ok(out)
}

/// Input impedance spectrum of a driven terminal over a frequency sweep.
///
/// For each swept [`AcSolution`] (as produced by
/// [`crate::AcSweepOperator::sweep_terminal`]), computes the terminal
/// current `I` and the applied terminal voltage `V` (read off the contact
/// nodes, so non-unit excitations work too) and returns
/// `(frequency_Hz, Z = V / I)` pairs in sweep order.
///
/// The low-frequency limit of a capacitive structure behaves as
/// `Z ≈ 1/(jωC)`; the spectrum exposes the transition into the
/// conduction-dominated regime that the TSV coupling studies sweep for.
///
/// # Errors
/// Returns [`FvmError::Configuration`] for an unknown terminal, or for a
/// sweep point where the terminal behaves as an open circuit — the current
/// is identically zero (e.g. a purely capacitive terminal at `f = 0`) or so
/// small that `V / I` overflows to a non-finite impedance. Both used to
/// propagate silently (`∞`/NaN) into the PCE moments of the statistical
/// sweeps; they now fail with the offending frequency in the message.
// vaem-lint: stage pure function of the solved AC state and geometry
pub fn impedance_spectrum(
    solver: &CoupledSolver<'_>,
    sweep: &[AcSolution],
    terminal: &str,
) -> Result<Vec<(f64, Complex64)>, FvmError> {
    let k = solver
        .terminals()
        .index_of(terminal)
        .ok_or_else(|| FvmError::Configuration {
            detail: format!("unknown terminal '{terminal}'"),
        })?;
    let nodes = solver.terminals().nodes_of(k);
    let drive_node = nodes
        .first()
        .copied()
        .ok_or_else(|| FvmError::Configuration {
            detail: format!("terminal '{terminal}' has no nodes"),
        })?;
    sweep
        .iter()
        .map(|ac| {
            let current = terminal_current(solver, ac, terminal)?;
            if current.abs() == 0.0 {
                return Err(FvmError::Configuration {
                    detail: format!(
                        "terminal '{terminal}' carries no current at {} Hz \
                         (open circuit / DC point): no impedance is defined",
                        ac.frequency()
                    ),
                });
            }
            let voltage = ac.potential_at(drive_node);
            let z = voltage / current;
            if !z.re.is_finite() || !z.im.is_finite() {
                return Err(FvmError::Configuration {
                    detail: format!(
                        "terminal '{terminal}' is effectively open-circuit at {} Hz \
                         (|I| = {:.3e} A): impedance overflows",
                        ac.frequency(),
                        current.abs()
                    ),
                });
            }
            Ok((ac.frequency(), z))
        })
        .collect()
}

/// Aggressor→victim coupling-ratio spectrum over a frequency sweep.
///
/// For each swept [`AcSolution`] (the aggressor terminal driven with 1 V, as
/// produced by [`crate::AcSweepOperator::sweep_terminal`]), returns
/// `(frequency_Hz, |I_victim| / |I_aggressor|)` — the fraction of the
/// aggressor's drive current induced at the grounded victim terminal. This is
/// the S-curve-style crosstalk-vs-frequency quantity the TSV-array coupling
/// studies sweep for: flat and capacitive at low frequency, rising once
/// substrate conduction takes over.
///
/// # Errors
/// Returns [`FvmError::Configuration`] for an unknown terminal or for a sweep
/// point where the aggressor carries no current (the ratio is undefined), and
/// [`FvmError::NonFinite`] when either current sums to a non-finite value —
/// each with the offending frequency in the message.
// vaem-lint: stage pure function of the solved AC state and geometry
pub fn coupling_ratio_spectrum(
    solver: &CoupledSolver<'_>,
    sweep: &[AcSolution],
    aggressor: &str,
    victim: &str,
) -> Result<Vec<(f64, f64)>, FvmError> {
    for terminal in [aggressor, victim] {
        if solver.terminals().index_of(terminal).is_none() {
            return Err(FvmError::Configuration {
                detail: format!("unknown terminal '{terminal}'"),
            });
        }
    }
    sweep
        .iter()
        .map(|ac| {
            let i_aggr = terminal_current(solver, ac, aggressor)?;
            let i_victim = terminal_current(solver, ac, victim)?;
            for (name, i) in [(aggressor, i_aggr), (victim, i_victim)] {
                if !i.re.is_finite() || !i.im.is_finite() {
                    return Err(FvmError::NonFinite {
                        detail: format!(
                            "terminal '{name}' sums to a non-finite current at \
                             {} Hz: no coupling ratio is defined",
                            ac.frequency()
                        ),
                    });
                }
            }
            if i_aggr.abs() == 0.0 {
                return Err(FvmError::Configuration {
                    detail: format!(
                        "aggressor '{aggressor}' carries no current at {} Hz \
                         (open circuit / DC point): no coupling ratio is defined",
                        ac.frequency()
                    ),
                });
            }
            Ok((ac.frequency(), i_victim.abs() / i_aggr.abs()))
        })
        .collect()
}

/// Potential samples `(position, Re(V))` of all nodes lying on the plane
/// `axis = coordinate` (within `tolerance`), used to regenerate the
/// Fig. 2(b) potential map on the metal–semiconductor interface.
pub fn potential_slice(
    solver: &CoupledSolver<'_>,
    potential: &[Complex64],
    axis: Axis,
    coordinate: f64,
    tolerance: f64,
) -> Vec<([f64; 3], f64)> {
    let mesh = &solver.structure().mesh;
    let mut out = Vec::new();
    for node in mesh.node_ids() {
        let p = mesh.position(node);
        if (p[axis.as_usize()] - coordinate).abs() <= tolerance {
            out.push((p, potential[node.index()].re));
        }
    }
    out
}

/// DC potential samples on a plane (same convention as [`potential_slice`]).
pub fn dc_potential_slice(
    solver: &CoupledSolver<'_>,
    dc: &DcSolution,
    axis: Axis,
    coordinate: f64,
    tolerance: f64,
) -> Vec<([f64; 3], f64)> {
    let mesh = &solver.structure().mesh;
    let mut out = Vec::new();
    for node in mesh.node_ids() {
        let p = mesh.position(node);
        if (p[axis.as_usize()] - coordinate).abs() <= tolerance {
            out.push((p, dc.potential_at(node)));
        }
    }
    out
}

/// Sum of all terminal currents (A); should be close to zero by charge
/// conservation and is used as a sanity diagnostic.
pub fn current_balance(solver: &CoupledSolver<'_>, ac: &AcSolution) -> Result<Complex64, FvmError> {
    let mut total = Complex64::ZERO;
    for k in 0..solver.terminals().terminal_count() {
        let name = solver.terminals().name(k).to_string();
        total += terminal_current(solver, ac, &name)?;
    }
    Ok(total)
}

/// Convenience: positions of the nodes of a facet together with the real part
/// of the potential, for plotting roughness/field correlations.
pub fn facet_potentials(
    solver: &CoupledSolver<'_>,
    ac: &AcSolution,
    facet_nodes: &[NodeId],
) -> Vec<([f64; 3], f64)> {
    let mesh = &solver.structure().mesh;
    facet_nodes
        .iter()
        .map(|&n| (mesh.position(n), ac.potential_at(n).re))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoupledSolver, SolverOptions};
    use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
    use vaem_physics::DopingProfile;

    fn coarse_setup() -> (vaem_mesh::Structure, DopingProfile) {
        let s = build_metalplug_structure(&MetalPlugConfig::coarse());
        let semis = s.semiconductor_nodes();
        let doping = DopingProfile::uniform_donor(s.mesh.node_count(), &semis, 1.0e5);
        (s, doping)
    }

    #[test]
    fn interface_current_flows_between_the_plugs() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        let i1 = interface_current(&solver, &ac, "plug1").unwrap();
        let i2 = interface_current(&solver, &ac, "plug2").unwrap();
        assert!(i1.abs() > 0.0);
        assert!(i2.abs() > 0.0);
        // The driven plug sources current into the silicon; the grounded plug
        // and the ground plane sink it, so the two interface currents have
        // opposing orientation (negative real-part product).
        assert!(
            (i1 + i2).abs() <= i1.abs() + i2.abs(),
            "triangle inequality sanity"
        );
    }

    #[test]
    fn terminal_currents_balance_to_near_zero() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        let total = current_balance(&solver, &ac).unwrap();
        let i1 = terminal_current(&solver, &ac, "plug1").unwrap();
        assert!(
            total.abs() < 0.05 * i1.abs().max(1e-30),
            "imbalance {} vs terminal current {}",
            total.abs(),
            i1.abs()
        );
    }

    #[test]
    fn capacitance_column_has_positive_diagonal_and_negative_couplings() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let col = capacitance_column(&solver, &dc, "plug1", 1.0e6).unwrap();
        let c_self = col["plug1"];
        assert!(c_self > 0.0, "self capacitance {c_self}");
        assert!(col["plug2"] < 0.0, "coupling {}", col["plug2"]);
        assert!(c_self.abs() >= col["plug2"].abs());
    }

    #[test]
    fn capacitance_matrix_columns_match_per_terminal_solves() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let matrix = capacitance_matrix(&solver, &dc, 1.0e6).unwrap();
        assert_eq!(matrix.len(), solver.terminals().terminal_count());
        // The shared-factorization matrix must agree with the one-shot
        // column extraction for every driven terminal.
        for (driven, column) in &matrix {
            let reference = capacitance_column(&solver, &dc, driven, 1.0e6).unwrap();
            for (name, c) in column {
                let r = reference[name];
                assert!(
                    (c - r).abs() <= 1e-9 * r.abs().max(1e-20),
                    "C[{driven}][{name}] = {c} vs {r}"
                );
            }
        }
    }

    #[test]
    fn potential_slice_returns_interface_plane_nodes() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        let slice = potential_slice(&solver, &ac.potential, Axis::Z, 10.0, 1e-6);
        assert!(!slice.is_empty());
        for (p, _) in &slice {
            assert!((p[2] - 10.0).abs() < 1e-6);
        }
        let dc_slice = dc_potential_slice(&solver, &dc, Axis::Z, 10.0, 1e-6);
        assert_eq!(dc_slice.len(), slice.len());
    }

    #[test]
    fn impedance_spectrum_is_capacitive_over_the_sweep() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let frequencies = [1.0e8, 3.0e8, 1.0e9, 3.0e9];
        let mut op = solver.prepare_ac_sweep(&dc).unwrap();
        let sweep = op.sweep_terminal(&frequencies, "plug1").unwrap();
        let z = impedance_spectrum(&solver, &sweep, "plug1").unwrap();
        assert_eq!(z.len(), frequencies.len());
        for ((f, zf), freq) in z.iter().zip(frequencies.iter()) {
            assert!((f - freq).abs() < 1e-3 * freq);
            assert!(zf.abs().is_finite() && zf.abs() > 0.0);
        }
        // A mostly capacitive structure: |Z| falls as the frequency rises.
        assert!(
            z.first().unwrap().1.abs() > z.last().unwrap().1.abs(),
            "|Z| should decrease with frequency: {:?}",
            z.iter().map(|(f, v)| (*f, v.abs())).collect::<Vec<_>>()
        );
        let unknown = impedance_spectrum(&solver, &sweep, "nope");
        assert!(unknown.is_err());
    }

    #[test]
    fn dc_point_is_a_clear_error_for_capacitance_and_impedance() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        // A solution tagged ω = 0 (DC point of a sweep): the capacitance
        // entry Im(I)/ω is undefined there — it must be an error, not a
        // silent NaN poisoning the PCE moments downstream.
        let mut ac0 = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        ac0.omega = 0.0;
        match capacitance_column_from(&solver, &ac0) {
            Err(FvmError::Configuration { detail }) => {
                assert!(detail.contains("ω > 0"), "unexpected detail: {detail}")
            }
            other => panic!("expected configuration error, got {other:?}"),
        }
        // A healthy frequency still works.
        let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        assert!(capacitance_column_from(&solver, &ac).is_ok());
    }

    #[test]
    fn open_circuit_sweep_points_fail_instead_of_propagating_non_finite_z() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();

        // Zero current: every link admittance zeroed out.
        let mut open = ac.clone();
        for y in &mut open.link_admittance {
            *y = Complex64::ZERO;
        }
        match impedance_spectrum(&solver, std::slice::from_ref(&open), "plug1") {
            Err(FvmError::Configuration { detail }) => {
                assert!(detail.contains("no current"), "unexpected detail: {detail}")
            }
            other => panic!("expected configuration error, got {other:?}"),
        }

        // Sub-normal current: V / I overflows to a non-finite impedance
        // that used to slip through as `inf` — now a clear error.
        let mut tiny = ac.clone();
        for y in &mut tiny.link_admittance {
            *y = y.scale(1e-320 / y.abs().max(1e-300));
        }
        let z = impedance_spectrum(&solver, std::slice::from_ref(&tiny), "plug1");
        match z {
            Err(FvmError::Configuration { detail }) => assert!(
                detail.contains("open-circuit") || detail.contains("no current"),
                "unexpected detail: {detail}"
            ),
            Ok(z) => assert!(
                z.iter().all(|(_, v)| v.re.is_finite() && v.im.is_finite()),
                "non-finite impedance slipped through: {z:?}"
            ),
            Err(other) => panic!("expected configuration error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_terminal_current_names_the_terminal_and_index() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let mut ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        // Poison one potential: every terminal touching it sums to NaN.
        ac.potential[0] = Complex64::new(f64::NAN, 0.0);
        for y in &mut ac.link_admittance {
            *y = Complex64::new(f64::NAN, f64::NAN);
        }
        match capacitance_column_from(&solver, &ac) {
            Err(FvmError::NonFinite { detail }) => {
                assert!(
                    detail.contains("non-finite current") && detail.contains("index"),
                    "unexpected detail: {detail}"
                );
                assert!(
                    detail.contains('\''),
                    "terminal name missing from: {detail}"
                );
            }
            other => panic!("expected non-finite error, got {other:?}"),
        }
    }

    #[test]
    fn coupling_ratio_spectrum_is_bounded_and_guarded() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let frequencies = [1.0e8, 1.0e9, 1.0e10];
        let mut op = solver.prepare_ac_sweep(&dc).unwrap();
        let sweep = op.sweep_terminal(&frequencies, "plug1").unwrap();
        let ratios = coupling_ratio_spectrum(&solver, &sweep, "plug1", "plug2").unwrap();
        assert_eq!(ratios.len(), frequencies.len());
        for ((f, r), freq) in ratios.iter().zip(frequencies.iter()) {
            assert!((f - freq).abs() < 1e-3 * freq);
            assert!(r.is_finite() && *r > 0.0, "ratio {r} at {f} Hz");
            assert!(*r < 1.5, "victim cannot out-carry the aggressor: {r}");
        }
        assert!(coupling_ratio_spectrum(&solver, &sweep, "plug1", "nope").is_err());

        // A dead sweep point (zero currents) is an error, not a 0/0 NaN.
        let mut open = sweep[0].clone();
        for y in &mut open.link_admittance {
            *y = Complex64::ZERO;
        }
        match coupling_ratio_spectrum(&solver, std::slice::from_ref(&open), "plug1", "plug2") {
            Err(FvmError::Configuration { detail }) => {
                assert!(detail.contains("no current"), "unexpected detail: {detail}")
            }
            other => panic!("expected configuration error, got {other:?}"),
        }
    }

    #[test]
    fn facet_potentials_follow_facet_nodes() {
        let (s, doping) = coarse_setup();
        let solver = CoupledSolver::new(&s, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        let ac = solver.solve_ac(&dc, "plug1", 1.0e9).unwrap();
        let facet = s.facet("plug1_interface").unwrap();
        let vals = facet_potentials(&solver, &ac, &facet.nodes);
        assert_eq!(vals.len(), facet.nodes.len());
    }
}
