//! Error type of the coupled solver.

use std::fmt;
use vaem_sparse::SparseError;

/// Errors produced by the coupled FVM solver.
#[derive(Debug, Clone, PartialEq)]
pub enum FvmError {
    /// A linear solve inside the DC or AC stage failed.
    Linear(SparseError),
    /// The Newton iteration of the DC stage did not converge.
    NewtonDidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Final update norm (V).
        update_norm: f64,
    },
    /// The structure/configuration is inconsistent (unknown terminal, missing
    /// contact, empty mesh, ...).
    Configuration {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A computed quantity came out NaN/∞ — a poisoned solve that would
    /// otherwise silently corrupt every downstream statistic. Distinct from
    /// [`FvmError::Configuration`] so the analysis layer's failure taxonomy
    /// can count non-finite outcomes separately from genuine setup errors.
    NonFinite {
        /// Human-readable description of the poisoned quantity.
        detail: String,
    },
}

impl fmt::Display for FvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FvmError::Linear(e) => write!(f, "linear solver failure: {e}"),
            FvmError::NewtonDidNotConverge {
                iterations,
                update_norm,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} steps (last update {update_norm:.3e} V)"
            ),
            FvmError::Configuration { detail } => write!(f, "configuration error: {detail}"),
            FvmError::NonFinite { detail } => write!(f, "non-finite result: {detail}"),
        }
    }
}

impl std::error::Error for FvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FvmError::Linear(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for FvmError {
    fn from(e: SparseError) -> Self {
        FvmError::Linear(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FvmError::from(SparseError::ZeroPivot { index: 3 });
        assert!(e.to_string().contains("zero pivot"));
        assert!(std::error::Error::source(&e).is_some());
        let c = FvmError::Configuration {
            detail: "unknown terminal".to_string(),
        };
        assert!(c.to_string().contains("unknown terminal"));
    }
}
