//! Link coefficient helpers shared by the DC and AC assemblies.

use vaem_mesh::Material;
use vaem_numeric::Complex64;
use vaem_physics::MaterialTable;

/// Permittivity (F/µm) used for a link in the Gauss-law / Poisson assembly.
///
/// Bulk links take the harmonic mean of the endpoint permittivities (series
/// composition of the two half-cells); links touching a metal node use the
/// permittivity of the non-metal side, because the metal surface acts as the
/// boundary of the dielectric problem.
pub(crate) fn link_permittivity(a: Material, b: Material, table: &MaterialTable) -> f64 {
    let eps = |m: Material| table.properties(m).permittivity();
    match (a.is_metal(), b.is_metal()) {
        (true, true) => eps(Material::Insulator), // degenerate; not used by Poisson rows
        (true, false) => eps(b),
        (false, true) => eps(a),
        (false, false) => {
            let (ea, eb) = (eps(a), eps(b));
            2.0 * ea * eb / (ea + eb)
        }
    }
}

/// Complex admittivity `σ + jωε` (S/µm) of a node for the electro-quasi-static
/// AC assembly. `sigma_semi` is the local small-signal carrier conductivity
/// obtained from the DC operating point (zero for non-semiconductor nodes).
pub(crate) fn node_admittivity(
    material: Material,
    sigma_semi: f64,
    omega: f64,
    table: &MaterialTable,
) -> Complex64 {
    let props = table.properties(material);
    let sigma = match material {
        Material::Metal => props.conductivity,
        Material::Insulator => props.conductivity,
        Material::Semiconductor => props.conductivity + sigma_semi,
    };
    Complex64::new(sigma, omega * props.permittivity())
}

/// Series (harmonic-mean) composition of two node admittivities for a link.
pub(crate) fn link_admittivity(ya: Complex64, yb: Complex64) -> Complex64 {
    let sum = ya + yb;
    if sum.abs() < 1e-300 {
        Complex64::ZERO
    } else {
        Complex64::from_real(2.0) * ya * yb / sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_physics::constants;

    #[test]
    fn bulk_link_permittivity_is_harmonic_mean() {
        let t = MaterialTable::default();
        let e = link_permittivity(Material::Insulator, Material::Semiconductor, &t);
        let ei = constants::VACUUM_PERMITTIVITY * constants::OXIDE_REL_PERMITTIVITY;
        let es = constants::VACUUM_PERMITTIVITY * constants::SILICON_REL_PERMITTIVITY;
        assert!((e - 2.0 * ei * es / (ei + es)).abs() < 1e-30);
        // Same-material link reduces to the material permittivity.
        let same = link_permittivity(Material::Semiconductor, Material::Semiconductor, &t);
        assert!((same - es).abs() < 1e-30);
    }

    #[test]
    fn metal_interface_uses_dielectric_side() {
        let t = MaterialTable::default();
        let e = link_permittivity(Material::Metal, Material::Semiconductor, &t);
        let es = constants::VACUUM_PERMITTIVITY * constants::SILICON_REL_PERMITTIVITY;
        assert!((e - es).abs() < 1e-30);
    }

    #[test]
    fn admittivity_combines_conduction_and_displacement() {
        let t = MaterialTable::default();
        let omega = 2.0 * std::f64::consts::PI * 1.0e9;
        let metal = node_admittivity(Material::Metal, 0.0, omega, &t);
        assert!(metal.re > 1.0);
        let ins = node_admittivity(Material::Insulator, 0.0, omega, &t);
        assert_eq!(ins.re, 0.0);
        assert!(ins.im > 0.0);
        let semi = node_admittivity(Material::Semiconductor, 1e-3, omega, &t);
        assert!((semi.re - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn series_composition_is_dominated_by_the_weaker_side() {
        let strong = Complex64::new(58.0, 0.0);
        let weak = Complex64::new(0.0, 1e-7);
        let y = link_admittivity(strong, weak);
        assert!(y.abs() < 3.0e-7);
        assert_eq!(
            link_admittivity(Complex64::ZERO, Complex64::ZERO),
            Complex64::ZERO
        );
    }
}
