//! Frequency-domain (AC small-signal) solution container.

use vaem_mesh::{LinkId, NodeId};
use vaem_numeric::Complex64;

/// Result of the frequency-domain coupled solve.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSolution {
    /// Complex node potentials (V) for the applied excitation.
    pub potential: Vec<Complex64>,
    /// Complex link admittance factors `y·g` (S) actually used in the
    /// assembly, kept so post-processing computes currents consistently with
    /// the discretization.
    pub link_admittance: Vec<Complex64>,
    /// Magnetic vector potential on the links (Wb/µm), present only when the
    /// solver ran in full-wave mode.
    pub vector_potential: Option<Vec<Complex64>>,
    /// Angular frequency ω (rad/s) of the solve.
    pub omega: f64,
    /// Name of the driven terminal.
    pub driven_terminal: String,
    /// Linear-solver strategy that produced the solution.
    pub solver_strategy: &'static str,
    /// Relative residual reported by the linear solver.
    pub linear_residual: f64,
}

impl AcSolution {
    /// Complex potential at a node.
    #[inline]
    pub fn potential_at(&self, node: NodeId) -> Complex64 {
        self.potential[node.index()]
    }

    /// Link admittance (`y·dual_area/length`, in S) used in the assembly.
    #[inline]
    pub fn admittance_at(&self, link: LinkId) -> Complex64 {
        self.link_admittance[link.index()]
    }

    /// Vector potential on a link, if the solve included the A block.
    pub fn vector_potential_at(&self, link: LinkId) -> Option<Complex64> {
        self.vector_potential.as_ref().map(|a| a[link.index()])
    }

    /// Frequency in Hz.
    pub fn frequency(&self) -> f64 {
        self.omega / (2.0 * std::f64::consts::PI)
    }
}
