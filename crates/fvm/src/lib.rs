//! Coupled electromagnetic–semiconductor finite-volume solver.
//!
//! This crate implements the deterministic "A–V solver" substrate of the
//! paper (Section II.A): the structure is meshed into (possibly perturbed)
//! cubes, the scalar potential `V` and the carrier densities live on the
//! nodes, the vector potential `A` on the links, and the discretized
//! Gauss / current-continuity / carrier-continuity / Ampère equations are
//! solved for the hybrid metal–insulator–semiconductor structure.
//!
//! Organisation:
//!
//! * [`terminals`] — labels every metal node with the terminal (contact) that
//!   reaches it through metal links.
//! * [`DcSolution`] / [`CoupledSolver::solve_dc`] — nonlinear Poisson
//!   equilibrium solve (Newton–Raphson with damping, the nonlinearity coming
//!   from the Boltzmann carrier statistics), producing the DC operating
//!   point: node potentials and carrier densities.
//! * [`AcSolution`] / [`CoupledSolver::solve_ac`] — frequency-domain coupled
//!   solve around the operating point ([`CoupledSolver::prepare_ac`] returns
//!   an [`AcOperator`] that factorizes once and solves every terminal
//!   excitation against the cached factorization). The default
//!   [`EmMode::ElectroQuasiStatic`] solves the complex potential equation
//!   with the full admittivity `σ + jωε` (metal conduction, dielectric
//!   displacement, semiconductor small-signal conduction); the
//!   [`EmMode::FullWave`] mode additionally carries the vector-potential
//!   block of eq. (3) on the links.
//! * [`postprocess`] — terminal currents, interface currents (Table I),
//!   capacitance matrix columns (Table II), and potential maps on cross
//!   sections (Fig. 2b).
//!
//! # Example
//!
//! ```
//! use vaem_fvm::{CoupledSolver, SolverOptions};
//! use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
//! use vaem_physics::DopingProfile;
//!
//! let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
//! let semis = structure.semiconductor_nodes();
//! let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);
//! let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default())?;
//! let dc = solver.solve_dc()?;
//! let ac = solver.solve_ac(&dc, "plug1", 1.0e9)?;
//! let current = vaem_fvm::postprocess::interface_current(&solver, &ac, "plug1")?;
//! assert!(current.abs() > 0.0);
//! # Ok::<(), vaem_fvm::FvmError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ac;
mod coefficients;
mod dc;
mod error;
pub mod postprocess;
mod solver;
pub mod terminals;

pub use ac::AcSolution;
pub use dc::DcSolution;
pub use error::FvmError;
pub use solver::{
    AcOperator, AcSweepOperator, CoupledSolver, EmMode, SeedReuseStats, SolverOptions,
    SolverTopology,
};
