//! The variational analysis workflow (nominal solve → weights → reduction →
//! SSCM + Monte Carlo).
//!
//! The SSCM collocation points and the Monte-Carlo reference runs are
//! independent deterministic solves; both stages fan out over
//! [`vaem_parallel::par_map`] worker threads (`VAEM_THREADS`, hardware
//! default). Every Monte-Carlo run draws from its own RNG stream seeded by
//! `(config.seed, run index)`, so the results are bit-for-bit identical for
//! any thread count.

use crate::config::{AnalysisConfig, QuantitySet, ReductionMethod};
use crate::health::{classify, HealthReport, QuarantinedSample, RecoveredSample, SampleStage};
use crate::report::ComparisonTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use vaem_fvm::{
    postprocess, AcSolution, CoupledSolver, DcSolution, FvmError, SeedReuseStats, SolverOptions,
    SolverTopology,
};
use vaem_mesh::{MeshError, NodeId, Structure};
use vaem_numeric::dense::DMatrix;
use vaem_numeric::stats::RunningStats;
use vaem_numeric::NumericError;
use vaem_parallel::faults::{self, FaultPlan, FaultSite, FaultStage};
use vaem_parallel::{par_map, par_map_indices, par_map_mut};
use vaem_physics::DopingProfile;
use vaem_sparse::SolverKind;
use vaem_stochastic::{SparseCollocation, SummaryStats};
use vaem_variation::{
    apply_roughness, covariance_matrix, standard_normal_vector, CorrelationKernel,
    FacetPerturbation, FullRankGaussian, Pfa, VariableReduction, Wpfa,
};

/// Derives the RNG seed of one Monte-Carlo run from the base seed and the
/// run index.
///
/// Each run owns an independent generator, so runs can be evaluated in any
/// order — and on any number of threads — without changing the sampled
/// ensemble. The odd multiplier makes the map `run ↦ seed` a bijection for a
/// fixed base; `StdRng::seed_from_u64` scrambles the sequential values into
/// decorrelated streams.
fn mc_run_seed(base: u64, run: u64) -> u64 {
    base.wrapping_add(run.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Errors of the analysis workflow.
#[derive(Debug)]
pub enum AnalysisError {
    /// The deterministic coupled solver failed.
    Solver(FvmError),
    /// A dense numerical kernel (reduction, chaos fit) failed.
    Numeric(NumericError),
    /// The configuration references missing facets/terminals or is empty.
    Configuration(String),
    /// A (perturbed) sample geometry was impossible to mesh.
    Mesh(MeshError),
    /// More samples were quarantined than
    /// [`AnalysisConfig::quarantine_budget`] tolerates; the surviving
    /// statistics would no longer be trustworthy.
    QuarantineExceeded {
        /// Samples whose recovery retry also failed.
        quarantined: usize,
        /// Total samples attempted (nominal + collocation + Monte Carlo).
        total: usize,
        /// The configured budget (fraction of `total`).
        budget: f64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Solver(e) => write!(f, "deterministic solver failed: {e}"),
            AnalysisError::Numeric(e) => write!(f, "numerical kernel failed: {e}"),
            AnalysisError::Configuration(d) => write!(f, "configuration error: {d}"),
            AnalysisError::Mesh(e) => write!(f, "sample geometry failed: {e}"),
            AnalysisError::QuarantineExceeded {
                quarantined,
                total,
                budget,
            } => write!(
                f,
                "quarantined {quarantined} of {total} samples, exceeding the budget of {:.0}%",
                budget * 100.0
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<FvmError> for AnalysisError {
    fn from(e: FvmError) -> Self {
        AnalysisError::Solver(e)
    }
}

impl From<NumericError> for AnalysisError {
    fn from(e: NumericError) -> Self {
        AnalysisError::Numeric(e)
    }
}

impl From<MeshError> for AnalysisError {
    fn from(e: MeshError) -> Self {
        AnalysisError::Mesh(e)
    }
}

/// Statistics of one output quantity: SSCM vs Monte-Carlo, as in the paper's
/// tables.
#[derive(Debug, Clone)]
pub struct QuantityResult {
    /// Output label (e.g. `"J(plug1) [uA]"`, `"C_tsv1,tsv2 [fF]"`).
    pub label: String,
    /// Deterministic (nominal-geometry, nominal-doping) value.
    pub nominal: f64,
    /// SSCM estimate.
    pub sscm: SummaryStats,
    /// Monte-Carlo reference.
    pub monte_carlo: SummaryStats,
    /// First-order Sobol main effect of every reduced dimension (in
    /// reduction order, concatenated over the groups): the fraction of this
    /// quantity's PCE variance explained by that dimension alone. Empty when
    /// the quantity was not produced by the SSCM stage.
    pub main_effects: Vec<f64>,
}

impl QuantityResult {
    /// Relative error of the SSCM mean against the MC mean.
    pub fn mean_error(&self) -> f64 {
        vaem_numeric::stats::relative_error(self.sscm.mean, self.monte_carlo.mean, 1e-30)
    }

    /// Relative error of the SSCM standard deviation against the MC one.
    pub fn std_error(&self) -> f64 {
        vaem_numeric::stats::relative_error(self.sscm.std, self.monte_carlo.std, 1e-30)
    }
}

/// Variable-reduction summary for one variation group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupReduction {
    /// Group name (facet group or `"doping"`).
    pub name: String,
    /// Number of correlated variables before reduction.
    pub full_dim: usize,
    /// Number of independent factors after reduction.
    pub reduced_dim: usize,
}

/// Full result of a variational analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Per-quantity statistics.
    pub quantities: Vec<QuantityResult>,
    /// Variable-reduction summary per group.
    pub reductions: Vec<GroupReduction>,
    /// Number of deterministic solves used by the SSCM stage.
    pub collocation_runs: usize,
    /// Number of Monte-Carlo samples.
    pub mc_runs: usize,
    /// Wall-clock seconds of the SSCM stage (including the nominal solve).
    pub sscm_seconds: f64,
    /// Wall-clock seconds of the Monte-Carlo stage.
    pub mc_seconds: f64,
    /// Cross-sample symbolic-reuse statistics: whether the nominal solve
    /// published DC/AC donor factorizations and how many samples had to
    /// re-pivot because the donor's pivot sequence went numerically stale
    /// for their perturbed values.
    pub seed_reuse: SeedReuseStats,
    /// Containment record of the run: quarantined/recovered samples and the
    /// failure taxonomy counts. All-empty for a fully healthy run.
    pub health: HealthReport,
}

impl AnalysisResult {
    /// Speed-up of SSCM over Monte Carlo (wall-clock).
    pub fn speedup(&self) -> f64 {
        if self.sscm_seconds > 0.0 {
            self.mc_seconds / self.sscm_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Renders the result as a paper-style comparison table.
    pub fn table(&self) -> ComparisonTable {
        ComparisonTable::from_result(self)
    }

    /// Total number of reduced random variables.
    pub fn total_reduced_dim(&self) -> usize {
        self.reductions.iter().map(|g| g.reduced_dim).sum()
    }

    /// Sums one quantity's first-order main effects over the reduced
    /// dimensions of each variation group, answering "which variation source
    /// dominates this output". Returns `(group name, summed Sobol fraction)`
    /// in group order; fractions below 1 leave room for higher-order and
    /// cross-group interaction terms.
    pub fn group_main_effects(&self, quantity: usize) -> Vec<(String, f64)> {
        let effects = &self.quantities[quantity].main_effects;
        let mut out = Vec::with_capacity(self.reductions.len());
        let mut offset = 0;
        for group in &self.reductions {
            let end = (offset + group.reduced_dim).min(effects.len());
            let sum = effects[offset.min(end)..end].iter().sum();
            out.push((group.name.clone(), sum));
            offset += group.reduced_dim;
        }
        out
    }
}

/// One output quantity across a frequency grid (see
/// [`VariationalAnalysis::run_frequency_sweep`]).
#[derive(Debug, Clone)]
pub struct SweepQuantity {
    /// Output label (e.g. `"J(plug1) [uA]"`).
    pub label: String,
    /// Deterministic (nominal-geometry, nominal-doping) value per frequency.
    pub nominal: Vec<f64>,
    /// SSCM-propagated statistics per frequency.
    pub sscm: Vec<SummaryStats>,
}

/// Result of a swept-frequency variational analysis: the configured output
/// quantities — capacitance entries or interface currents — resolved over a
/// frequency grid, with SSCM statistics per grid point.
#[derive(Debug, Clone)]
pub struct FrequencySweepResult {
    /// The swept frequency grid (Hz), in input order.
    pub frequencies: Vec<f64>,
    /// Per-quantity spectra.
    pub quantities: Vec<SweepQuantity>,
    /// Variable-reduction summary per group.
    pub reductions: Vec<GroupReduction>,
    /// Number of deterministic sample sweeps used by the SSCM stage.
    pub collocation_runs: usize,
    /// Wall-clock seconds of the whole sweep (nominal + collocation).
    pub seconds: f64,
    /// Cross-sample symbolic-reuse statistics (see
    /// [`AnalysisResult::seed_reuse`]).
    pub seed_reuse: SeedReuseStats,
    /// Containment record of the sweep (see [`AnalysisResult::health`]).
    pub health: HealthReport,
}

impl FrequencySweepResult {
    /// Total number of deterministic linear AC solves performed
    /// (`(collocation runs + nominal) × grid points`).
    pub fn ac_solve_count(&self) -> usize {
        (self.collocation_runs + 1) * self.frequencies.len()
    }
}

/// Options of the error-controlled adaptive frequency sweep
/// ([`VariationalAnalysis::run_adaptive_frequency_sweep`]).
#[derive(Debug, Clone)]
pub struct AdaptiveSweepOptions {
    /// Relative tolerance of the refinement indicator: an interior grid
    /// point whose computed spectra (nominal, SSCM mean **and** SSCM std)
    /// deviate from the log-frequency interpolation of its neighbours by
    /// more than this fraction of the local spectrum scale flags both
    /// adjacent intervals for bisection. Overridable from the `ac_sweep`
    /// binary via `VAEM_SWEEP_TOL`.
    pub rel_tolerance: f64,
    /// Hard ceiling on the total number of grid points (coarse + refined).
    /// When a wave would exceed it, only the worst-indicator midpoints are
    /// inserted and the result is marked
    /// [`AdaptiveSweepResult::budget_exhausted`].
    pub max_points: usize,
    /// Maximum bisection generations per initial coarse interval.
    pub max_depth: usize,
}

impl Default for AdaptiveSweepOptions {
    fn default() -> Self {
        Self {
            rel_tolerance: 0.02,
            max_points: 96,
            max_depth: 6,
        }
    }
}

/// Where one grid point of an adaptive sweep came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointOrigin {
    /// Member of the caller-supplied coarse grid.
    Coarse,
    /// Midpoint inserted by refinement wave `wave` (1-based), `depth`
    /// bisection generations below the coarse grid.
    Refined {
        /// Refinement wave (1-based) that inserted the point.
        wave: usize,
        /// Bisection depth of the point (coarse points are depth 0).
        depth: usize,
    },
}

impl PointOrigin {
    /// Bisection depth of the point (0 for coarse grid members).
    pub fn depth(&self) -> usize {
        match self {
            PointOrigin::Coarse => 0,
            PointOrigin::Refined { depth, .. } => *depth,
        }
    }
}

/// Result of an adaptive frequency sweep: a [`FrequencySweepResult`] over
/// the refined grid (frequencies ascending) plus per-point provenance.
#[derive(Debug, Clone)]
pub struct AdaptiveSweepResult {
    /// The spectra over the final (refined) grid, ascending in frequency.
    pub sweep: FrequencySweepResult,
    /// Provenance of each grid point, parallel to `sweep.frequencies`.
    pub origins: Vec<PointOrigin>,
    /// Number of refinement waves that inserted points.
    pub waves: usize,
    /// The point budget cut refinement short: some flagged intervals were
    /// left unsplit.
    pub budget_exhausted: bool,
}

impl AdaptiveSweepResult {
    /// Number of points the refinement added on top of the coarse grid.
    pub fn refined_point_count(&self) -> usize {
        self.origins
            .iter()
            .filter(|o| matches!(o, PointOrigin::Refined { .. }))
            .count()
    }

    /// Total number of deterministic linear AC solves performed (see
    /// [`FrequencySweepResult::ac_solve_count`]); refinement points cost
    /// exactly as much as coarse grid points.
    pub fn ac_solve_count(&self) -> usize {
        self.sweep.ac_solve_count()
    }
}

/// Persistent per-sample solver state of an adaptive sweep: the perturbed
/// problem is built once and the DC operating point is solved once (first
/// wave); every later refinement wave only re-prepares the AC sweep
/// operator against the shared topology and pays a numeric refactorization
/// plus a warm-started solve per new point.
struct SampleState {
    structure: Structure,
    doping: DopingProfile,
    dc: Option<DcSolution>,
}

/// One grid point of the adaptive refinement loop (the bisection depth
/// lives on the origin).
struct PointRecord {
    frequency: f64,
    origin: PointOrigin,
    /// Nominal outputs, one per quantity.
    nominal: Vec<f64>,
    /// SSCM means, one per quantity.
    mean: Vec<f64>,
    /// SSCM standard deviations, one per quantity.
    std: Vec<f64>,
}

/// Monotone interpolation coordinate of the refinement indicator:
/// logarithmic above 1 Hz, linear below, continuous at the seam — so grids
/// that include the DC point stay usable.
fn freq_coord(f: f64) -> f64 {
    if f > 1.0 {
        1.0 + f.ln()
    } else {
        f
    }
}

/// Geometric midpoint for positive endpoints (log-uniform bisection),
/// arithmetic when the interval touches f = 0.
fn midpoint_frequency(lo: f64, hi: f64) -> f64 {
    if lo > 0.0 {
        (lo * hi).sqrt()
    } else {
        0.5 * (lo + hi)
    }
}

/// Interpolation-defect refinement indicator at the middle of three
/// neighbouring grid points: how far the computed nominal spectrum, the
/// SSCM mean and the SSCM std at `mid` deviate from the log-frequency
/// linear interpolation between `lo` and `hi`, relative to the local
/// spectrum scale, worst case over the quantities. The std term weights
/// the indicator by the per-point PCE uncertainty: where the variation
/// band itself curves, the grid refines even if the nominal curve looks
/// smooth.
fn refinement_indicator(lo: &PointRecord, mid: &PointRecord, hi: &PointRecord) -> f64 {
    let (xl, xm, xh) = (
        freq_coord(lo.frequency),
        freq_coord(mid.frequency),
        freq_coord(hi.frequency),
    );
    // Grid frequencies are validated finite and strictly increasing, so
    // the coordinate span is finite; a degenerate one yields no indicator.
    let span = xh - xl;
    if span <= 0.0 {
        return 0.0;
    }
    let t = (xm - xl) / span;
    let lerp = |a: f64, b: f64| a + t * (b - a);
    let mut worst = 0.0_f64;
    for q in 0..mid.nominal.len() {
        let scale = lo.nominal[q]
            .abs()
            .max(mid.nominal[q].abs())
            .max(hi.nominal[q].abs())
            .max(lo.mean[q].abs())
            .max(mid.mean[q].abs())
            .max(hi.mean[q].abs())
            .max(1e-300);
        let defect = (mid.nominal[q] - lerp(lo.nominal[q], hi.nominal[q])).abs()
            + (mid.mean[q] - lerp(lo.mean[q], hi.mean[q])).abs()
            + (mid.std[q] - lerp(lo.std[q], hi.std[q])).abs();
        worst = worst.max(defect / scale);
    }
    worst
}

/// Accumulates a flagged interval (identified by the index of its left
/// endpoint), keeping the worst indicator that flagged it.
fn flag_interval(flagged: &mut Vec<(usize, f64)>, left: usize, indicator: f64) {
    if let Some(slot) = flagged.iter_mut().find(|(l, _)| *l == left) {
        slot.1 = slot.1.max(indicator);
    } else {
        flagged.push((left, indicator));
    }
}

/// Per-group reductions plus their summaries.
type GroupReductions = (Vec<Box<dyn VariableReduction>>, Vec<GroupReduction>);

/// The inputs of one deterministic evaluation: facet offsets plus doping
/// perturbations.
#[derive(Debug, Clone, Default)]
struct SampleInput {
    facet_offsets: Vec<(String, Vec<f64>)>,
    doping_deltas: Vec<(NodeId, f64)>,
}

/// One group of correlated variation variables.
struct VariationGroup {
    name: String,
    kind: GroupKind,
    covariance: DMatrix<f64>,
}

enum GroupKind {
    /// Geometry group: perturbs the listed facets; `slices[i]` is the range of
    /// the group's variable vector belonging to facet `facet_names[i]`.
    Geometry {
        facet_names: Vec<String>,
        slices: Vec<(usize, usize)>,
        nodes: Vec<NodeId>,
    },
    /// Doping group over the listed semiconductor nodes.
    Doping { nodes: Vec<NodeId> },
    /// Scalar per-via parameter group (TSV-array radius/position): each of
    /// the few Gaussian parameters moves whole wall facets rigidly. Per
    /// facet: name, node count, and the signed weight every parameter
    /// contributes to the wall's uniform normal offset.
    ViaParams {
        facets: Vec<(String, usize, Vec<f64>)>,
        params: usize,
    },
}

impl VariationGroup {
    fn dim(&self) -> usize {
        match &self.kind {
            GroupKind::Geometry { nodes, .. } => nodes.len(),
            GroupKind::Doping { nodes } => nodes.len(),
            GroupKind::ViaParams { params, .. } => *params,
        }
    }

    fn nodes(&self) -> &[NodeId] {
        match &self.kind {
            GroupKind::Geometry { nodes, .. } => nodes,
            GroupKind::Doping { nodes } => nodes,
            // Scalar parameters have no per-node influence weights: the
            // reduction falls back to plain PFA, which is exact for the
            // tiny diagonal covariance of the group.
            GroupKind::ViaParams { .. } => &[],
        }
    }
}

/// The paper's workflow bound to one structure and configuration.
pub struct VariationalAnalysis {
    structure: Structure,
    config: AnalysisConfig,
}

impl VariationalAnalysis {
    /// Creates an analysis for a structure.
    pub fn new(structure: Structure, config: AnalysisConfig) -> Self {
        Self { structure, config }
    }

    /// The analysed structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The analysis configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Nominal doping profile (uniform donor concentration over the
    /// semiconductor region).
    pub fn nominal_doping(&self) -> DopingProfile {
        let semis = self.structure.semiconductor_nodes();
        DopingProfile::uniform_donor(
            self.structure.mesh.node_count(),
            &semis,
            self.config.nominal_donor,
        )
    }

    /// Evaluates the deterministic model for one realisation of the
    /// variations.
    ///
    /// `facet_offsets` maps facet names to per-node normal offsets;
    /// `doping_deltas` holds relative donor perturbations per node.
    ///
    /// # Errors
    /// Propagates deterministic-solver failures.
    pub fn evaluate_sample(
        &self,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
    ) -> Result<Vec<f64>, AnalysisError> {
        let topology = Arc::new(SolverTopology::build(&self.structure)?);
        self.evaluate_sample_with(
            &topology,
            facet_offsets,
            doping_deltas,
            self.sample_solver_options(),
        )
    }

    /// Builds the perturbed structure and doping profile of one sample.
    // vaem-lint: cold per-sample problem construction (mesh, doping, topology)
    fn sample_problem(
        &self,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
    ) -> Result<(Structure, DopingProfile), AnalysisError> {
        if faults::armed(FaultSite::Mesh) {
            return Err(AnalysisError::Mesh(MeshError::DegenerateConfig {
                detail: "injected fault at site 'mesh'".to_string(),
            }));
        }
        // Perturbed geometry (positions only — the mesh topology is
        // invariant, which is what lets samples share a `SolverTopology`).
        let mut structure = self.structure.clone();
        if !facet_offsets.is_empty() {
            let model = self
                .config
                .variations
                .roughness
                .as_ref()
                .map(|r| r.model)
                .unwrap_or_default();
            let perturbations: Vec<FacetPerturbation<'_>> = facet_offsets
                .iter()
                .map(|(name, offsets)| {
                    let facet = self.structure.facet(name).ok_or_else(|| {
                        AnalysisError::Configuration(format!("unknown facet '{name}'"))
                    })?;
                    Ok(FacetPerturbation::new(facet, offsets.clone()))
                })
                .collect::<Result<_, AnalysisError>>()?;
            apply_roughness(&mut structure.mesh, model, &perturbations);
        }

        // Perturbed doping.
        let doping = self.nominal_doping().perturbed(doping_deltas);
        Ok((structure, doping))
    }

    /// Solver options for the perturbed-sample workers: identical to the
    /// configured options except that samples never *publish* symbolic
    /// donors onto the shared topology. The nominal solve (run before the
    /// fan-out) is the single designated donor, so which pivot sequence
    /// seeds the sweep can never depend on worker timing.
    fn sample_solver_options(&self) -> SolverOptions {
        SolverOptions {
            publish_symbolic: false,
            ..self.config.solver.clone()
        }
    }

    /// Solver options of the single deterministic recovery retry a failed
    /// sample gets before being quarantined: escalate to the direct LU
    /// strategy and drop the donor factorizations, removing every
    /// optimization that can itself be the failure (stale pivots, a broken
    /// ILU, a non-converging Krylov chain). Publishing stays off — a
    /// recovery solve must never become the donor for healthy samples.
    fn recovery_solver_options(&self) -> SolverOptions {
        SolverOptions {
            publish_symbolic: false,
            reuse_symbolic: false,
            linear_solver: SolverKind::DirectLu,
            ..self.config.solver.clone()
        }
    }

    /// [`VariationalAnalysis::evaluate_sample`] against a shared
    /// [`SolverTopology`] (terminal labelling, adjacency and sparsity
    /// patterns built once per analysis, not once per sample).
    fn evaluate_sample_with(
        &self,
        topology: &Arc<SolverTopology>,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
        options: SolverOptions,
    ) -> Result<Vec<f64>, AnalysisError> {
        let (structure, doping) = self.sample_problem(facet_offsets, doping_deltas)?;
        // vaem-lint: allow(H2) Arc refcount bump handing the shared topology to the solver
        let solver = CoupledSolver::with_topology(&structure, &doping, options, topology.clone())?;
        let dc = solver.solve_dc()?;
        self.extract_outputs(&solver, &dc)
    }

    /// Evaluates one sample across a whole frequency grid with the
    /// sweep-aware AC operator (one assembly + symbolic factorization, a
    /// numeric refactorization per point, warm-started solves).
    ///
    /// Returns the outputs flattened frequency-major:
    /// `[f0 q0, f0 q1, ..., f1 q0, ...]`.
    fn evaluate_spectrum_with(
        &self,
        topology: &Arc<SolverTopology>,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
        frequencies: &[f64],
        options: SolverOptions,
    ) -> Result<Vec<f64>, AnalysisError> {
        let (structure, doping) = self.sample_problem(facet_offsets, doping_deltas)?;
        // vaem-lint: allow(H2) Arc refcount bump handing the shared topology to the solver
        let solver = CoupledSolver::with_topology(&structure, &doping, options, topology.clone())?;
        let dc = solver.solve_dc()?;
        let mut operator = solver.prepare_ac_sweep(&dc)?;
        let sweep = operator.sweep_terminal(frequencies, self.driven_terminal())?;
        // vaem-lint: allow(H1) per-sample output buffer, sized once per evaluation
        let mut out = Vec::with_capacity(frequencies.len() * self.config.quantities.len());
        for ac in &sweep {
            out.extend(self.extract_outputs_from(&solver, ac)?);
        }
        Ok(out)
    }

    /// Evaluates one persistent sample state over a list of frequencies
    /// (one refinement wave): the DC operating point is solved on the first
    /// call and cached; every call re-prepares the AC sweep operator
    /// against the shared topology (seeded symbolic phase) and pays a
    /// numeric refactorization plus a warm-started solve per point.
    ///
    /// Returns the outputs flattened frequency-major, like
    /// [`VariationalAnalysis::evaluate_spectrum_with`]; for a fresh state
    /// and the same grid the two paths produce bit-identical outputs.
    fn evaluate_state(
        &self,
        topology: &Arc<SolverTopology>,
        state: &mut SampleState,
        frequencies: &[f64],
        options: SolverOptions,
    ) -> Result<Vec<f64>, AnalysisError> {
        let solver = CoupledSolver::with_topology(
            &state.structure,
            &state.doping,
            options,
            // vaem-lint: allow(H2) Arc refcount bump handing the shared topology to the solver
            topology.clone(),
        )?;
        // Take the cached DC operating point (solving it on the first call)
        // and put it back once the sweep operator holds its own data; a
        // failed DC solve leaves the cache empty, so a recovery retry
        // re-solves instead of trusting a poisoned operating point.
        let dc = match state.dc.take() {
            Some(dc) => dc,
            None => solver.solve_dc()?,
        };
        let operator = solver.prepare_ac_sweep(&dc);
        state.dc = Some(dc);
        let mut operator = operator?;
        // vaem-lint: allow(H1) per-sample output buffer, sized once per evaluation
        let mut out = Vec::with_capacity(frequencies.len() * self.config.quantities.len());
        for &frequency in frequencies {
            let ac = operator.solve_at(frequency, self.driven_terminal())?;
            out.extend(self.extract_outputs_from(&solver, &ac)?);
        }
        Ok(out)
    }

    /// Installs the fault-injection scope for one per-sample evaluation
    /// when a plan is active (`None` plan → no scope, zero overhead). The
    /// guard is created inside the worker closure keyed by the sample
    /// index, so injection is independent of worker timing.
    fn fault_scope(
        plan: &Option<Arc<FaultPlan>>,
        stage: FaultStage,
        index: usize,
        attempt: u32,
    ) -> Option<faults::ScopeGuard> {
        plan.as_ref()
            // vaem-lint: allow(H2) Arc refcount bump installing the fault scope
            .map(|p| faults::scope(p.clone(), stage, index, attempt))
    }

    /// Runs the nominal evaluation with containment: one recovery retry
    /// with the escalated solver options on failure. A nominal failure that
    /// survives the retry is fatal — every downstream stage (weights,
    /// reduction, quarantine patching) needs the nominal solution.
    fn contain_nominal<T>(
        &self,
        health: &mut HealthReport,
        plan: &Option<Arc<FaultPlan>>,
        first_options: SolverOptions,
        mut eval: impl FnMut(SolverOptions) -> Result<T, AnalysisError>,
    ) -> Result<T, AnalysisError> {
        let first = {
            let _guard = Self::fault_scope(plan, FaultStage::Nominal, 0, 0);
            eval(first_options)
        };
        match first {
            Ok(value) => Ok(value),
            Err(first) => {
                let kind = classify(&first);
                health.counts.record(kind);
                let retry = {
                    let _guard = Self::fault_scope(plan, FaultStage::Nominal, 0, 1);
                    eval(self.recovery_solver_options())
                };
                match retry {
                    Ok(value) => {
                        health.recovered.push(RecoveredSample {
                            stage: SampleStage::Nominal,
                            index: 0,
                            kind,
                        });
                        Ok(value)
                    }
                    Err(second) => Err(second),
                }
            }
        }
    }

    /// Resolves one fan-out's per-sample outcomes at its deterministic
    /// barrier: every failed sample gets a single serial recovery retry
    /// (the `retry` closure — escalated solver, fresh fault scope at
    /// attempt 1); samples whose retry also fails are quarantined and
    /// yield `None`. Quarantines, recoveries and taxonomy counts land on
    /// `health` in ascending sample order — never in worker-timing order —
    /// so the report is bit-identical for any thread count.
    fn contain_stage(
        health: &mut HealthReport,
        stage: SampleStage,
        attempts: Vec<Result<Vec<f64>, AnalysisError>>,
        mut retry: impl FnMut(usize) -> Result<Vec<f64>, AnalysisError>,
    ) -> Vec<Option<Vec<f64>>> {
        attempts
            .into_iter()
            .enumerate()
            .map(|(index, attempt)| match attempt {
                Ok(outputs) => Some(outputs),
                Err(first) => {
                    let kind = classify(&first);
                    health.counts.record(kind);
                    match retry(index) {
                        Ok(outputs) => {
                            health
                                .recovered
                                .push(RecoveredSample { stage, index, kind });
                            Some(outputs)
                        }
                        Err(second) => {
                            health.quarantined.push(QuarantinedSample {
                                stage,
                                index,
                                kind: classify(&second),
                                detail: second.to_string(),
                            });
                            None
                        }
                    }
                }
            })
            .collect()
    }

    /// Fails the run once the quarantine count exceeds the configured
    /// fraction of the attempted samples. Checked at the stage barriers —
    /// quarantine counts only grow, so the first check that trips aborts.
    fn check_quarantine_budget(&self, health: &HealthReport) -> Result<(), AnalysisError> {
        let quarantined = health.quarantined.len();
        let allowed = self.config.quarantine_budget * health.samples_total as f64;
        if quarantined > 0 && quarantined as f64 > allowed {
            return Err(AnalysisError::QuarantineExceeded {
                quarantined,
                total: health.samples_total,
                budget: self.config.quarantine_budget,
            });
        }
        Ok(())
    }

    /// [`VariationalAnalysis::contain_stage`] for one adaptive-sweep wave:
    /// failed samples get their serial recovery retry against the
    /// persistent [`SampleState`] and are **escalated** — all later waves
    /// evaluate them with the recovery solver at attempt 1, so a recovered
    /// sample cannot oscillate between the fast path and the rescue.
    /// Samples whose retry also fails are quarantined: this wave's outputs
    /// are patched with the nominal spectrum (`nominal_wave`) and later
    /// waves fast-path them without solving.
    #[allow(clippy::too_many_arguments)]
    fn contain_wave(
        &self,
        health: &mut HealthReport,
        plan: &Option<Arc<FaultPlan>>,
        topology: &Arc<SolverTopology>,
        states: &mut [SampleState],
        escalated: &mut [bool],
        quarantined: &mut [bool],
        wave_freqs: &[f64],
        nominal_wave: &[f64],
        attempts: Vec<Result<Vec<f64>, AnalysisError>>,
    ) -> Vec<Vec<f64>> {
        attempts
            .into_iter()
            .enumerate()
            .map(|(i, attempt)| match attempt {
                Ok(outputs) => outputs,
                Err(first) => {
                    let kind = classify(&first);
                    health.counts.record(kind);
                    // The failed attempt may have consumed the cached DC
                    // operating point; `evaluate_state` re-solves it then.
                    let retry = {
                        let _guard = Self::fault_scope(plan, FaultStage::Sscm, i, 1);
                        self.evaluate_state(
                            topology,
                            &mut states[i],
                            wave_freqs,
                            self.recovery_solver_options(),
                        )
                    };
                    match retry {
                        Ok(outputs) => {
                            health.recovered.push(RecoveredSample {
                                stage: SampleStage::Sscm,
                                index: i,
                                kind,
                            });
                            escalated[i] = true;
                            outputs
                        }
                        Err(second) => {
                            health.quarantined.push(QuarantinedSample {
                                stage: SampleStage::Sscm,
                                index: i,
                                kind: classify(&second),
                                detail: second.to_string(),
                            });
                            quarantined[i] = true;
                            nominal_wave.to_vec()
                        }
                    }
                }
            })
            .collect()
    }

    /// Squared magnitude of one sample's variation inputs — the
    /// deterministic "how far from nominal" measure used to pick the donor
    /// republishing representative.
    fn excursion_magnitude(input: &SampleInput) -> f64 {
        let geometry: f64 = input
            .facet_offsets
            .iter()
            .flat_map(|(_, offsets)| offsets.iter())
            .map(|x| x * x)
            .sum();
        let doping: f64 = input.doping_deltas.iter().map(|(_, d)| d * d).sum();
        geometry + doping
    }

    /// The collocation input with the widest excursion (strictly greatest
    /// magnitude wins, earliest index breaks ties) — deterministic in the
    /// input order, never in worker timing.
    fn widest_excursion(inputs: &[SampleInput]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, input) in inputs.iter().enumerate() {
            let magnitude = Self::excursion_magnitude(input);
            if best.is_none_or(|(_, b)| magnitude > b) {
                best = Some((i, magnitude));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Re-solves one representative sample with publishing enabled so that
    /// donor slots cleared by the refresh policy are refilled with pivot
    /// structures recorded from the current excursion, with the AC donor
    /// recorded at `ac_frequency` — the operating point the upcoming stage
    /// actually solves at, not the (documented-as-unused) single-point
    /// configuration frequency. Called only at deterministic barriers
    /// (between sweep stages / refinement waves), never from worker
    /// threads.
    fn republish_donors_from(
        &self,
        topology: &Arc<SolverTopology>,
        input: &SampleInput,
        ac_frequency: f64,
    ) -> Result<(), AnalysisError> {
        let (structure, doping) =
            self.sample_problem(&input.facet_offsets, &input.doping_deltas)?;
        let solver = CoupledSolver::with_topology(
            &structure,
            &doping,
            self.config.solver.clone(),
            topology.clone(),
        )?;
        let dc = solver.solve_dc()?;
        // One AC prepare republishes the AC donor alongside the DC one.
        let _ = solver.prepare_ac(&dc, ac_frequency)?;
        Ok(())
    }

    /// [`VariationalAnalysis::republish_donors_from`] against an adaptive
    /// sweep's persistent [`SampleState`]: the state's cached DC operating
    /// point is reused (solved only if a prior wave has not already), so a
    /// mid-refinement AC-donor refresh costs one AC prepare instead of a
    /// full Newton solve.
    fn republish_ac_donor_from_state(
        &self,
        topology: &Arc<SolverTopology>,
        state: &mut SampleState,
        ac_frequency: f64,
    ) -> Result<(), AnalysisError> {
        let solver = CoupledSolver::with_topology(
            &state.structure,
            &state.doping,
            self.config.solver.clone(),
            topology.clone(),
        )?;
        // Same take/put-back as `evaluate_state`: no panic path, and a
        // failed solve leaves the cache empty for the next attempt.
        let dc = match state.dc.take() {
            Some(dc) => dc,
            None => solver.solve_dc()?,
        };
        let prepared = solver.prepare_ac(&dc, ac_frequency);
        state.dc = Some(dc);
        let _ = prepared?;
        Ok(())
    }

    /// Validates a frequency grid for this analysis: finite, non-negative
    /// entries, and no DC point when the configured quantities divide by ω
    /// — failing up front instead of after the whole nominal grid has been
    /// solved and the extraction hits the `capacitance_column_from` guard.
    fn validate_grid(&self, frequencies: &[f64]) -> Result<(), AnalysisError> {
        if frequencies.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return Err(AnalysisError::Configuration(
                "frequency sweep grid must be finite and non-negative".to_string(),
            ));
        }
        if matches!(
            self.config.quantities,
            QuantitySet::CapacitanceColumn { .. }
        ) && frequencies.contains(&0.0)
        {
            return Err(AnalysisError::Configuration(
                "capacitance sweeps need strictly positive frequencies: \
                 C = Im(I)/ω is undefined at the 0 Hz point"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// A well-formed zero-point sweep result (labelled quantities with
    /// empty spectra) for callers handing in an empty grid.
    fn empty_sweep_result(&self, start: Instant) -> FrequencySweepResult {
        FrequencySweepResult {
            frequencies: Vec::new(),
            quantities: self
                .config
                .quantities
                .labels()
                .into_iter()
                .map(|label| SweepQuantity {
                    label,
                    nominal: Vec::new(),
                    sscm: Vec::new(),
                })
                .collect(),
            reductions: Vec::new(),
            collocation_runs: 0,
            seconds: start.elapsed().as_secs_f64(),
            seed_reuse: SeedReuseStats::default(),
            health: HealthReport::default(),
        }
    }

    /// The terminal driven with 1 V by the AC stage of every evaluation.
    fn driven_terminal(&self) -> &str {
        match &self.config.quantities {
            QuantitySet::InterfaceCurrent { terminal } => terminal,
            QuantitySet::CapacitanceColumn { driven, .. } => driven,
        }
    }

    fn extract_outputs(
        &self,
        solver: &CoupledSolver<'_>,
        dc: &DcSolution,
    ) -> Result<Vec<f64>, AnalysisError> {
        let ac = solver.solve_ac(dc, self.driven_terminal(), self.config.frequency)?;
        self.extract_outputs_from(solver, &ac)
    }

    /// Reads the configured quantities off an already-solved AC solution
    /// (driven at [`VariationalAnalysis::driven_terminal`]).
    // vaem-lint: cold output materialization after the solves
    fn extract_outputs_from(
        &self,
        solver: &CoupledSolver<'_>,
        ac: &AcSolution,
    ) -> Result<Vec<f64>, AnalysisError> {
        match &self.config.quantities {
            QuantitySet::InterfaceCurrent { terminal } => {
                let current = postprocess::interface_current(solver, ac, terminal)?;
                Ok(vec![current.abs() * 1.0e6])
            }
            QuantitySet::CapacitanceColumn { terminals, .. } => {
                let column = postprocess::capacitance_column_from(solver, ac)?;
                terminals
                    .iter()
                    .map(|t| {
                        column.get(t).copied().map(|c| c * 1.0e15).ok_or_else(|| {
                            AnalysisError::Configuration(format!("unknown terminal '{t}'"))
                        })
                    })
                    .collect()
            }
        }
    }

    /// Builds the variation groups from the configuration.
    fn build_groups(&self) -> Result<Vec<VariationGroup>, AnalysisError> {
        let mesh = &self.structure.mesh;
        let mut groups = Vec::new();

        if let Some(rough) = &self.config.variations.roughness {
            let facet_names: Vec<String> = if rough.facets.is_empty() {
                self.structure
                    .rough_facets
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            } else {
                rough.facets.clone()
            };
            if facet_names.is_empty() {
                return Err(AnalysisError::Configuration(
                    "roughness requested but the structure has no rough facets".to_string(),
                ));
            }
            // Partition facets into merged groups + singletons.
            let mut assigned: Vec<Vec<String>> = Vec::new();
            for merged in &rough.merged_groups {
                let members: Vec<String> = merged
                    .iter()
                    .filter(|m| facet_names.contains(m))
                    .cloned()
                    .collect();
                if !members.is_empty() {
                    assigned.push(members);
                }
            }
            for name in &facet_names {
                if !assigned.iter().any(|g| g.contains(name)) {
                    assigned.push(vec![name.clone()]);
                }
            }
            for members in assigned {
                let mut nodes: Vec<NodeId> = Vec::new();
                let mut slices = Vec::new();
                for name in &members {
                    let facet = self.structure.facet(name).ok_or_else(|| {
                        AnalysisError::Configuration(format!("unknown facet '{name}'"))
                    })?;
                    let start = nodes.len();
                    nodes.extend_from_slice(&facet.nodes);
                    slices.push((start, nodes.len()));
                }
                let positions: Vec<[f64; 3]> = nodes.iter().map(|&n| mesh.position(n)).collect();
                let covariance = covariance_matrix(
                    &positions,
                    rough.sigma,
                    CorrelationKernel::Exponential {
                        length: rough.correlation_length,
                    },
                );
                groups.push(VariationGroup {
                    name: members.join("+"),
                    kind: GroupKind::Geometry {
                        facet_names: members,
                        slices,
                        nodes,
                    },
                    covariance,
                });
            }
        }

        if let Some(doping) = &self.config.variations.doping {
            let semis = self.structure.semiconductor_nodes();
            if semis.is_empty() {
                return Err(AnalysisError::Configuration(
                    "doping variation requested but the structure has no semiconductor".to_string(),
                ));
            }
            let z_top = semis
                .iter()
                .map(|&n| mesh.position(n)[2])
                .fold(f64::NEG_INFINITY, f64::max);
            let mut candidates: Vec<NodeId> = semis
                .into_iter()
                .filter(|&n| mesh.position(n)[2] >= z_top - doping.region_depth)
                .collect();
            if candidates.len() > doping.max_nodes && doping.max_nodes > 0 {
                let stride = candidates.len().div_ceil(doping.max_nodes);
                candidates = candidates.into_iter().step_by(stride).collect();
            }
            let positions: Vec<[f64; 3]> = candidates.iter().map(|&n| mesh.position(n)).collect();
            let covariance = covariance_matrix(
                &positions,
                doping.relative_sigma,
                CorrelationKernel::Exponential {
                    length: doping.correlation_length,
                },
            );
            groups.push(VariationGroup {
                name: "doping".to_string(),
                kind: GroupKind::Doping { nodes: candidates },
                covariance,
            });
        }

        if let Some(via) = &self.config.variations.via_params {
            if via.vias.is_empty() {
                return Err(AnalysisError::Configuration(
                    "via-parameter variation requested but no vias were listed".to_string(),
                ));
            }
            // Parameter layout per via: [δr][δx][δy], keeping only the
            // parameters with a positive sigma. The signs express how each
            // parameter displaces the four walls (in +x, -x, +y, -y order)
            // along their normal axes: a radius increase moves opposite
            // walls apart, a centre offset moves both walls of its axis the
            // same way.
            let mut sigmas: Vec<f64> = Vec::new();
            let mut wall_signs: [Vec<f64>; 4] = Default::default();
            let mut push_param = |sigma: f64, signs: [f64; 4], wall_signs: &mut [Vec<f64>; 4]| {
                sigmas.push(sigma);
                for (w, s) in signs.into_iter().enumerate() {
                    wall_signs[w].push(s);
                }
            };
            if via.sigma_radius > 0.0 {
                push_param(via.sigma_radius, [1.0, -1.0, 1.0, -1.0], &mut wall_signs);
            }
            if via.sigma_position > 0.0 {
                push_param(via.sigma_position, [1.0, 1.0, 0.0, 0.0], &mut wall_signs);
                push_param(via.sigma_position, [0.0, 0.0, 1.0, 1.0], &mut wall_signs);
            }
            if sigmas.is_empty() {
                return Err(AnalysisError::Configuration(
                    "via-parameter variation needs a positive sigma_radius or sigma_position"
                        .to_string(),
                ));
            }
            let mut covariance = DMatrix::zeros(sigmas.len(), sigmas.len());
            for (i, sigma) in sigmas.iter().enumerate() {
                covariance[(i, i)] = sigma * sigma;
            }
            for via_walls in &via.vias {
                let mut facets = Vec::with_capacity(4);
                for (w, name) in via_walls.facets.iter().enumerate() {
                    let facet = self.structure.facet(name).ok_or_else(|| {
                        AnalysisError::Configuration(format!("unknown facet '{name}'"))
                    })?;
                    facets.push((name.clone(), facet.nodes.len(), wall_signs[w].clone()));
                }
                groups.push(VariationGroup {
                    name: format!("{}#params", via_walls.name),
                    kind: GroupKind::ViaParams {
                        facets,
                        params: sigmas.len(),
                    },
                    covariance: covariance.clone(),
                });
            }
        }

        if groups.is_empty() {
            return Err(AnalysisError::Configuration(
                "no variation source is enabled".to_string(),
            ));
        }
        Ok(groups)
    }

    /// Influence weights of every node, from the nominal AC solution
    /// (w_i = |J⁰_i|·nodeVol_i, the paper's eq. 9).
    fn nominal_weights(&self, ac: &AcSolution) -> Result<Vec<f64>, AnalysisError> {
        let mesh = &self.structure.mesh;
        let mut weights = vec![0.0_f64; mesh.node_count()];
        let mut area_acc = vec![0.0_f64; mesh.node_count()];
        for lid in mesh.link_ids() {
            let link = mesh.link(lid);
            let current = (ac.admittance_at(lid)
                * (ac.potential_at(link.from) - ac.potential_at(link.to)))
            .abs();
            let area = mesh.dual_area(lid);
            for node in [link.from, link.to] {
                weights[node.index()] += current;
                area_acc[node.index()] += area;
            }
        }
        for node in mesh.node_ids() {
            let i = node.index();
            let density = if area_acc[i] > 0.0 {
                weights[i] / area_acc[i]
            } else {
                0.0
            };
            weights[i] = density * mesh.node_volume(node);
        }
        Ok(weights)
    }

    /// Builds the per-group reduction with the configured method.
    fn build_reduction(
        &self,
        group: &VariationGroup,
        node_weights: &[f64],
    ) -> Result<Box<dyn VariableReduction>, AnalysisError> {
        let weights: Vec<f64> = group
            .nodes()
            .iter()
            .map(|&n| node_weights[n.index()])
            .collect();
        let max_w = weights.iter().cloned().fold(0.0_f64, f64::max);
        // The capped constructors decompose the covariance exactly once,
        // whether or not the rank cap bites.
        let reduction: Box<dyn VariableReduction> = match self.config.reduction {
            ReductionMethod::Wpfa if max_w > 0.0 => Box::new(Wpfa::new_capped(
                &group.covariance,
                &weights,
                self.config.energy_fraction,
                self.config.max_reduced_per_group,
            )?),
            _ => Box::new(Pfa::new_capped(
                &group.covariance,
                self.config.energy_fraction,
                self.config.max_reduced_per_group,
            )?),
        };
        Ok(reduction)
    }

    /// Converts a full variation vector of one group into the sample inputs.
    fn group_sample(
        &self,
        group: &VariationGroup,
        xi: &[f64],
        facet_offsets: &mut Vec<(String, Vec<f64>)>,
        doping_deltas: &mut Vec<(NodeId, f64)>,
    ) {
        match &group.kind {
            GroupKind::Geometry {
                facet_names,
                slices,
                ..
            } => {
                for (name, &(lo, hi)) in facet_names.iter().zip(slices.iter()) {
                    facet_offsets.push((name.clone(), xi[lo..hi].to_vec()));
                }
            }
            GroupKind::Doping { nodes } => {
                for (&node, &delta) in nodes.iter().zip(xi.iter()) {
                    doping_deltas.push((node, delta));
                }
            }
            GroupKind::ViaParams { facets, .. } => {
                for (name, node_count, signs) in facets {
                    let offset: f64 = signs.iter().zip(xi.iter()).map(|(s, x)| s * x).sum();
                    facet_offsets.push((name.clone(), vec![offset; *node_count]));
                }
            }
        }
    }

    /// Builds every per-group reduction plus its summary.
    fn build_reductions(
        &self,
        groups: &[VariationGroup],
        node_weights: &[f64],
    ) -> Result<GroupReductions, AnalysisError> {
        let mut reductions: Vec<Box<dyn VariableReduction>> = Vec::new();
        let mut reduction_summary = Vec::new();
        for group in groups {
            let reduction = self.build_reduction(group, node_weights)?;
            reduction_summary.push(GroupReduction {
                name: group.name.clone(),
                full_dim: group.dim(),
                reduced_dim: reduction.reduced_dim(),
            });
            reductions.push(reduction);
        }
        Ok((reductions, reduction_summary))
    }

    /// Expands every collocation point into its sample inputs (cheap,
    /// serial; the deterministic solves fan out afterwards).
    fn collocation_inputs(
        &self,
        sscm: &SparseCollocation,
        groups: &[VariationGroup],
        reductions: &[Box<dyn VariableReduction>],
    ) -> Vec<SampleInput> {
        sscm.points()
            .iter()
            .map(|point| {
                let mut input = SampleInput::default();
                let mut offset = 0;
                for (group, reduction) in groups.iter().zip(reductions.iter()) {
                    let d = reduction.reduced_dim();
                    let zeta = &point[offset..offset + d];
                    let xi = reduction.expand(zeta);
                    self.group_sample(
                        group,
                        &xi,
                        &mut input.facet_offsets,
                        &mut input.doping_deltas,
                    );
                    offset += d;
                }
                input
            })
            .collect()
    }

    /// Runs the complete workflow: nominal solve, wPFA/PFA reduction, SSCM
    /// and the Monte-Carlo reference.
    ///
    /// # Errors
    /// Propagates solver, reduction and fitting failures.
    pub fn run(&self) -> Result<AnalysisResult, AnalysisError> {
        let groups = self.build_groups()?;
        // Terminal labelling, adjacency and sparsity patterns are
        // perturbation-invariant: build them once and share them read-only
        // with every sample solver on every worker thread.
        let topology = Arc::new(SolverTopology::build(&self.structure)?);
        let plan = FaultPlan::from_env();
        let mut health = HealthReport {
            budget: self.config.quarantine_budget,
            ..HealthReport::default()
        };

        // --- Nominal solve (also provides the wPFA weights). One AC solve
        // covers both the nominal outputs and the influence weights.
        let sscm_start = Instant::now(); // vaem-lint: allow(D6) wall-clock reporting metadata only; never feeds numeric results
        let nominal_doping = self.nominal_doping();
        let (nominal_outputs, node_weights) =
            self.contain_nominal(&mut health, &plan, self.config.solver.clone(), |options| {
                let nominal_solver = CoupledSolver::with_topology(
                    &self.structure,
                    &nominal_doping,
                    options,
                    topology.clone(),
                )?;
                let nominal_dc = nominal_solver.solve_dc()?;
                let nominal_ac = nominal_solver.solve_ac(
                    &nominal_dc,
                    self.driven_terminal(),
                    self.config.frequency,
                )?;
                let outputs = self.extract_outputs_from(&nominal_solver, &nominal_ac)?;
                let weights = self.nominal_weights(&nominal_ac)?;
                Ok((outputs, weights))
            })?;

        // --- Variable reduction. ---
        let (reductions, reduction_summary) = self.build_reductions(&groups, &node_weights)?;
        let total_dim: usize = reductions.iter().map(|r| r.reduced_dim()).sum();

        // --- SSCM stage: fan the independent deterministic solves out over
        // the worker threads.
        let sscm = SparseCollocation::new(total_dim);
        let sample_inputs = self.collocation_inputs(&sscm, &groups, &reductions);
        health.samples_total = 1 + sample_inputs.len() + self.config.mc_runs;
        let sample_options = self.sample_solver_options();
        let attempts: Vec<Result<Vec<f64>, AnalysisError>> = par_map(&sample_inputs, |i, input| {
            let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, 0);
            self.evaluate_sample_with(
                &topology,
                &input.facet_offsets,
                &input.doping_deltas,
                // vaem-lint: allow(H2) small solver-options struct copied once per sample at worker entry
                sample_options.clone(),
            )
        });
        let contained = Self::contain_stage(&mut health, SampleStage::Sscm, attempts, |i| {
            let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, 1);
            self.evaluate_sample_with(
                &topology,
                &sample_inputs[i].facet_offsets,
                &sample_inputs[i].doping_deltas,
                self.recovery_solver_options(),
            )
        });
        self.check_quarantine_budget(&health)?;
        // Quarantined collocation points are patched with the nominal
        // outputs: the sparse-grid quadrature needs a value at every point,
        // and the nominal is the unbiased deterministic stand-in.
        let outputs: Vec<Vec<f64>> = contained
            .into_iter()
            .map(|sample| sample.unwrap_or_else(|| nominal_outputs.clone()))
            .collect();
        let pces = sscm.fit(&outputs)?;
        let sscm_seconds = sscm_start.elapsed().as_secs_f64();

        // --- Donor refresh barrier: if the SSCM fan-out re-pivoted often
        // enough that the nominal donor is evidently stale for this
        // parameter spread, drop it and republish from the widest
        // collocation excursion before the Monte-Carlo fan-out. The
        // decision runs at this single-threaded barrier on counters that
        // are sums of per-sample deterministic counts, so neither the
        // decision nor the new donor depends on worker timing.
        if self.config.solver.reuse_symbolic {
            let rate = self.config.solver.donor_refresh_stale_rate;
            let dc_cleared = topology.clear_dc_donor_if_stale(rate);
            let ac_cleared = topology.clear_ac_donor_if_stale(rate);
            if dc_cleared || ac_cleared {
                if let Some(widest) = Self::widest_excursion(&sample_inputs) {
                    // The MC stage solves at the configured single-point
                    // frequency, so that is where the new AC donor is
                    // recorded. Republishing is an optimization: a failure
                    // here only costs later samples their warm seed, so it
                    // is counted and contained, never fatal.
                    if let Err(error) = self.republish_donors_from(
                        &topology,
                        &sample_inputs[widest],
                        self.config.frequency,
                    ) {
                        health.counts.record(classify(&error));
                    }
                }
            }
        }

        // --- Monte-Carlo reference (full-rank sampling of every group).
        // Each run draws from its own `(seed, run)` stream, so the sweep is
        // deterministic for any thread count.
        let mc_start = Instant::now(); // vaem-lint: allow(D6) wall-clock reporting metadata only; never feeds numeric results
        let full_rank: Vec<FullRankGaussian> = groups
            .iter()
            .map(|g| FullRankGaussian::new(&g.covariance))
            .collect::<Result<_, _>>()?;
        let n_outputs = self.config.quantities.len();
        // The run → input map is a pure function of `(seed, run)`, so the
        // recovery retry can re-derive a failed run's draw exactly.
        let mc_input = |run: usize| {
            let mut rng = StdRng::seed_from_u64(mc_run_seed(self.config.seed, run as u64));
            let mut input = SampleInput::default();
            for (group, sampler) in groups.iter().zip(full_rank.iter()) {
                let z = standard_normal_vector(&mut rng, sampler.reduced_dim());
                let xi = sampler.expand(&z);
                self.group_sample(
                    group,
                    &xi,
                    &mut input.facet_offsets,
                    &mut input.doping_deltas,
                );
            }
            input
        };
        let mc_attempts: Vec<Result<Vec<f64>, AnalysisError>> =
            par_map_indices(self.config.mc_runs, |run| {
                let _guard = Self::fault_scope(&plan, FaultStage::Mc, run, 0);
                let input = mc_input(run);
                self.evaluate_sample_with(
                    &topology,
                    &input.facet_offsets,
                    &input.doping_deltas,
                    // vaem-lint: allow(H2) small solver-options struct copied once per sample at worker entry
                    sample_options.clone(),
                )
            });
        let mc_contained = Self::contain_stage(&mut health, SampleStage::Mc, mc_attempts, |run| {
            let _guard = Self::fault_scope(&plan, FaultStage::Mc, run, 1);
            let input = mc_input(run);
            self.evaluate_sample_with(
                &topology,
                &input.facet_offsets,
                &input.doping_deltas,
                self.recovery_solver_options(),
            )
        });
        self.check_quarantine_budget(&health)?;
        // Quarantined MC runs are dropped: the reference statistics
        // tolerate a missing draw, while patching would bias them toward
        // the nominal.
        let mut mc_stats = vec![RunningStats::new(); n_outputs];
        for sample in mc_contained.iter().flatten() {
            for (acc, v) in mc_stats.iter_mut().zip(sample.iter()) {
                acc.push(*v);
            }
        }
        let mc_seconds = mc_start.elapsed().as_secs_f64();

        // --- Assemble the result. ---
        let labels = self.config.quantities.labels();
        let quantities = labels
            .into_iter()
            .enumerate()
            .map(|(q, label)| QuantityResult {
                label,
                nominal: nominal_outputs[q],
                sscm: SummaryStats::new(pces[q].mean(), pces[q].std()),
                monte_carlo: SummaryStats::new(mc_stats[q].mean(), mc_stats[q].sample_std()),
                main_effects: (0..total_dim).map(|d| pces[q].main_effect(d)).collect(),
            })
            .collect();

        Ok(AnalysisResult {
            quantities,
            reductions: reduction_summary,
            collocation_runs: sscm.run_count(),
            mc_runs: self.config.mc_runs,
            sscm_seconds,
            mc_seconds,
            seed_reuse: topology.seed_stats(),
            health,
        })
    }

    /// Runs the swept-frequency experiment: the nominal structure and every
    /// SSCM collocation sample are evaluated over the whole `frequencies`
    /// grid (capacitance / interface-current spectra), and a polynomial
    /// chaos expansion is fitted per (frequency, quantity) pair.
    ///
    /// Every sample performs one DC solve and one
    /// [`AcSweepOperator::sweep_terminal`](vaem_fvm::AcSweepOperator) pass —
    /// one AC assembly and one symbolic factorization for the whole grid,
    /// a numeric refactorization and a warm-started solve per point — and
    /// the samples fan out over the `vaem_parallel` worker threads, so the
    /// spectra are bit-identical for any `VAEM_THREADS` value.
    ///
    /// The wPFA influence weights are taken from the first grid point; the
    /// configured single-point `frequency` is not used.
    ///
    /// # Errors
    /// Propagates solver, reduction and fitting failures; a non-finite or
    /// negative grid entry is a configuration error. An empty grid returns
    /// a well-formed zero-point result (no solves run), and a single-point
    /// grid degenerates to the single-frequency analysis.
    pub fn run_frequency_sweep(
        &self,
        frequencies: &[f64],
    ) -> Result<FrequencySweepResult, AnalysisError> {
        self.validate_grid(frequencies)?;
        let start = Instant::now(); // vaem-lint: allow(D6) wall-clock reporting metadata only; never feeds numeric results
        if frequencies.is_empty() {
            return Ok(self.empty_sweep_result(start));
        }
        let groups = self.build_groups()?;
        let topology = Arc::new(SolverTopology::build(&self.structure)?);
        let plan = FaultPlan::from_env();
        let mut health = HealthReport {
            budget: self.config.quarantine_budget,
            ..HealthReport::default()
        };

        // --- Nominal sweep: provides the per-frequency nominal outputs and
        // the wPFA weights (from the first grid point).
        let nominal_doping = self.nominal_doping();
        let (nominal_flat, node_weights) =
            self.contain_nominal(&mut health, &plan, self.config.solver.clone(), |options| {
                let nominal_solver = CoupledSolver::with_topology(
                    &self.structure,
                    &nominal_doping,
                    options,
                    topology.clone(),
                )?;
                let nominal_dc = nominal_solver.solve_dc()?;
                let mut nominal_operator = nominal_solver.prepare_ac_sweep(&nominal_dc)?;
                let nominal_sweep =
                    nominal_operator.sweep_terminal(frequencies, self.driven_terminal())?;
                let node_weights = self.nominal_weights(&nominal_sweep[0])?;
                let mut nominal_flat =
                    Vec::with_capacity(frequencies.len() * self.config.quantities.len());
                for ac in &nominal_sweep {
                    nominal_flat.extend(self.extract_outputs_from(&nominal_solver, ac)?);
                }
                Ok((nominal_flat, node_weights))
            })?;

        // --- Reduction + collocation over the spectra: the PCE machinery is
        // output-agnostic, so the per-frequency quantities are fitted as one
        // flat (frequency-major) output vector per sample.
        let (reductions, reduction_summary) = self.build_reductions(&groups, &node_weights)?;
        let total_dim: usize = reductions.iter().map(|r| r.reduced_dim()).sum();
        let sscm = SparseCollocation::new(total_dim);
        let sample_inputs = self.collocation_inputs(&sscm, &groups, &reductions);
        health.samples_total = 1 + sample_inputs.len();
        let sample_options = self.sample_solver_options();
        let attempts: Vec<Result<Vec<f64>, AnalysisError>> = par_map(&sample_inputs, |i, input| {
            let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, 0);
            self.evaluate_spectrum_with(
                &topology,
                &input.facet_offsets,
                &input.doping_deltas,
                frequencies,
                // vaem-lint: allow(H2) small solver-options struct copied once per sample at worker entry
                sample_options.clone(),
            )
        });
        let contained = Self::contain_stage(&mut health, SampleStage::Sscm, attempts, |i| {
            let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, 1);
            self.evaluate_spectrum_with(
                &topology,
                &sample_inputs[i].facet_offsets,
                &sample_inputs[i].doping_deltas,
                frequencies,
                self.recovery_solver_options(),
            )
        });
        self.check_quarantine_budget(&health)?;
        // Quarantined samples contribute the nominal spectrum, keeping the
        // per-point quadrature well-defined (see `run`).
        let outputs: Vec<Vec<f64>> = contained
            .into_iter()
            .map(|sample| sample.unwrap_or_else(|| nominal_flat.clone()))
            .collect();
        let pces = sscm.fit(&outputs)?;

        let labels = self.config.quantities.labels();
        let n_q = labels.len();
        let quantities = labels
            .into_iter()
            .enumerate()
            .map(|(q, label)| SweepQuantity {
                label,
                nominal: (0..frequencies.len())
                    .map(|fi| nominal_flat[fi * n_q + q])
                    .collect(),
                sscm: (0..frequencies.len())
                    .map(|fi| {
                        let pce = &pces[fi * n_q + q];
                        SummaryStats::new(pce.mean(), pce.std())
                    })
                    .collect(),
            })
            .collect();

        Ok(FrequencySweepResult {
            frequencies: frequencies.to_vec(),
            quantities,
            reductions: reduction_summary,
            collocation_runs: sscm.run_count(),
            seconds: start.elapsed().as_secs_f64(),
            seed_reuse: topology.seed_stats(),
            health,
        })
    }

    /// Runs the swept-frequency experiment on an **error-controlled
    /// adaptive grid**: the spectra are evaluated on the caller's coarse
    /// grid first, then intervals whose interior points deviate from the
    /// log-frequency interpolation of their neighbours — nominal curve,
    /// SSCM mean or SSCM std — by more than `options.rel_tolerance` are
    /// recursively bisected, down to `options.max_depth` generations and at
    /// most `options.max_points` total points. Flat stretches of the
    /// spectrum keep the coarse resolution; resonant/transition regions get
    /// dense points, so a wide-band extraction reaches dense-grid accuracy
    /// with a fraction of the solves.
    ///
    /// Every collocation sample keeps a persistent state across the
    /// refinement waves: the perturbed problem is built once, the DC
    /// operating point is solved once, and each refinement point costs one
    /// numeric refactorization plus one warm-started solve
    /// ([`AcSweepOperator::solve_at`](vaem_fvm::AcSweepOperator::solve_at))
    /// — exactly as much as a point of a fixed-grid sweep. Waves fan out
    /// over the `vaem_parallel` workers with slot-per-input determinism,
    /// and all refinement decisions are made between waves from
    /// thread-count-independent data, so the refined grid and the spectra
    /// are bit-identical for any `VAEM_THREADS` value. With a tolerance
    /// loose enough that no refinement triggers, the result is
    /// bit-identical to [`VariationalAnalysis::run_frequency_sweep`] on the
    /// coarse grid.
    ///
    /// # Errors
    /// Propagates solver, reduction and fitting failures. The coarse grid
    /// must be finite, non-negative and strictly increasing (an empty grid
    /// returns a well-formed zero-point result; fewer than three points
    /// leave nothing to refine and return the coarse sweep). The options
    /// must hold a positive finite tolerance and a point budget of at
    /// least the coarse grid size.
    pub fn run_adaptive_frequency_sweep(
        &self,
        coarse_frequencies: &[f64],
        options: &AdaptiveSweepOptions,
    ) -> Result<AdaptiveSweepResult, AnalysisError> {
        if !options.rel_tolerance.is_finite() || options.rel_tolerance <= 0.0 {
            return Err(AnalysisError::Configuration(format!(
                "adaptive sweep tolerance must be finite and positive, got {}",
                options.rel_tolerance
            )));
        }
        self.validate_grid(coarse_frequencies)?;
        if coarse_frequencies.windows(2).any(|w| w[1] <= w[0]) {
            return Err(AnalysisError::Configuration(
                "adaptive sweep needs a strictly increasing coarse grid".to_string(),
            ));
        }
        if options.max_points < coarse_frequencies.len() {
            return Err(AnalysisError::Configuration(format!(
                "adaptive sweep point budget {} is below the {}-point coarse grid",
                options.max_points,
                coarse_frequencies.len()
            )));
        }
        let start = Instant::now(); // vaem-lint: allow(D6) wall-clock reporting metadata only; never feeds numeric results
        if coarse_frequencies.is_empty() {
            return Ok(AdaptiveSweepResult {
                sweep: self.empty_sweep_result(start),
                origins: Vec::new(),
                waves: 0,
                budget_exhausted: false,
            });
        }

        let groups = self.build_groups()?;
        let topology = Arc::new(SolverTopology::build(&self.structure)?);
        let n_q = self.config.quantities.len();
        let plan = FaultPlan::from_env();
        let mut health = HealthReport {
            budget: self.config.quarantine_budget,
            ..HealthReport::default()
        };

        // --- Nominal coarse sweep: per-point nominal outputs, wPFA weights
        // (first grid point) and the donor symbolic phases, published
        // before any worker starts.
        let nominal_doping = self.nominal_doping();
        let (nominal_dc, nominal_flat, node_weights) =
            self.contain_nominal(&mut health, &plan, self.config.solver.clone(), |options| {
                let nominal_solver = CoupledSolver::with_topology(
                    &self.structure,
                    &nominal_doping,
                    options,
                    topology.clone(),
                )?;
                let nominal_dc = nominal_solver.solve_dc()?;
                let mut nominal_operator = nominal_solver.prepare_ac_sweep(&nominal_dc)?;
                let nominal_sweep =
                    nominal_operator.sweep_terminal(coarse_frequencies, self.driven_terminal())?;
                let node_weights = self.nominal_weights(&nominal_sweep[0])?;
                let mut nominal_flat = Vec::with_capacity(coarse_frequencies.len() * n_q);
                for ac in &nominal_sweep {
                    nominal_flat.extend(self.extract_outputs_from(&nominal_solver, ac)?);
                }
                Ok((nominal_dc, nominal_flat, node_weights))
            })?;

        // --- Reduction + persistent sample states. ---
        let (reductions, reduction_summary) = self.build_reductions(&groups, &node_weights)?;
        let total_dim: usize = reductions.iter().map(|r| r.reduced_dim()).sum();
        let sscm = SparseCollocation::new(total_dim);
        let sample_inputs = self.collocation_inputs(&sscm, &groups, &reductions);
        health.samples_total = 1 + sample_inputs.len();
        // Per-sample containment tracking across the refinement waves:
        // escalated samples evaluate every later wave with the recovery
        // solver at attempt 1; quarantined samples fast-path to the
        // nominal spectrum without solving.
        let mut escalated: Vec<bool> = vec![false; sample_inputs.len()];
        let mut quarantined: Vec<bool> = vec![false; sample_inputs.len()];
        let mut states: Vec<SampleState> = Vec::with_capacity(sample_inputs.len());
        for (i, input) in sample_inputs.iter().enumerate() {
            let build = {
                let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, 0);
                self.sample_problem(&input.facet_offsets, &input.doping_deltas)
            };
            let (structure, doping) = match build {
                Ok(problem) => problem,
                Err(first) => {
                    let kind = classify(&first);
                    health.counts.record(kind);
                    let retry = {
                        let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, 1);
                        self.sample_problem(&input.facet_offsets, &input.doping_deltas)
                    };
                    match retry {
                        Ok(problem) => {
                            health.recovered.push(RecoveredSample {
                                stage: SampleStage::Sscm,
                                index: i,
                                kind,
                            });
                            escalated[i] = true;
                            problem
                        }
                        Err(second) => {
                            health.quarantined.push(QuarantinedSample {
                                stage: SampleStage::Sscm,
                                index: i,
                                kind: classify(&second),
                                detail: second.to_string(),
                            });
                            quarantined[i] = true;
                            // Placeholder problem — never solved: the
                            // fast path patches this sample each wave.
                            (self.structure.clone(), nominal_doping.clone())
                        }
                    }
                }
            };
            states.push(SampleState {
                structure,
                doping,
                dc: None,
            });
        }
        self.check_quarantine_budget(&health)?;
        // The nominal joins later waves as a persistent state of its own
        // (publishing stays off there — its donors are already out).
        let mut nominal_state = SampleState {
            structure: self.structure.clone(),
            doping: nominal_doping,
            dc: Some(nominal_dc),
        };

        // --- Wave 0: every sample over the coarse grid. ---
        let sample_options = self.sample_solver_options();
        let recovery_options = self.recovery_solver_options();
        let wave0: Vec<Result<Vec<f64>, AnalysisError>> = par_map_mut(&mut states, |i, state| {
            if quarantined[i] {
                // vaem-lint: allow(H2) quarantined samples take a copy of the patched nominal output
                return Ok(nominal_flat.clone());
            }
            let attempt = u32::from(escalated[i]);
            let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, attempt);
            let options = if escalated[i] {
                // vaem-lint: allow(H2) small solver-options struct copied once per sample at worker entry
                recovery_options.clone()
            } else {
                // vaem-lint: allow(H2) small solver-options struct copied once per sample at worker entry
                sample_options.clone()
            };
            self.evaluate_state(&topology, state, coarse_frequencies, options)
        });
        let sample_outputs = self.contain_wave(
            &mut health,
            &plan,
            &topology,
            &mut states,
            &mut escalated,
            &mut quarantined,
            coarse_frequencies,
            &nominal_flat,
            wave0,
        );
        self.check_quarantine_budget(&health)?;
        let fit_point = |point_outputs: &[Vec<f64>], at: usize| -> Result<_, AnalysisError> {
            let per_sample: Vec<Vec<f64>> = point_outputs
                .iter()
                .map(|o| o[at * n_q..(at + 1) * n_q].to_vec())
                .collect();
            Ok(sscm.fit(&per_sample)?)
        };
        let mut grid: Vec<PointRecord> = Vec::with_capacity(coarse_frequencies.len());
        for (fi, &frequency) in coarse_frequencies.iter().enumerate() {
            let pces = fit_point(&sample_outputs, fi)?;
            grid.push(PointRecord {
                frequency,
                origin: PointOrigin::Coarse,
                nominal: nominal_flat[fi * n_q..(fi + 1) * n_q].to_vec(),
                mean: pces.iter().map(|p| p.mean()).collect(),
                std: pces.iter().map(|p| p.std()).collect(),
            });
        }

        // --- Refinement waves: flag, bisect, evaluate, refit. ---
        let mut waves = 0usize;
        let mut budget_exhausted = false;
        loop {
            let mut flagged: Vec<(usize, f64)> = Vec::new();
            for i in 1..grid.len().saturating_sub(1) {
                let indicator = refinement_indicator(&grid[i - 1], &grid[i], &grid[i + 1]);
                if indicator > options.rel_tolerance {
                    flag_interval(&mut flagged, i - 1, indicator);
                    flag_interval(&mut flagged, i, indicator);
                }
            }
            // (midpoint frequency, depth, indicator) per splittable interval.
            let mut candidates: Vec<(f64, usize, f64)> = flagged
                .into_iter()
                .filter_map(|(left, indicator)| {
                    let (lo, hi) = (&grid[left], &grid[left + 1]);
                    let depth = lo.origin.depth().max(hi.origin.depth());
                    if depth >= options.max_depth {
                        return None;
                    }
                    let mid = midpoint_frequency(lo.frequency, hi.frequency);
                    // Floating-point exhaustion: the midpoint no longer
                    // separates the endpoints.
                    if !(mid > lo.frequency && mid < hi.frequency) {
                        return None;
                    }
                    Some((mid, depth + 1, indicator))
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            let allowed = options.max_points.saturating_sub(grid.len());
            if allowed == 0 {
                budget_exhausted = true;
                break;
            }
            if candidates.len() > allowed {
                // Spend the remaining budget on the worst offenders.
                budget_exhausted = true;
                candidates.sort_by(|a, b| {
                    b.2.partial_cmp(&a.2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.total_cmp(&b.0))
                });
                candidates.truncate(allowed);
            }
            // Evaluate ascending in frequency: deterministic, and the
            // warm starts walk the spectrum monotonically.
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0));
            waves += 1;

            let wave_freqs: Vec<f64> = candidates.iter().map(|c| c.0).collect();

            // Donor refresh barrier (AC side — no DC solves happen after
            // wave 0): if the previous wave re-pivoted past the threshold,
            // republish from the widest collocation excursion so the
            // refinement waves re-seed from pivots that fit the spread.
            // The new donor is recorded at this wave's first midpoint —
            // an in-band operating point — reusing the state's cached DC
            // solution, so the refresh costs one AC prepare.
            if self.config.solver.reuse_symbolic
                && topology.clear_ac_donor_if_stale(self.config.solver.donor_refresh_stale_rate)
            {
                if let Some(widest) = Self::widest_excursion(&sample_inputs) {
                    // Contained like the MC-barrier republish in `run`:
                    // losing the refresh only costs later points their
                    // warm seed, never the sweep.
                    if let Err(error) = self.republish_ac_donor_from_state(
                        &topology,
                        &mut states[widest],
                        wave_freqs[0],
                    ) {
                        health.counts.record(classify(&error));
                    }
                }
            }
            let nominal_new =
                self.contain_nominal(&mut health, &plan, sample_options.clone(), |options| {
                    self.evaluate_state(&topology, &mut nominal_state, &wave_freqs, options)
                })?;
            let wave: Vec<Result<Vec<f64>, AnalysisError>> =
                par_map_mut(&mut states, |i, state| {
                    if quarantined[i] {
                        // vaem-lint: allow(H2) quarantined samples take a copy of the patched nominal output
                        return Ok(nominal_new.clone());
                    }
                    let attempt = u32::from(escalated[i]);
                    let _guard = Self::fault_scope(&plan, FaultStage::Sscm, i, attempt);
                    let options = if escalated[i] {
                        // vaem-lint: allow(H2) small solver-options struct copied once per sample at worker entry
                        recovery_options.clone()
                    } else {
                        // vaem-lint: allow(H2) small solver-options struct copied once per sample at worker entry
                        sample_options.clone()
                    };
                    self.evaluate_state(&topology, state, &wave_freqs, options)
                });
            let sample_new = self.contain_wave(
                &mut health,
                &plan,
                &topology,
                &mut states,
                &mut escalated,
                &mut quarantined,
                &wave_freqs,
                &nominal_new,
                wave,
            );
            self.check_quarantine_budget(&health)?;
            for (ci, &(frequency, depth, _)) in candidates.iter().enumerate() {
                let pces = fit_point(&sample_new, ci)?;
                let record = PointRecord {
                    frequency,
                    origin: PointOrigin::Refined { wave: waves, depth },
                    nominal: nominal_new[ci * n_q..(ci + 1) * n_q].to_vec(),
                    mean: pces.iter().map(|p| p.mean()).collect(),
                    std: pces.iter().map(|p| p.std()).collect(),
                };
                let at = grid.partition_point(|p| p.frequency < frequency);
                grid.insert(at, record);
            }
        }

        // --- Assemble the refined-grid result. ---
        let labels = self.config.quantities.labels();
        let quantities = labels
            .into_iter()
            .enumerate()
            .map(|(q, label)| SweepQuantity {
                label,
                nominal: grid.iter().map(|p| p.nominal[q]).collect(),
                sscm: grid
                    .iter()
                    .map(|p| SummaryStats::new(p.mean[q], p.std[q]))
                    .collect(),
            })
            .collect();
        Ok(AdaptiveSweepResult {
            sweep: FrequencySweepResult {
                frequencies: grid.iter().map(|p| p.frequency).collect(),
                quantities,
                reductions: reduction_summary,
                collocation_runs: sscm.run_count(),
                seconds: start.elapsed().as_secs_f64(),
                seed_reuse: topology.seed_stats(),
                health,
            },
            origins: grid.iter().map(|p| p.origin).collect(),
            waves,
            budget_exhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DopingVariationConfig, RoughnessConfig, VariationSpec};
    use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

    /// A deliberately tiny configuration so the full workflow runs in a test.
    fn tiny_analysis(roughness: bool, doping: bool) -> VariationalAnalysis {
        let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
        let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
            terminal: "plug1".to_string(),
        });
        config.mc_runs = 8;
        config.energy_fraction = 0.85;
        config.max_reduced_per_group = 2;
        config.variations = VariationSpec {
            roughness: roughness.then(|| RoughnessConfig {
                sigma: 0.3,
                ..RoughnessConfig::paper_default()
            }),
            doping: doping.then(|| DopingVariationConfig {
                max_nodes: 12,
                ..DopingVariationConfig::paper_default()
            }),
            via_params: None,
        };
        VariationalAnalysis::new(structure, config)
    }

    #[test]
    fn nominal_sample_matches_unperturbed_evaluation() {
        let analysis = tiny_analysis(true, true);
        let a = analysis.evaluate_sample(&[], &[]).unwrap();
        let b = analysis.evaluate_sample(&[], &[]).unwrap();
        assert_eq!(a.len(), 1);
        assert!(a[0] > 0.0);
        assert!(
            (a[0] - b[0]).abs() < 1e-12,
            "evaluation must be deterministic"
        );
    }

    #[test]
    fn doping_perturbation_changes_the_interface_current() {
        let analysis = tiny_analysis(false, true);
        let base = analysis.evaluate_sample(&[], &[]).unwrap()[0];
        let semis = analysis.structure().semiconductor_nodes();
        let deltas: Vec<(NodeId, f64)> = semis.iter().map(|&n| (n, 0.3)).collect();
        let up = analysis.evaluate_sample(&[], &deltas).unwrap()[0];
        assert!(
            (up - base).abs() / base > 1e-3,
            "30% doping change should move the current: {base} -> {up}"
        );
    }

    #[test]
    fn frequency_sweep_produces_consistent_spectra() {
        let analysis = tiny_analysis(false, true);
        let frequencies = [1.0e8, 1.0e9, 5.0e9];
        let result = analysis.run_frequency_sweep(&frequencies).unwrap();
        assert_eq!(result.frequencies, frequencies);
        assert_eq!(result.quantities.len(), 1);
        let q = &result.quantities[0];
        assert_eq!(q.nominal.len(), frequencies.len());
        assert_eq!(q.sscm.len(), frequencies.len());
        for (fi, _) in frequencies.iter().enumerate() {
            assert!(q.nominal[fi].is_finite() && q.nominal[fi] > 0.0);
            assert!(q.sscm[fi].mean.is_finite() && q.sscm[fi].mean > 0.0);
            assert!(q.sscm[fi].std.is_finite() && q.sscm[fi].std >= 0.0);
            // The SSCM mean stays in the neighbourhood of the nominal value.
            let rel = (q.sscm[fi].mean - q.nominal[fi]).abs() / q.nominal[fi];
            assert!(rel < 0.5, "sscm mean drifted at point {fi}: {rel}");
        }
        // The interface current of the mostly capacitive plug grows with
        // frequency, so the spectrum must not be flat.
        assert!(q.nominal[2] > q.nominal[0]);
        assert!(result.collocation_runs > 0);
        assert_eq!(
            result.ac_solve_count(),
            (result.collocation_runs + 1) * frequencies.len()
        );

        // Each grid point must match the single-frequency analysis run at
        // that frequency (same collocation machinery, same solver path).
        let mut config = analysis.config().clone();
        config.frequency = frequencies[1];
        let single = VariationalAnalysis::new(analysis.structure().clone(), config)
            .run()
            .unwrap();
        let rel = (single.quantities[0].nominal - q.nominal[1]).abs() / q.nominal[1];
        assert!(rel < 1e-9, "nominal mismatch vs single-point run: {rel}");
    }

    #[test]
    fn empty_grid_returns_a_well_formed_result_and_invalid_grids_are_rejected() {
        let analysis = tiny_analysis(false, true);
        // An empty grid is a degenerate but well-formed request: no solves,
        // labelled quantities with empty spectra, zero AC solve count —
        // previously this was rejected (and the assembly would have
        // panicked on `nominal_sweep[0]` without the guard).
        let empty = analysis.run_frequency_sweep(&[]).unwrap();
        assert!(empty.frequencies.is_empty());
        assert_eq!(empty.quantities.len(), analysis.config().quantities.len());
        assert!(empty
            .quantities
            .iter()
            .all(|q| q.nominal.is_empty() && q.sscm.is_empty() && !q.label.is_empty()));
        assert_eq!(empty.collocation_runs, 0);
        assert_eq!(empty.ac_solve_count(), 0);
        // Non-finite or negative entries stay hard errors.
        assert!(matches!(
            analysis.run_frequency_sweep(&[1.0e9, f64::NAN]),
            Err(AnalysisError::Configuration(_))
        ));
        assert!(matches!(
            analysis.run_frequency_sweep(&[-1.0]),
            Err(AnalysisError::Configuration(_))
        ));
    }

    #[test]
    fn capacitance_sweep_rejects_the_dc_point_up_front() {
        // C = Im(I)/ω is undefined at 0 Hz; a capacitance sweep whose grid
        // contains the DC point must fail at validation time, not after the
        // whole nominal grid has been solved and the extraction trips over
        // the postprocess guard.
        let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
        let mut config = AnalysisConfig::new(QuantitySet::CapacitanceColumn {
            driven: "plug1".to_string(),
            terminals: vec!["plug1".to_string(), "plug2".to_string()],
        });
        config.variations = VariationSpec {
            roughness: None,
            doping: Some(DopingVariationConfig {
                max_nodes: 12,
                ..DopingVariationConfig::paper_default()
            }),
            via_params: None,
        };
        let analysis = VariationalAnalysis::new(structure, config);
        for run in [
            analysis.run_frequency_sweep(&[0.0, 1.0e9]),
            analysis
                .run_adaptive_frequency_sweep(
                    &[0.0, 1.0e9, 1.0e10],
                    &AdaptiveSweepOptions::default(),
                )
                .map(|a| a.sweep),
        ] {
            match run {
                Err(AnalysisError::Configuration(msg)) => {
                    assert!(msg.contains("0 Hz"), "unexpected message: {msg}")
                }
                other => panic!("expected up-front configuration error, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_point_sweep_matches_the_single_frequency_run() {
        let analysis = tiny_analysis(false, true);
        let result = analysis.run_frequency_sweep(&[1.0e9]).unwrap();
        assert_eq!(result.frequencies, [1.0e9]);
        let q = &result.quantities[0];
        assert_eq!(q.nominal.len(), 1);
        assert_eq!(q.sscm.len(), 1);
        assert!(q.nominal[0].is_finite() && q.nominal[0] > 0.0);
        let mut config = analysis.config().clone();
        config.frequency = 1.0e9;
        let single = VariationalAnalysis::new(analysis.structure().clone(), config)
            .run()
            .unwrap();
        let rel = (single.quantities[0].nominal - q.nominal[0]).abs() / q.nominal[0];
        assert!(rel < 1e-9, "nominal mismatch vs single-point run: {rel}");
    }

    #[test]
    fn adaptive_sweep_rejects_bad_options_and_grids() {
        let analysis = tiny_analysis(false, true);
        let grid = [1.0e8, 1.0e9, 1.0e10];
        for tol in [0.0, -1.0, f64::NAN] {
            let options = AdaptiveSweepOptions {
                rel_tolerance: tol,
                ..AdaptiveSweepOptions::default()
            };
            assert!(matches!(
                analysis.run_adaptive_frequency_sweep(&grid, &options),
                Err(AnalysisError::Configuration(_))
            ));
        }
        let options = AdaptiveSweepOptions::default();
        // Unsorted / duplicated coarse grids are rejected.
        assert!(matches!(
            analysis.run_adaptive_frequency_sweep(&[1.0e9, 1.0e8], &options),
            Err(AnalysisError::Configuration(_))
        ));
        assert!(matches!(
            analysis.run_adaptive_frequency_sweep(&[1.0e8, 1.0e8], &options),
            Err(AnalysisError::Configuration(_))
        ));
        // A budget below the coarse grid cannot hold even wave 0.
        let tight = AdaptiveSweepOptions {
            max_points: 2,
            ..AdaptiveSweepOptions::default()
        };
        assert!(matches!(
            analysis.run_adaptive_frequency_sweep(&grid, &tight),
            Err(AnalysisError::Configuration(_))
        ));
        // An empty coarse grid is a well-formed zero-point result.
        let empty = analysis
            .run_adaptive_frequency_sweep(&[], &options)
            .unwrap();
        assert!(empty.sweep.frequencies.is_empty());
        assert_eq!(empty.waves, 0);
        assert!(!empty.budget_exhausted);
    }

    /// Bit-level fingerprint of a sweep result (frequencies + all moments).
    fn sweep_bits(result: &FrequencySweepResult) -> Vec<u64> {
        let mut bits: Vec<u64> = result.frequencies.iter().map(|f| f.to_bits()).collect();
        for q in &result.quantities {
            bits.extend(q.nominal.iter().map(|v| v.to_bits()));
            for s in &q.sscm {
                bits.push(s.mean.to_bits());
                bits.push(s.std.to_bits());
            }
        }
        bits
    }

    #[test]
    fn adaptive_sweep_with_loose_tolerance_is_bit_identical_to_the_fixed_sweep() {
        let analysis = tiny_analysis(false, true);
        let grid = [1.0e8, 1.0e9, 5.0e9];
        let fixed = analysis.run_frequency_sweep(&grid).unwrap();
        // A tolerance no spectrum can violate: wave 0 only, no refinement —
        // and the persistent-state path must reproduce the fixed-grid
        // engine bit for bit.
        let loose = AdaptiveSweepOptions {
            rel_tolerance: 1.0e9,
            ..AdaptiveSweepOptions::default()
        };
        let adaptive = analysis
            .run_adaptive_frequency_sweep(&grid, &loose)
            .unwrap();
        assert_eq!(adaptive.waves, 0);
        assert!(!adaptive.budget_exhausted);
        assert_eq!(adaptive.refined_point_count(), 0);
        assert!(adaptive.origins.iter().all(|o| *o == PointOrigin::Coarse));
        assert_eq!(
            sweep_bits(&fixed),
            sweep_bits(&adaptive.sweep),
            "adaptive wave 0 diverged from the fixed-grid sweep"
        );
    }

    #[test]
    fn adaptive_sweep_refines_where_the_spectrum_curves() {
        // Lightly doped silicon puts the conduction→displacement transition
        // inside the band, so the interface-current spectrum sweeps two
        // decades instead of sitting flat and the indicator has curvature
        // to find.
        let mut analysis = tiny_analysis(false, true);
        analysis.config.nominal_donor = 2.0e1;
        let analysis = analysis;
        // A deliberately coarse grid over the transition region with a
        // tight tolerance: refinement must engage, stay within budget and
        // keep the grid sorted with consistent provenance.
        let grid = [1.0e8, 1.0e9, 1.0e10];
        let options = AdaptiveSweepOptions {
            rel_tolerance: 1.0e-4,
            max_points: 12,
            max_depth: 4,
        };
        let adaptive = analysis
            .run_adaptive_frequency_sweep(&grid, &options)
            .unwrap();
        let frequencies = &adaptive.sweep.frequencies;
        assert!(adaptive.waves >= 1, "refinement never engaged");
        assert!(adaptive.refined_point_count() >= 1);
        assert!(frequencies.len() <= options.max_points);
        assert!(
            frequencies.windows(2).all(|w| w[1] > w[0]),
            "refined grid must stay strictly increasing: {frequencies:?}"
        );
        assert_eq!(adaptive.origins.len(), frequencies.len());
        // Coarse points survive refinement.
        for f in grid {
            assert!(
                frequencies.iter().any(|g| (g - f).abs() < 1e-6 * f),
                "coarse point {f} lost"
            );
        }
        // Every refined point respects the depth cap and its wave index.
        for origin in &adaptive.origins {
            if let PointOrigin::Refined { wave, depth } = origin {
                assert!(*depth >= 1 && *depth <= options.max_depth);
                assert!(*wave >= 1 && *wave <= adaptive.waves);
            }
        }
        // All spectra stay finite and positive on this structure.
        let q = &adaptive.sweep.quantities[0];
        for fi in 0..frequencies.len() {
            assert!(q.nominal[fi].is_finite() && q.nominal[fi] > 0.0);
            assert!(q.sscm[fi].mean.is_finite());
            assert!(q.sscm[fi].std.is_finite() && q.sscm[fi].std >= 0.0);
        }
    }

    /// A sub-threshold-mesh analysis whose DC/AC systems take the direct-LU
    /// strategy, so the cross-sample symbolic seeding actually engages.
    fn tiny_direct_analysis(reuse_symbolic: bool) -> VariationalAnalysis {
        let structure = build_metalplug_structure(&MetalPlugConfig::tiny());
        let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
            terminal: "plug1".to_string(),
        });
        config.mc_runs = 8;
        config.energy_fraction = 0.85;
        config.max_reduced_per_group = 2;
        config.solver.reuse_symbolic = reuse_symbolic;
        config.variations = VariationSpec {
            roughness: None,
            doping: Some(DopingVariationConfig {
                max_nodes: 12,
                ..DopingVariationConfig::paper_default()
            }),
            via_params: None,
        };
        VariationalAnalysis::new(structure, config)
    }

    /// Bit-level fingerprint of everything statistical in a result.
    fn result_bits(result: &AnalysisResult) -> Vec<u64> {
        result
            .quantities
            .iter()
            .flat_map(|q| {
                [
                    q.nominal,
                    q.sscm.mean,
                    q.sscm.std,
                    q.monte_carlo.mean,
                    q.monte_carlo.std,
                ]
            })
            .map(f64::to_bits)
            .collect()
    }

    #[test]
    fn seeded_sample_sweep_is_bit_identical_to_the_unseeded_path() {
        let seeded = tiny_direct_analysis(true).run().unwrap();
        // The nominal solve published donors for both stages, and the
        // doping perturbations stayed on the nominal pivot sequences.
        assert!(seeded.seed_reuse.dc_seeded, "{:?}", seeded.seed_reuse);
        assert!(seeded.seed_reuse.ac_seeded, "{:?}", seeded.seed_reuse);
        assert_eq!(seeded.seed_reuse.dc_stale_refactorizations, 0);
        assert_eq!(seeded.seed_reuse.ac_stale_refactorizations, 0);

        let unseeded = tiny_direct_analysis(false).run().unwrap();
        assert!(!unseeded.seed_reuse.dc_seeded);
        assert_eq!(
            result_bits(&seeded),
            result_bits(&unseeded),
            "cross-sample symbolic reuse changed the sweep results:\n\
             seeded   = {seeded:?}\n\
             unseeded = {unseeded:?}"
        );
    }

    #[test]
    fn no_variation_is_a_configuration_error() {
        let analysis = tiny_analysis(false, false);
        match analysis.run() {
            Err(AnalysisError::Configuration(msg)) => {
                assert!(msg.contains("no variation"));
            }
            other => panic!("expected configuration error, got {other:?}"),
        }
    }

    #[test]
    fn full_workflow_runs_and_sscm_tracks_mc_on_tiny_problem() {
        let analysis = tiny_analysis(false, true);
        let result = analysis.run().unwrap();
        assert_eq!(result.quantities.len(), 1);
        let q = &result.quantities[0];
        assert!(q.nominal > 0.0);
        assert!(q.sscm.mean > 0.0);
        assert!(q.monte_carlo.mean > 0.0);
        // With only 8 MC samples the agreement is loose; just require the
        // same order of magnitude.
        assert!(q.mean_error() < 0.5, "mean error {}", q.mean_error());
        assert!(result.collocation_runs >= result.total_reduced_dim());
        assert!(!result.reductions.is_empty());
        assert!(result
            .reductions
            .iter()
            .all(|g| g.reduced_dim <= g.full_dim));
    }
}
