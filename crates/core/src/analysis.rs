//! The variational analysis workflow (nominal solve → weights → reduction →
//! SSCM + Monte Carlo).
//!
//! The SSCM collocation points and the Monte-Carlo reference runs are
//! independent deterministic solves; both stages fan out over
//! [`vaem_parallel::par_map`] worker threads (`VAEM_THREADS`, hardware
//! default). Every Monte-Carlo run draws from its own RNG stream seeded by
//! `(config.seed, run index)`, so the results are bit-for-bit identical for
//! any thread count.

use crate::config::{AnalysisConfig, QuantitySet, ReductionMethod};
use crate::report::ComparisonTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use vaem_fvm::{
    postprocess, AcSolution, CoupledSolver, DcSolution, FvmError, SeedReuseStats, SolverTopology,
};
use vaem_mesh::{NodeId, Structure};
use vaem_numeric::dense::DMatrix;
use vaem_numeric::stats::RunningStats;
use vaem_numeric::NumericError;
use vaem_parallel::{par_map, par_map_indices};
use vaem_physics::DopingProfile;
use vaem_stochastic::{SparseCollocation, SummaryStats};
use vaem_variation::{
    apply_roughness, covariance_matrix, standard_normal_vector, CorrelationKernel,
    FacetPerturbation, FullRankGaussian, Pfa, VariableReduction, Wpfa,
};

/// Derives the RNG seed of one Monte-Carlo run from the base seed and the
/// run index.
///
/// Each run owns an independent generator, so runs can be evaluated in any
/// order — and on any number of threads — without changing the sampled
/// ensemble. The odd multiplier makes the map `run ↦ seed` a bijection for a
/// fixed base; `StdRng::seed_from_u64` scrambles the sequential values into
/// decorrelated streams.
fn mc_run_seed(base: u64, run: u64) -> u64 {
    base.wrapping_add(run.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Errors of the analysis workflow.
#[derive(Debug)]
pub enum AnalysisError {
    /// The deterministic coupled solver failed.
    Solver(FvmError),
    /// A dense numerical kernel (reduction, chaos fit) failed.
    Numeric(NumericError),
    /// The configuration references missing facets/terminals or is empty.
    Configuration(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Solver(e) => write!(f, "deterministic solver failed: {e}"),
            AnalysisError::Numeric(e) => write!(f, "numerical kernel failed: {e}"),
            AnalysisError::Configuration(d) => write!(f, "configuration error: {d}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<FvmError> for AnalysisError {
    fn from(e: FvmError) -> Self {
        AnalysisError::Solver(e)
    }
}

impl From<NumericError> for AnalysisError {
    fn from(e: NumericError) -> Self {
        AnalysisError::Numeric(e)
    }
}

/// Statistics of one output quantity: SSCM vs Monte-Carlo, as in the paper's
/// tables.
#[derive(Debug, Clone)]
pub struct QuantityResult {
    /// Output label (e.g. `"J(plug1) [uA]"`, `"C_tsv1,tsv2 [fF]"`).
    pub label: String,
    /// Deterministic (nominal-geometry, nominal-doping) value.
    pub nominal: f64,
    /// SSCM estimate.
    pub sscm: SummaryStats,
    /// Monte-Carlo reference.
    pub monte_carlo: SummaryStats,
}

impl QuantityResult {
    /// Relative error of the SSCM mean against the MC mean.
    pub fn mean_error(&self) -> f64 {
        vaem_numeric::stats::relative_error(self.sscm.mean, self.monte_carlo.mean, 1e-30)
    }

    /// Relative error of the SSCM standard deviation against the MC one.
    pub fn std_error(&self) -> f64 {
        vaem_numeric::stats::relative_error(self.sscm.std, self.monte_carlo.std, 1e-30)
    }
}

/// Variable-reduction summary for one variation group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupReduction {
    /// Group name (facet group or `"doping"`).
    pub name: String,
    /// Number of correlated variables before reduction.
    pub full_dim: usize,
    /// Number of independent factors after reduction.
    pub reduced_dim: usize,
}

/// Full result of a variational analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Per-quantity statistics.
    pub quantities: Vec<QuantityResult>,
    /// Variable-reduction summary per group.
    pub reductions: Vec<GroupReduction>,
    /// Number of deterministic solves used by the SSCM stage.
    pub collocation_runs: usize,
    /// Number of Monte-Carlo samples.
    pub mc_runs: usize,
    /// Wall-clock seconds of the SSCM stage (including the nominal solve).
    pub sscm_seconds: f64,
    /// Wall-clock seconds of the Monte-Carlo stage.
    pub mc_seconds: f64,
    /// Cross-sample symbolic-reuse statistics: whether the nominal solve
    /// published DC/AC donor factorizations and how many samples had to
    /// re-pivot because the donor's pivot sequence went numerically stale
    /// for their perturbed values.
    pub seed_reuse: SeedReuseStats,
}

impl AnalysisResult {
    /// Speed-up of SSCM over Monte Carlo (wall-clock).
    pub fn speedup(&self) -> f64 {
        if self.sscm_seconds > 0.0 {
            self.mc_seconds / self.sscm_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Renders the result as a paper-style comparison table.
    pub fn table(&self) -> ComparisonTable {
        ComparisonTable::from_result(self)
    }

    /// Total number of reduced random variables.
    pub fn total_reduced_dim(&self) -> usize {
        self.reductions.iter().map(|g| g.reduced_dim).sum()
    }
}

/// One output quantity across a frequency grid (see
/// [`VariationalAnalysis::run_frequency_sweep`]).
#[derive(Debug, Clone)]
pub struct SweepQuantity {
    /// Output label (e.g. `"J(plug1) [uA]"`).
    pub label: String,
    /// Deterministic (nominal-geometry, nominal-doping) value per frequency.
    pub nominal: Vec<f64>,
    /// SSCM-propagated statistics per frequency.
    pub sscm: Vec<SummaryStats>,
}

/// Result of a swept-frequency variational analysis: the configured output
/// quantities — capacitance entries or interface currents — resolved over a
/// frequency grid, with SSCM statistics per grid point.
#[derive(Debug, Clone)]
pub struct FrequencySweepResult {
    /// The swept frequency grid (Hz), in input order.
    pub frequencies: Vec<f64>,
    /// Per-quantity spectra.
    pub quantities: Vec<SweepQuantity>,
    /// Variable-reduction summary per group.
    pub reductions: Vec<GroupReduction>,
    /// Number of deterministic sample sweeps used by the SSCM stage.
    pub collocation_runs: usize,
    /// Wall-clock seconds of the whole sweep (nominal + collocation).
    pub seconds: f64,
    /// Cross-sample symbolic-reuse statistics (see
    /// [`AnalysisResult::seed_reuse`]).
    pub seed_reuse: SeedReuseStats,
}

impl FrequencySweepResult {
    /// Total number of deterministic linear AC solves performed
    /// (`(collocation runs + nominal) × grid points`).
    pub fn ac_solve_count(&self) -> usize {
        (self.collocation_runs + 1) * self.frequencies.len()
    }
}

/// Per-group reductions plus their summaries.
type GroupReductions = (Vec<Box<dyn VariableReduction>>, Vec<GroupReduction>);

/// The inputs of one deterministic evaluation: facet offsets plus doping
/// perturbations.
#[derive(Debug, Clone, Default)]
struct SampleInput {
    facet_offsets: Vec<(String, Vec<f64>)>,
    doping_deltas: Vec<(NodeId, f64)>,
}

/// One group of correlated variation variables.
struct VariationGroup {
    name: String,
    kind: GroupKind,
    covariance: DMatrix<f64>,
}

enum GroupKind {
    /// Geometry group: perturbs the listed facets; `slices[i]` is the range of
    /// the group's variable vector belonging to facet `facet_names[i]`.
    Geometry {
        facet_names: Vec<String>,
        slices: Vec<(usize, usize)>,
        nodes: Vec<NodeId>,
    },
    /// Doping group over the listed semiconductor nodes.
    Doping { nodes: Vec<NodeId> },
}

impl VariationGroup {
    fn dim(&self) -> usize {
        match &self.kind {
            GroupKind::Geometry { nodes, .. } => nodes.len(),
            GroupKind::Doping { nodes } => nodes.len(),
        }
    }

    fn nodes(&self) -> &[NodeId] {
        match &self.kind {
            GroupKind::Geometry { nodes, .. } => nodes,
            GroupKind::Doping { nodes } => nodes,
        }
    }
}

/// The paper's workflow bound to one structure and configuration.
pub struct VariationalAnalysis {
    structure: Structure,
    config: AnalysisConfig,
}

impl VariationalAnalysis {
    /// Creates an analysis for a structure.
    pub fn new(structure: Structure, config: AnalysisConfig) -> Self {
        Self { structure, config }
    }

    /// The analysed structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// The analysis configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Nominal doping profile (uniform donor concentration over the
    /// semiconductor region).
    pub fn nominal_doping(&self) -> DopingProfile {
        let semis = self.structure.semiconductor_nodes();
        DopingProfile::uniform_donor(
            self.structure.mesh.node_count(),
            &semis,
            self.config.nominal_donor,
        )
    }

    /// Evaluates the deterministic model for one realisation of the
    /// variations.
    ///
    /// `facet_offsets` maps facet names to per-node normal offsets;
    /// `doping_deltas` holds relative donor perturbations per node.
    ///
    /// # Errors
    /// Propagates deterministic-solver failures.
    pub fn evaluate_sample(
        &self,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
    ) -> Result<Vec<f64>, AnalysisError> {
        let topology = Arc::new(SolverTopology::build(&self.structure)?);
        self.evaluate_sample_with(&topology, facet_offsets, doping_deltas)
    }

    /// Builds the perturbed structure and doping profile of one sample.
    fn sample_problem(
        &self,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
    ) -> Result<(Structure, DopingProfile), AnalysisError> {
        // Perturbed geometry (positions only — the mesh topology is
        // invariant, which is what lets samples share a `SolverTopology`).
        let mut structure = self.structure.clone();
        if !facet_offsets.is_empty() {
            let model = self
                .config
                .variations
                .roughness
                .as_ref()
                .map(|r| r.model)
                .unwrap_or_default();
            let perturbations: Vec<FacetPerturbation<'_>> = facet_offsets
                .iter()
                .map(|(name, offsets)| {
                    let facet = self.structure.facet(name).ok_or_else(|| {
                        AnalysisError::Configuration(format!("unknown facet '{name}'"))
                    })?;
                    Ok(FacetPerturbation::new(facet, offsets.clone()))
                })
                .collect::<Result<_, AnalysisError>>()?;
            apply_roughness(&mut structure.mesh, model, &perturbations);
        }

        // Perturbed doping.
        let doping = self.nominal_doping().perturbed(doping_deltas);
        Ok((structure, doping))
    }

    /// Solver options for the perturbed-sample workers: identical to the
    /// configured options except that samples never *publish* symbolic
    /// donors onto the shared topology. The nominal solve (run before the
    /// fan-out) is the single designated donor, so which pivot sequence
    /// seeds the sweep can never depend on worker timing.
    fn sample_solver_options(&self) -> vaem_fvm::SolverOptions {
        vaem_fvm::SolverOptions {
            publish_symbolic: false,
            ..self.config.solver.clone()
        }
    }

    /// [`VariationalAnalysis::evaluate_sample`] against a shared
    /// [`SolverTopology`] (terminal labelling, adjacency and sparsity
    /// patterns built once per analysis, not once per sample).
    fn evaluate_sample_with(
        &self,
        topology: &Arc<SolverTopology>,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
    ) -> Result<Vec<f64>, AnalysisError> {
        let (structure, doping) = self.sample_problem(facet_offsets, doping_deltas)?;
        let solver = CoupledSolver::with_topology(
            &structure,
            &doping,
            self.sample_solver_options(),
            topology.clone(),
        )?;
        let dc = solver.solve_dc()?;
        self.extract_outputs(&solver, &dc)
    }

    /// Evaluates one sample across a whole frequency grid with the
    /// sweep-aware AC operator (one assembly + symbolic factorization, a
    /// numeric refactorization per point, warm-started solves).
    ///
    /// Returns the outputs flattened frequency-major:
    /// `[f0 q0, f0 q1, ..., f1 q0, ...]`.
    fn evaluate_spectrum_with(
        &self,
        topology: &Arc<SolverTopology>,
        facet_offsets: &[(String, Vec<f64>)],
        doping_deltas: &[(NodeId, f64)],
        frequencies: &[f64],
    ) -> Result<Vec<f64>, AnalysisError> {
        let (structure, doping) = self.sample_problem(facet_offsets, doping_deltas)?;
        let solver = CoupledSolver::with_topology(
            &structure,
            &doping,
            self.sample_solver_options(),
            topology.clone(),
        )?;
        let dc = solver.solve_dc()?;
        let mut operator = solver.prepare_ac_sweep(&dc)?;
        let sweep = operator.sweep_terminal(frequencies, self.driven_terminal())?;
        let mut out = Vec::with_capacity(frequencies.len() * self.config.quantities.len());
        for ac in &sweep {
            out.extend(self.extract_outputs_from(&solver, ac)?);
        }
        Ok(out)
    }

    /// The terminal driven with 1 V by the AC stage of every evaluation.
    fn driven_terminal(&self) -> &str {
        match &self.config.quantities {
            QuantitySet::InterfaceCurrent { terminal } => terminal,
            QuantitySet::CapacitanceColumn { driven, .. } => driven,
        }
    }

    fn extract_outputs(
        &self,
        solver: &CoupledSolver<'_>,
        dc: &DcSolution,
    ) -> Result<Vec<f64>, AnalysisError> {
        let ac = solver.solve_ac(dc, self.driven_terminal(), self.config.frequency)?;
        self.extract_outputs_from(solver, &ac)
    }

    /// Reads the configured quantities off an already-solved AC solution
    /// (driven at [`VariationalAnalysis::driven_terminal`]).
    fn extract_outputs_from(
        &self,
        solver: &CoupledSolver<'_>,
        ac: &AcSolution,
    ) -> Result<Vec<f64>, AnalysisError> {
        match &self.config.quantities {
            QuantitySet::InterfaceCurrent { terminal } => {
                let current = postprocess::interface_current(solver, ac, terminal)?;
                Ok(vec![current.abs() * 1.0e6])
            }
            QuantitySet::CapacitanceColumn { terminals, .. } => {
                let column = postprocess::capacitance_column_from(solver, ac)?;
                terminals
                    .iter()
                    .map(|t| {
                        column.get(t).copied().map(|c| c * 1.0e15).ok_or_else(|| {
                            AnalysisError::Configuration(format!("unknown terminal '{t}'"))
                        })
                    })
                    .collect()
            }
        }
    }

    /// Builds the variation groups from the configuration.
    fn build_groups(&self) -> Result<Vec<VariationGroup>, AnalysisError> {
        let mesh = &self.structure.mesh;
        let mut groups = Vec::new();

        if let Some(rough) = &self.config.variations.roughness {
            let facet_names: Vec<String> = if rough.facets.is_empty() {
                self.structure
                    .rough_facets
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            } else {
                rough.facets.clone()
            };
            if facet_names.is_empty() {
                return Err(AnalysisError::Configuration(
                    "roughness requested but the structure has no rough facets".to_string(),
                ));
            }
            // Partition facets into merged groups + singletons.
            let mut assigned: Vec<Vec<String>> = Vec::new();
            for merged in &rough.merged_groups {
                let members: Vec<String> = merged
                    .iter()
                    .filter(|m| facet_names.contains(m))
                    .cloned()
                    .collect();
                if !members.is_empty() {
                    assigned.push(members);
                }
            }
            for name in &facet_names {
                if !assigned.iter().any(|g| g.contains(name)) {
                    assigned.push(vec![name.clone()]);
                }
            }
            for members in assigned {
                let mut nodes: Vec<NodeId> = Vec::new();
                let mut slices = Vec::new();
                for name in &members {
                    let facet = self.structure.facet(name).ok_or_else(|| {
                        AnalysisError::Configuration(format!("unknown facet '{name}'"))
                    })?;
                    let start = nodes.len();
                    nodes.extend_from_slice(&facet.nodes);
                    slices.push((start, nodes.len()));
                }
                let positions: Vec<[f64; 3]> = nodes.iter().map(|&n| mesh.position(n)).collect();
                let covariance = covariance_matrix(
                    &positions,
                    rough.sigma,
                    CorrelationKernel::Exponential {
                        length: rough.correlation_length,
                    },
                );
                groups.push(VariationGroup {
                    name: members.join("+"),
                    kind: GroupKind::Geometry {
                        facet_names: members,
                        slices,
                        nodes,
                    },
                    covariance,
                });
            }
        }

        if let Some(doping) = &self.config.variations.doping {
            let semis = self.structure.semiconductor_nodes();
            if semis.is_empty() {
                return Err(AnalysisError::Configuration(
                    "doping variation requested but the structure has no semiconductor".to_string(),
                ));
            }
            let z_top = semis
                .iter()
                .map(|&n| mesh.position(n)[2])
                .fold(f64::NEG_INFINITY, f64::max);
            let mut candidates: Vec<NodeId> = semis
                .into_iter()
                .filter(|&n| mesh.position(n)[2] >= z_top - doping.region_depth)
                .collect();
            if candidates.len() > doping.max_nodes && doping.max_nodes > 0 {
                let stride = candidates.len().div_ceil(doping.max_nodes);
                candidates = candidates.into_iter().step_by(stride).collect();
            }
            let positions: Vec<[f64; 3]> = candidates.iter().map(|&n| mesh.position(n)).collect();
            let covariance = covariance_matrix(
                &positions,
                doping.relative_sigma,
                CorrelationKernel::Exponential {
                    length: doping.correlation_length,
                },
            );
            groups.push(VariationGroup {
                name: "doping".to_string(),
                kind: GroupKind::Doping { nodes: candidates },
                covariance,
            });
        }

        if groups.is_empty() {
            return Err(AnalysisError::Configuration(
                "no variation source is enabled".to_string(),
            ));
        }
        Ok(groups)
    }

    /// Influence weights of every node, from the nominal AC solution
    /// (w_i = |J⁰_i|·nodeVol_i, the paper's eq. 9).
    fn nominal_weights(&self, ac: &AcSolution) -> Result<Vec<f64>, AnalysisError> {
        let mesh = &self.structure.mesh;
        let mut weights = vec![0.0_f64; mesh.node_count()];
        let mut area_acc = vec![0.0_f64; mesh.node_count()];
        for lid in mesh.link_ids() {
            let link = mesh.link(lid);
            let current = (ac.admittance_at(lid)
                * (ac.potential_at(link.from) - ac.potential_at(link.to)))
            .abs();
            let area = mesh.dual_area(lid);
            for node in [link.from, link.to] {
                weights[node.index()] += current;
                area_acc[node.index()] += area;
            }
        }
        for node in mesh.node_ids() {
            let i = node.index();
            let density = if area_acc[i] > 0.0 {
                weights[i] / area_acc[i]
            } else {
                0.0
            };
            weights[i] = density * mesh.node_volume(node);
        }
        Ok(weights)
    }

    /// Builds the per-group reduction with the configured method.
    fn build_reduction(
        &self,
        group: &VariationGroup,
        node_weights: &[f64],
    ) -> Result<Box<dyn VariableReduction>, AnalysisError> {
        let weights: Vec<f64> = group
            .nodes()
            .iter()
            .map(|&n| node_weights[n.index()])
            .collect();
        let max_w = weights.iter().cloned().fold(0.0_f64, f64::max);
        // The capped constructors decompose the covariance exactly once,
        // whether or not the rank cap bites.
        let reduction: Box<dyn VariableReduction> = match self.config.reduction {
            ReductionMethod::Wpfa if max_w > 0.0 => Box::new(Wpfa::new_capped(
                &group.covariance,
                &weights,
                self.config.energy_fraction,
                self.config.max_reduced_per_group,
            )?),
            _ => Box::new(Pfa::new_capped(
                &group.covariance,
                self.config.energy_fraction,
                self.config.max_reduced_per_group,
            )?),
        };
        Ok(reduction)
    }

    /// Converts a full variation vector of one group into the sample inputs.
    fn group_sample(
        &self,
        group: &VariationGroup,
        xi: &[f64],
        facet_offsets: &mut Vec<(String, Vec<f64>)>,
        doping_deltas: &mut Vec<(NodeId, f64)>,
    ) {
        match &group.kind {
            GroupKind::Geometry {
                facet_names,
                slices,
                ..
            } => {
                for (name, &(lo, hi)) in facet_names.iter().zip(slices.iter()) {
                    facet_offsets.push((name.clone(), xi[lo..hi].to_vec()));
                }
            }
            GroupKind::Doping { nodes } => {
                for (&node, &delta) in nodes.iter().zip(xi.iter()) {
                    doping_deltas.push((node, delta));
                }
            }
        }
    }

    /// Builds every per-group reduction plus its summary.
    fn build_reductions(
        &self,
        groups: &[VariationGroup],
        node_weights: &[f64],
    ) -> Result<GroupReductions, AnalysisError> {
        let mut reductions: Vec<Box<dyn VariableReduction>> = Vec::new();
        let mut reduction_summary = Vec::new();
        for group in groups {
            let reduction = self.build_reduction(group, node_weights)?;
            reduction_summary.push(GroupReduction {
                name: group.name.clone(),
                full_dim: group.dim(),
                reduced_dim: reduction.reduced_dim(),
            });
            reductions.push(reduction);
        }
        Ok((reductions, reduction_summary))
    }

    /// Expands every collocation point into its sample inputs (cheap,
    /// serial; the deterministic solves fan out afterwards).
    fn collocation_inputs(
        &self,
        sscm: &SparseCollocation,
        groups: &[VariationGroup],
        reductions: &[Box<dyn VariableReduction>],
    ) -> Vec<SampleInput> {
        sscm.points()
            .iter()
            .map(|point| {
                let mut input = SampleInput::default();
                let mut offset = 0;
                for (group, reduction) in groups.iter().zip(reductions.iter()) {
                    let d = reduction.reduced_dim();
                    let zeta = &point[offset..offset + d];
                    let xi = reduction.expand(zeta);
                    self.group_sample(
                        group,
                        &xi,
                        &mut input.facet_offsets,
                        &mut input.doping_deltas,
                    );
                    offset += d;
                }
                input
            })
            .collect()
    }

    /// Runs the complete workflow: nominal solve, wPFA/PFA reduction, SSCM
    /// and the Monte-Carlo reference.
    ///
    /// # Errors
    /// Propagates solver, reduction and fitting failures.
    pub fn run(&self) -> Result<AnalysisResult, AnalysisError> {
        let groups = self.build_groups()?;
        // Terminal labelling, adjacency and sparsity patterns are
        // perturbation-invariant: build them once and share them read-only
        // with every sample solver on every worker thread.
        let topology = Arc::new(SolverTopology::build(&self.structure)?);

        // --- Nominal solve (also provides the wPFA weights). One AC solve
        // covers both the nominal outputs and the influence weights.
        let sscm_start = Instant::now();
        let nominal_doping = self.nominal_doping();
        let nominal_solver = CoupledSolver::with_topology(
            &self.structure,
            &nominal_doping,
            self.config.solver.clone(),
            topology.clone(),
        )?;
        let nominal_dc = nominal_solver.solve_dc()?;
        let nominal_ac =
            nominal_solver.solve_ac(&nominal_dc, self.driven_terminal(), self.config.frequency)?;
        let nominal_outputs = self.extract_outputs_from(&nominal_solver, &nominal_ac)?;
        let node_weights = self.nominal_weights(&nominal_ac)?;

        // --- Variable reduction. ---
        let (reductions, reduction_summary) = self.build_reductions(&groups, &node_weights)?;
        let total_dim: usize = reductions.iter().map(|r| r.reduced_dim()).sum();

        // --- SSCM stage: fan the independent deterministic solves out over
        // the worker threads.
        let sscm = SparseCollocation::new(total_dim);
        let sample_inputs = self.collocation_inputs(&sscm, &groups, &reductions);
        let outputs: Vec<Vec<f64>> = par_map(&sample_inputs, |_, input| {
            self.evaluate_sample_with(&topology, &input.facet_offsets, &input.doping_deltas)
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
        let pces = sscm.fit(&outputs)?;
        let sscm_seconds = sscm_start.elapsed().as_secs_f64();

        // --- Monte-Carlo reference (full-rank sampling of every group).
        // Each run draws from its own `(seed, run)` stream, so the sweep is
        // deterministic for any thread count.
        let mc_start = Instant::now();
        let full_rank: Vec<FullRankGaussian> = groups
            .iter()
            .map(|g| FullRankGaussian::new(&g.covariance))
            .collect::<Result<_, _>>()?;
        let n_outputs = self.config.quantities.len();
        let mc_samples: Vec<Vec<f64>> = par_map_indices(self.config.mc_runs, |run| {
            let mut rng = StdRng::seed_from_u64(mc_run_seed(self.config.seed, run as u64));
            let mut input = SampleInput::default();
            for (group, sampler) in groups.iter().zip(full_rank.iter()) {
                let z = standard_normal_vector(&mut rng, sampler.reduced_dim());
                let xi = sampler.expand(&z);
                self.group_sample(
                    group,
                    &xi,
                    &mut input.facet_offsets,
                    &mut input.doping_deltas,
                );
            }
            self.evaluate_sample_with(&topology, &input.facet_offsets, &input.doping_deltas)
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
        let mut mc_stats = vec![RunningStats::new(); n_outputs];
        for sample in &mc_samples {
            for (acc, v) in mc_stats.iter_mut().zip(sample.iter()) {
                acc.push(*v);
            }
        }
        let mc_seconds = mc_start.elapsed().as_secs_f64();

        // --- Assemble the result. ---
        let labels = self.config.quantities.labels();
        let quantities = labels
            .into_iter()
            .enumerate()
            .map(|(q, label)| QuantityResult {
                label,
                nominal: nominal_outputs[q],
                sscm: SummaryStats::new(pces[q].mean(), pces[q].std()),
                monte_carlo: SummaryStats::new(mc_stats[q].mean(), mc_stats[q].sample_std()),
            })
            .collect();

        Ok(AnalysisResult {
            quantities,
            reductions: reduction_summary,
            collocation_runs: sscm.run_count(),
            mc_runs: self.config.mc_runs,
            sscm_seconds,
            mc_seconds,
            seed_reuse: topology.seed_stats(),
        })
    }

    /// Runs the swept-frequency experiment: the nominal structure and every
    /// SSCM collocation sample are evaluated over the whole `frequencies`
    /// grid (capacitance / interface-current spectra), and a polynomial
    /// chaos expansion is fitted per (frequency, quantity) pair.
    ///
    /// Every sample performs one DC solve and one
    /// [`AcSweepOperator::sweep_terminal`](vaem_fvm::AcSweepOperator) pass —
    /// one AC assembly and one symbolic factorization for the whole grid,
    /// a numeric refactorization and a warm-started solve per point — and
    /// the samples fan out over the `vaem_parallel` worker threads, so the
    /// spectra are bit-identical for any `VAEM_THREADS` value.
    ///
    /// The wPFA influence weights are taken from the first grid point; the
    /// configured single-point `frequency` is not used.
    ///
    /// # Errors
    /// Propagates solver, reduction and fitting failures; an empty or
    /// non-finite grid is a configuration error.
    pub fn run_frequency_sweep(
        &self,
        frequencies: &[f64],
    ) -> Result<FrequencySweepResult, AnalysisError> {
        if frequencies.is_empty() {
            return Err(AnalysisError::Configuration(
                "frequency sweep needs a non-empty grid".to_string(),
            ));
        }
        if frequencies.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return Err(AnalysisError::Configuration(
                "frequency sweep grid must be finite and non-negative".to_string(),
            ));
        }
        let start = Instant::now();
        let groups = self.build_groups()?;
        let topology = Arc::new(SolverTopology::build(&self.structure)?);

        // --- Nominal sweep: provides the per-frequency nominal outputs and
        // the wPFA weights (from the first grid point).
        let nominal_doping = self.nominal_doping();
        let nominal_solver = CoupledSolver::with_topology(
            &self.structure,
            &nominal_doping,
            self.config.solver.clone(),
            topology.clone(),
        )?;
        let nominal_dc = nominal_solver.solve_dc()?;
        let mut nominal_operator = nominal_solver.prepare_ac_sweep(&nominal_dc)?;
        let nominal_sweep = nominal_operator.sweep_terminal(frequencies, self.driven_terminal())?;
        let node_weights = self.nominal_weights(&nominal_sweep[0])?;
        let mut nominal_flat = Vec::with_capacity(frequencies.len() * self.config.quantities.len());
        for ac in &nominal_sweep {
            nominal_flat.extend(self.extract_outputs_from(&nominal_solver, ac)?);
        }

        // --- Reduction + collocation over the spectra: the PCE machinery is
        // output-agnostic, so the per-frequency quantities are fitted as one
        // flat (frequency-major) output vector per sample.
        let (reductions, reduction_summary) = self.build_reductions(&groups, &node_weights)?;
        let total_dim: usize = reductions.iter().map(|r| r.reduced_dim()).sum();
        let sscm = SparseCollocation::new(total_dim);
        let sample_inputs = self.collocation_inputs(&sscm, &groups, &reductions);
        let outputs: Vec<Vec<f64>> = par_map(&sample_inputs, |_, input| {
            self.evaluate_spectrum_with(
                &topology,
                &input.facet_offsets,
                &input.doping_deltas,
                frequencies,
            )
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
        let pces = sscm.fit(&outputs)?;

        let labels = self.config.quantities.labels();
        let n_q = labels.len();
        let quantities = labels
            .into_iter()
            .enumerate()
            .map(|(q, label)| SweepQuantity {
                label,
                nominal: (0..frequencies.len())
                    .map(|fi| nominal_flat[fi * n_q + q])
                    .collect(),
                sscm: (0..frequencies.len())
                    .map(|fi| {
                        let pce = &pces[fi * n_q + q];
                        SummaryStats::new(pce.mean(), pce.std())
                    })
                    .collect(),
            })
            .collect();

        Ok(FrequencySweepResult {
            frequencies: frequencies.to_vec(),
            quantities,
            reductions: reduction_summary,
            collocation_runs: sscm.run_count(),
            seconds: start.elapsed().as_secs_f64(),
            seed_reuse: topology.seed_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DopingVariationConfig, RoughnessConfig, VariationSpec};
    use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

    /// A deliberately tiny configuration so the full workflow runs in a test.
    fn tiny_analysis(roughness: bool, doping: bool) -> VariationalAnalysis {
        let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
        let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
            terminal: "plug1".to_string(),
        });
        config.mc_runs = 8;
        config.energy_fraction = 0.85;
        config.max_reduced_per_group = 2;
        config.variations = VariationSpec {
            roughness: roughness.then(|| RoughnessConfig {
                sigma: 0.3,
                ..RoughnessConfig::paper_default()
            }),
            doping: doping.then(|| DopingVariationConfig {
                max_nodes: 12,
                ..DopingVariationConfig::paper_default()
            }),
        };
        VariationalAnalysis::new(structure, config)
    }

    #[test]
    fn nominal_sample_matches_unperturbed_evaluation() {
        let analysis = tiny_analysis(true, true);
        let a = analysis.evaluate_sample(&[], &[]).unwrap();
        let b = analysis.evaluate_sample(&[], &[]).unwrap();
        assert_eq!(a.len(), 1);
        assert!(a[0] > 0.0);
        assert!(
            (a[0] - b[0]).abs() < 1e-12,
            "evaluation must be deterministic"
        );
    }

    #[test]
    fn doping_perturbation_changes_the_interface_current() {
        let analysis = tiny_analysis(false, true);
        let base = analysis.evaluate_sample(&[], &[]).unwrap()[0];
        let semis = analysis.structure().semiconductor_nodes();
        let deltas: Vec<(NodeId, f64)> = semis.iter().map(|&n| (n, 0.3)).collect();
        let up = analysis.evaluate_sample(&[], &deltas).unwrap()[0];
        assert!(
            (up - base).abs() / base > 1e-3,
            "30% doping change should move the current: {base} -> {up}"
        );
    }

    #[test]
    fn frequency_sweep_produces_consistent_spectra() {
        let analysis = tiny_analysis(false, true);
        let frequencies = [1.0e8, 1.0e9, 5.0e9];
        let result = analysis.run_frequency_sweep(&frequencies).unwrap();
        assert_eq!(result.frequencies, frequencies);
        assert_eq!(result.quantities.len(), 1);
        let q = &result.quantities[0];
        assert_eq!(q.nominal.len(), frequencies.len());
        assert_eq!(q.sscm.len(), frequencies.len());
        for (fi, _) in frequencies.iter().enumerate() {
            assert!(q.nominal[fi].is_finite() && q.nominal[fi] > 0.0);
            assert!(q.sscm[fi].mean.is_finite() && q.sscm[fi].mean > 0.0);
            assert!(q.sscm[fi].std.is_finite() && q.sscm[fi].std >= 0.0);
            // The SSCM mean stays in the neighbourhood of the nominal value.
            let rel = (q.sscm[fi].mean - q.nominal[fi]).abs() / q.nominal[fi];
            assert!(rel < 0.5, "sscm mean drifted at point {fi}: {rel}");
        }
        // The interface current of the mostly capacitive plug grows with
        // frequency, so the spectrum must not be flat.
        assert!(q.nominal[2] > q.nominal[0]);
        assert!(result.collocation_runs > 0);
        assert_eq!(
            result.ac_solve_count(),
            (result.collocation_runs + 1) * frequencies.len()
        );

        // Each grid point must match the single-frequency analysis run at
        // that frequency (same collocation machinery, same solver path).
        let mut config = analysis.config().clone();
        config.frequency = frequencies[1];
        let single = VariationalAnalysis::new(analysis.structure().clone(), config)
            .run()
            .unwrap();
        let rel = (single.quantities[0].nominal - q.nominal[1]).abs() / q.nominal[1];
        assert!(rel < 1e-9, "nominal mismatch vs single-point run: {rel}");
    }

    #[test]
    fn empty_or_invalid_frequency_grid_is_rejected() {
        let analysis = tiny_analysis(false, true);
        assert!(matches!(
            analysis.run_frequency_sweep(&[]),
            Err(AnalysisError::Configuration(_))
        ));
        assert!(matches!(
            analysis.run_frequency_sweep(&[1.0e9, f64::NAN]),
            Err(AnalysisError::Configuration(_))
        ));
    }

    /// A sub-threshold-mesh analysis whose DC/AC systems take the direct-LU
    /// strategy, so the cross-sample symbolic seeding actually engages.
    fn tiny_direct_analysis(reuse_symbolic: bool) -> VariationalAnalysis {
        let structure = build_metalplug_structure(&MetalPlugConfig::tiny());
        let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
            terminal: "plug1".to_string(),
        });
        config.mc_runs = 8;
        config.energy_fraction = 0.85;
        config.max_reduced_per_group = 2;
        config.solver.reuse_symbolic = reuse_symbolic;
        config.variations = VariationSpec {
            roughness: None,
            doping: Some(DopingVariationConfig {
                max_nodes: 12,
                ..DopingVariationConfig::paper_default()
            }),
        };
        VariationalAnalysis::new(structure, config)
    }

    /// Bit-level fingerprint of everything statistical in a result.
    fn result_bits(result: &AnalysisResult) -> Vec<u64> {
        result
            .quantities
            .iter()
            .flat_map(|q| {
                [
                    q.nominal,
                    q.sscm.mean,
                    q.sscm.std,
                    q.monte_carlo.mean,
                    q.monte_carlo.std,
                ]
            })
            .map(f64::to_bits)
            .collect()
    }

    #[test]
    fn seeded_sample_sweep_is_bit_identical_to_the_unseeded_path() {
        let seeded = tiny_direct_analysis(true).run().unwrap();
        // The nominal solve published donors for both stages, and the
        // doping perturbations stayed on the nominal pivot sequences.
        assert!(seeded.seed_reuse.dc_seeded, "{:?}", seeded.seed_reuse);
        assert!(seeded.seed_reuse.ac_seeded, "{:?}", seeded.seed_reuse);
        assert_eq!(seeded.seed_reuse.dc_stale_refactorizations, 0);
        assert_eq!(seeded.seed_reuse.ac_stale_refactorizations, 0);

        let unseeded = tiny_direct_analysis(false).run().unwrap();
        assert!(!unseeded.seed_reuse.dc_seeded);
        assert_eq!(
            result_bits(&seeded),
            result_bits(&unseeded),
            "cross-sample symbolic reuse changed the sweep results:\n\
             seeded   = {seeded:?}\n\
             unseeded = {unseeded:?}"
        );
    }

    #[test]
    fn no_variation_is_a_configuration_error() {
        let analysis = tiny_analysis(false, false);
        match analysis.run() {
            Err(AnalysisError::Configuration(msg)) => {
                assert!(msg.contains("no variation"));
            }
            other => panic!("expected configuration error, got {other:?}"),
        }
    }

    #[test]
    fn full_workflow_runs_and_sscm_tracks_mc_on_tiny_problem() {
        let analysis = tiny_analysis(false, true);
        let result = analysis.run().unwrap();
        assert_eq!(result.quantities.len(), 1);
        let q = &result.quantities[0];
        assert!(q.nominal > 0.0);
        assert!(q.sscm.mean > 0.0);
        assert!(q.monte_carlo.mean > 0.0);
        // With only 8 MC samples the agreement is loose; just require the
        // same order of magnitude.
        assert!(q.mean_error() < 0.5, "mean error {}", q.mean_error());
        assert!(result.collocation_runs >= result.total_reduced_dim());
        assert!(!result.reductions.is_empty());
        assert!(result
            .reductions
            .iter()
            .all(|g| g.reduced_dim <= g.full_dim));
    }
}
